"""Ablation benches for the design choices DESIGN.md calls out.

* **abl1 — set representation in BK** (section 6.2's "roaring brings >9×"):
  the same BK engine over BitSet / HashSet / SortedSet / RoaringSet.  In
  this Python port the big-int bitvector plays roaring's role (documented
  in EXPERIMENTS.md); the pure-Python RoaringSet and numpy SortedSet pay
  per-call overheads at miniature set sizes.
* **abl2 — merge vs galloping intersection** (section 6.5): galloping wins
  when one operand is much smaller; merge is competitive at similar sizes.
* **abl3 — subgraph H at every level vs outermost-only** (section 6.2):
  the paper found per-level construction overheads outweigh the gains.
* **abl4 — the section 6.3 instruction-count experiment**: the redesigned
  reordering kernel executes fewer (byte-code) instructions than the
  pointer-chasing original (the paper reports 22 vs 31 x86 movs).
* **abl5 — density-adaptive dispatch** (the SISA fast path): the same
  kclique / tc kernels under ``--dispatch static`` (pinned SortedSet) vs
  ``--dispatch adaptive`` (:class:`~repro.core.dispatch.AdaptiveSet`), with
  value identity asserted, per-organization ``words_scanned`` attribution,
  and the representation histogram of the adaptive oriented DAG.  Run as a
  script for the ``gms-ablation/v1`` artifact CI publishes::

      PYTHONPATH=src python benchmarks/bench_ablation_setops.py \
          --dataset ca-grqc --k 4 --repeats 3
"""

from __future__ import annotations

import argparse
import dis
import time
from typing import Dict, List, Optional, Sequence

import numpy as np
import pytest

from repro.core import (
    AdaptiveSet,
    BitSet,
    HashSet,
    RoaringSet,
    SortedSet,
    intersect_count_galloping,
    intersect_count_merge,
)
from repro.core.counters import snapshot
from repro.core.packed import intersect_count_words, pack_sorted
from repro.graph import load_dataset
from repro.graph.set_graph import MaterializationCache
from repro.graph.transforms import split_neighbors
from repro.mining import (
    bron_kerbosch,
    kclique_count,
    triangle_count_node_iterator,
)
from repro.mining.bronkerbosch import _BKEngine, _induced_adjacency
from repro.platform import write_artifact
from repro.platform.bench import print_table
from repro.preprocess import compute_ordering

SCHEMA = "gms-ablation/v1"


# ---------------------------------------------------------------------------
# abl1 — set representation in Bron–Kerbosch
# ---------------------------------------------------------------------------
def run_abl1():
    out = {}
    for name in ("gearbox-mini", "movierec-mini"):
        graph = load_dataset(name)
        per_cls = {}
        for cls in (BitSet, HashSet, SortedSet, RoaringSet):
            res = bron_kerbosch(graph, "ADG", cls)
            per_cls[cls.__name__] = {
                "seconds": res.mine_seconds,
                "cliques": res.num_cliques,
            }
        out[name] = per_cls
    return out


@pytest.mark.benchmark(group="ablation")
def test_abl1_set_representation(benchmark, show_table):
    data = benchmark.pedantic(run_abl1, rounds=1, iterations=1)
    show_table(
        "Ablation 1 — BK-GMS-ADG mining time by set representation",
        ["graph", "set class", "time [ms]", "cliques"],
        [
            [g, cls, f"{1000 * rec['seconds']:.1f}", rec["cliques"]]
            for g, per in data.items()
            for cls, rec in per.items()
        ],
    )
    write_artifact("ablation1_set_representation", data)
    for g, per in data.items():
        assert len({rec["cliques"] for rec in per.values()}) == 1
        # The bitvector (roaring's stand-in) beats the array/pure-Python
        # representations by a clear factor — the paper's headline lever.
        assert per["BitSet"]["seconds"] < per["SortedSet"]["seconds"]
        assert per["BitSet"]["seconds"] < per["RoaringSet"]["seconds"]


# ---------------------------------------------------------------------------
# abl2 — merge vs galloping intersection
# ---------------------------------------------------------------------------
def run_abl2():
    rng = np.random.default_rng(5)
    large = np.unique(rng.integers(0, 4_000_000, size=400_000))
    small = np.sort(rng.choice(large, size=64, replace=False))
    similar = np.unique(rng.integers(0, 4_000_000, size=400_000))

    def timed(fn, a, b, repeats=20):
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn(a, b)
        return (time.perf_counter() - t0) / repeats

    return {
        "skewed_merge": timed(intersect_count_merge, small, large),
        "skewed_galloping": timed(intersect_count_galloping, small, large),
        "similar_merge": timed(intersect_count_merge, similar, large),
        "similar_galloping": timed(intersect_count_galloping, similar, large),
    }


@pytest.mark.benchmark(group="ablation")
def test_abl2_merge_vs_galloping(benchmark, show_table):
    data = benchmark.pedantic(run_abl2, rounds=1, iterations=1)
    show_table(
        "Ablation 2 — intersection kernels (|A|=64 vs |A|≈|B|≈400k)",
        ["case", "merge [us]", "galloping [us]", "winner"],
        [
            ["skewed", f"{1e6 * data['skewed_merge']:.1f}",
             f"{1e6 * data['skewed_galloping']:.1f}",
             "galloping" if data["skewed_galloping"] < data["skewed_merge"]
             else "merge"],
            ["similar", f"{1e6 * data['similar_merge']:.1f}",
             f"{1e6 * data['similar_galloping']:.1f}",
             "galloping" if data["similar_galloping"] < data["similar_merge"]
             else "merge"],
        ],
    )
    write_artifact("ablation2_merge_galloping", data)
    # Galloping wins decisively on skewed sizes (the section 6.5 trade-off).
    assert data["skewed_galloping"] < data["skewed_merge"] / 2
    # At similar sizes merge is at least competitive (within 3x).
    assert data["similar_merge"] < 3 * data["similar_galloping"]


# ---------------------------------------------------------------------------
# abl3 — subgraph H: outermost-only vs every recursion level vs none
# ---------------------------------------------------------------------------
def _bk_subgraph_every_level(graph) -> Dict[str, float]:
    """BK-ADG rebuilding H at *every* recursion level (the [92] design)."""
    order_res = compute_ordering(graph, "ADG", eps=0.1)
    rank = order_res.rank
    neighborhoods = {
        v: graph.neighborhood_set(v, BitSet) for v in graph.vertices()
    }
    cliques = 0

    def expand(adj, P, R, X):
        nonlocal cliques
        if P.is_empty() and X.is_empty():
            cliques += 1
            return
        # Rebuild the induced adjacency for this subtree — the overhead
        # the outermost-only design removes.
        base = np.concatenate([P.to_array(), X.to_array()])
        base.sort()
        base_set = BitSet.from_sorted_array(base)
        local = {int(w): adj[int(w)].intersect(base_set)
                 for w in base.tolist()}
        pivot, best = -1, -1
        for u in base.tolist():
            c = P.intersect_count(local[int(u)])
            if c > best:
                best, pivot = c, int(u)
        for v in P.diff(local[pivot]).to_array().tolist():
            nv = local[v]
            expand(local, P.intersect(nv), R + [v], X.intersect(nv))
            P.remove(v)
            X.add(v)

    t0 = time.perf_counter()
    for v in order_res.order.tolist():
        later, earlier = split_neighbors(graph.out_neigh(v), rank, rank[v])
        expand(neighborhoods, BitSet.from_sorted_array(later), [v],
               BitSet.from_sorted_array(earlier))
    return {"seconds": time.perf_counter() - t0, "cliques": cliques}


def run_abl3():
    graph = load_dataset("antcolony5-mini")
    none = bron_kerbosch(graph, "ADG", BitSet, subgraph_opt=False)
    outer = bron_kerbosch(graph, "ADG", BitSet, subgraph_opt=True)
    every = _bk_subgraph_every_level(graph)
    assert none.num_cliques == outer.num_cliques == every["cliques"]
    return {
        "none": none.mine_seconds,
        "outermost": outer.mine_seconds,
        "every-level": every["seconds"],
    }


@pytest.mark.benchmark(group="ablation")
def test_abl3_subgraph_levels(benchmark, show_table):
    data = benchmark.pedantic(run_abl3, rounds=1, iterations=1)
    show_table(
        "Ablation 3 — subgraph (H) construction policy, antcolony5-mini",
        ["policy", "time [ms]"],
        [[k, f"{1000 * v:.1f}"] for k, v in data.items()],
    )
    write_artifact("ablation3_subgraph_levels", data)
    # The paper's finding: per-level construction overheads outweigh gains
    # (a clear factor on this deep-recursion graph, not mere noise).
    assert data["every-level"] > 1.3 * data["outermost"]


# ---------------------------------------------------------------------------
# abl4 — instruction counts of the redesigned reordering kernel (§6.3)
# ---------------------------------------------------------------------------
def _kernel_pointer_chasing(order, positions, out):
    # Original: per-element pointer chasing through two indirections.
    for i in range(len(order)):
        v = order[i]
        p = positions[v]
        out[p] = v
    return out


def _kernel_redesigned(order, positions, out):
    # GMS redesign: one gather + one scatter, no per-element Python loop.
    out[positions[order]] = order
    return out


def run_abl4():
    count = lambda fn: sum(1 for _ in dis.get_instructions(fn))
    n = 200_000
    rng = np.random.default_rng(3)
    order = rng.permutation(n)
    positions = rng.permutation(n)
    out = np.zeros(n, dtype=np.int64)
    t0 = time.perf_counter()
    a = _kernel_pointer_chasing(order.tolist(), positions.tolist(),
                                out.copy().tolist())
    chasing_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    b = _kernel_redesigned(order, positions, out.copy())
    redesigned_s = time.perf_counter() - t0
    assert np.array_equal(np.asarray(a), b)
    return {
        "chasing_instructions": count(_kernel_pointer_chasing),
        "redesigned_instructions": count(_kernel_redesigned),
        "chasing_seconds": chasing_s,
        "redesigned_seconds": redesigned_s,
    }


@pytest.mark.benchmark(group="ablation")
def test_abl4_instruction_count(benchmark, show_table):
    data = benchmark.pedantic(run_abl4, rounds=1, iterations=1)
    show_table(
        "Ablation 4 — reordering-kernel instruction counts (§6.3)",
        ["kernel", "bytecode instructions", "runtime [ms]"],
        [
            ["pointer-chasing", data["chasing_instructions"],
             f"{1000 * data['chasing_seconds']:.1f}"],
            ["redesigned", data["redesigned_instructions"],
             f"{1000 * data['redesigned_seconds']:.1f}"],
        ],
    )
    write_artifact("ablation4_instruction_count", data)
    # Fewer instructions and a faster kernel (paper: 22 vs 31 movs).
    assert data["redesigned_instructions"] < data["chasing_instructions"]
    assert data["redesigned_seconds"] < data["chasing_seconds"]


# ---------------------------------------------------------------------------
# abl5 — density-adaptive dispatch (static sorted vs AdaptiveSet)
# ---------------------------------------------------------------------------
_DISPATCH_CLASSES = {"static": SortedSet, "adaptive": AdaptiveSet}


def _best_of(fn, repeats: int):
    """Run *fn* ``repeats`` times; return (best seconds, value).

    The value must be identical across repeats — these are exact kernels.
    """
    best, value = float("inf"), None
    for i in range(repeats):
        t0 = time.perf_counter()
        v = fn()
        dt = time.perf_counter() - t0
        if i == 0:
            value = v
        else:
            assert v == value, "non-deterministic kernel value"
        best = min(best, dt)
    return best, value


def run_dispatch_ablation(
    dataset: str = "ca-grqc", k: int = 4, repeats: int = 3
) -> Dict:
    """Time kclique (DGR, node-parallel) and tc (node iterator) per mode.

    Orderings / set graphs are pre-warmed through a per-mode
    :class:`MaterializationCache`, so the timed region is pure kernel work
    (``mine_seconds`` for kclique, wall time for tc).  Counter snapshots
    bracket one timed run per mode, attributing machine-word traffic to the
    organizations the dispatcher actually chose.
    """
    graph = load_dataset(dataset)
    out: Dict = {
        "schema": SCHEMA,
        "dataset": dataset,
        "k": k,
        "repeats": repeats,
        "modes": {},
        "speedup": {},
    }
    values: Dict[str, Dict[str, int]] = {}
    for mode, cls in _DISPATCH_CLASSES.items():
        cache = MaterializationCache()
        # Warm the ordering, oriented DAG, and undirected set graph.
        kclique_count(graph, k, "DGR", "node", set_cls=cls, cache=cache)
        triangle_count_node_iterator(graph, set_cls=cls, cache=cache)

        before = snapshot()
        kc_runs = [
            kclique_count(graph, k, "DGR", "node", set_cls=cls, cache=cache)
            for _ in range(repeats)
        ]
        kc_res = kc_runs[0]
        # mine_seconds excludes the (cache-hit) reorder resolve.
        kc_seconds = min(r.mine_seconds for r in kc_runs)
        assert len({r.count for r in kc_runs}) == 1
        tc_seconds, tc_value = _best_of(
            lambda: triangle_count_node_iterator(
                graph, set_cls=cls, cache=cache
            ),
            repeats,
        )
        delta = before.delta(snapshot())

        _, dag = cache.oriented(graph, cls, "DGR")
        rep_hist = (
            dag.representation_histogram()
            if hasattr(dag, "representation_histogram") else {}
        )
        values[mode] = {"kclique": kc_res.count, "tc": tc_value}
        out["modes"][mode] = {
            "set_class": cls.__name__,
            "kclique_seconds": kc_seconds,
            "kclique_count": kc_res.count,
            "tc_seconds": tc_seconds,
            "tc_count": tc_value,
            "words_scanned": dict(delta.words_scanned),
            "memory_traffic_elements": delta.memory_traffic,
            "dag_representation_histogram": rep_hist,
        }
    # Exact dispatch must be value-identical — the bit-identity contract.
    assert values["static"] == values["adaptive"], values
    st, ad = out["modes"]["static"], out["modes"]["adaptive"]
    out["speedup"] = {
        "kclique": st["kclique_seconds"] / ad["kclique_seconds"],
        "tc": st["tc_seconds"] / ad["tc_seconds"],
    }
    return out


def run_dispatch_microkernels(scale: int = 1) -> Dict[str, float]:
    """Per-call costs of the three intersection organizations.

    Dense operands (every element below 8·n) so the packed-word path is
    representative of what :class:`AdaptiveSet` adopts; ``scale`` shrinks
    the operands for smoke runs.
    """
    rng = np.random.default_rng(11)
    n = max(1024, 200_000 // scale)
    a = np.unique(rng.integers(0, 8 * n, size=n))
    b = np.unique(rng.integers(0, 8 * n, size=n))
    small = np.sort(rng.choice(b, size=64, replace=False))
    wa, wb = pack_sorted(a), pack_sorted(b)

    def timed(fn, repeats=20):
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - t0) / repeats

    expected = len(np.intersect1d(a, b))
    assert int(intersect_count_words(wa, wb)) == expected
    return {
        "similar_merge_us": 1e6 * timed(
            lambda: intersect_count_merge(a, b)),
        "skewed_galloping_us": 1e6 * timed(
            lambda: intersect_count_galloping(small, b)),
        "packed_and_popcount_us": 1e6 * timed(
            lambda: intersect_count_words(wa, wb)),
        "numpy_intersect1d_us": 1e6 * timed(
            lambda: np.intersect1d(a, b)),
    }


@pytest.mark.benchmark(group="ablation")
def test_abl5_dispatch(benchmark, show_table):
    data = benchmark.pedantic(
        lambda: run_dispatch_ablation("sc-ht-mini", k=4, repeats=1),
        rounds=1, iterations=1,
    )
    show_table(
        "Ablation 5 — density-adaptive dispatch, sc-ht-mini",
        ["mode", "class", "kclique [ms]", "tc [ms]", "4-cliques", "tri"],
        [
            [m, rec["set_class"], f"{1000 * rec['kclique_seconds']:.1f}",
             f"{1000 * rec['tc_seconds']:.1f}", rec["kclique_count"],
             rec["tc_count"]]
            for m, rec in data["modes"].items()
        ],
    )
    write_artifact("ablation5_dispatch_smoke", data)
    assert data["schema"] == SCHEMA
    adaptive = data["modes"]["adaptive"]
    # The dispatcher actually routed through its own organizations...
    assert any(key.startswith("adaptive/")
               for key in adaptive["words_scanned"])
    # ...and the adaptive DAG reports its per-neighborhood representation.
    hist = adaptive["dag_representation_histogram"]
    assert sum(hist.values()) > 0
    # Normalized element units: identical kernels ⇒ identical traffic.
    assert (adaptive["memory_traffic_elements"]
            == data["modes"]["static"]["memory_traffic_elements"])


# ---------------------------------------------------------------------------
# CLI — the gms-ablation/v1 artifact (CI's --smoke entry point)
# ---------------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SISA dispatch ablation: static vs adaptive set ops"
    )
    parser.add_argument("--dataset", default="ca-grqc")
    parser.add_argument("--k", type=int, default=4,
                        help="clique size for the kclique kernel")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per kernel (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset + 1 repeat (CI gate)")
    ns = parser.parse_args(argv)
    dataset = "sc-ht-mini" if ns.smoke else ns.dataset
    repeats = 1 if ns.smoke else ns.repeats

    payload = run_dispatch_ablation(dataset, k=ns.k, repeats=repeats)
    payload["microkernels"] = run_dispatch_microkernels(
        scale=16 if ns.smoke else 1
    )
    path = write_artifact(f"ablation_setops_{dataset}", payload)

    print_table(
        f"dispatch ablation — {dataset} (k={ns.k}, best of {repeats})",
        ["mode", "class", "kclique [ms]", "tc [ms]", "4-cliques", "tri"],
        [
            [m, rec["set_class"], f"{1000 * rec['kclique_seconds']:.2f}",
             f"{1000 * rec['tc_seconds']:.2f}", rec["kclique_count"],
             rec["tc_count"]]
            for m, rec in payload["modes"].items()
        ],
    )
    print_table(
        "speedup (static / adaptive)",
        ["kernel", "speedup"],
        [[kernel, f"{ratio:.2f}x"]
         for kernel, ratio in payload["speedup"].items()],
    )
    scans = payload["modes"]["adaptive"]["words_scanned"]
    if scans:
        print_table(
            "adaptive words scanned by organization",
            ["organization", "words"],
            [[org, words] for org, words in sorted(scans.items())],
        )
    print(f"\nartifact: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""CLI-driven sketch-budget sweep (ProbGraph operating curve, via parse_args).

Unlike the other benches, this one consumes the shared GMS CLI surface
end-to-end: flags are parsed by :func:`repro.platform.cli.parse_args`, the
headline backend comes from ``Args.resolve_set_class_for_graph`` (so
``--bloom-bits`` / ``--kmv-k`` / ``--bloom-shared-bits`` apply verbatim),
and the rows land in ``results/budget_sweep_<dataset>.json`` — the artifact
the CI upload step publishes.

Run as a script (same flags as ``python -m repro budget-sweep``)::

    PYTHONPATH=src python benchmarks/bench_budget_sweep.py \
        --dataset sc-ht-mini --repeats 1

or through pytest for the asserted smoke version.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.platform import parse_args, run_budget_sweep
from repro.platform.bench import write_artifact
from repro.platform.budget_sweep import main as budget_sweep_main


@pytest.mark.benchmark(group="budget-sweep")
def test_budget_sweep_cli(benchmark, show_table):
    """The sweep through the CLI path, with the artifact shape asserted."""
    args = parse_args(["--dataset", "sc-ht-mini", "--set-class", "bloom",
                       "--bloom-bits", "6", "--repeats", "1"])
    payload = benchmark.pedantic(
        lambda: run_budget_sweep(args), rounds=1, iterations=1
    )
    path = write_artifact(f"budget_sweep_{args.dataset}", payload)
    assert os.path.exists(path)
    with open(path) as handle:
        on_disk = json.load(handle)
    assert on_disk["dataset"] == "sc-ht-mini"

    rows = payload["rows"]
    show_table(
        f"budget sweep — {payload['dataset']}",
        ["family", "budget", "tc err", "4c err", "4c err (rec.)", "bk ok"],
        [
            [r["family"], r["label"], f"{100 * r['tc_rel_error']:.2f}%",
             f"{100 * r['fc_rel_error']:.2f}%",
             f"{100 * r['fc_reconciled_rel_error']:.2f}%",
             r["bk_identical"]]
            for r in rows
        ],
    )

    # The headline row honors the CLI budget flags.
    headline = rows[0]
    assert headline["family"] == "headline"
    assert "_b6" in headline["set_class"]
    # The --bloom-bits flag extends the swept grid.
    assert any(r["label"] == "b=6" for r in rows if r["family"] == "bloom")
    # Sketch-pivot BK output is identical to exact BK on every row — the
    # estimated pivot argmax must never change the enumerated cliques.
    assert all(r["bk_identical"] for r in rows)
    # Exact headline backend ⇒ zero error everywhere (bloom b=6 is not
    # exact, so check the invariant on the per-family sweeps instead):
    # richest budget of each family stays within the ProbGraph 10% point.
    by_label = {(r["family"], r["label"]): r for r in rows}
    assert by_label[("bloom", "b=32")]["tc_rel_error"] <= 0.10
    assert by_label[("kmv", "K=128")]["tc_rel_error"] <= 0.10
    # Reconciliation never compounds error beyond the plain recursion by
    # more than estimator noise on the shared-budget (leanest) rows.
    for r in rows:
        if r["family"] == "bloom-shared":
            assert (r["fc_reconciled_rel_error"]
                    <= r["fc_rel_error"] + 0.05)
    # KMV rows carry the link-prediction effectiveness-loss comparison.
    kmv_rows = [r for r in rows if r["family"] == "kmv"]
    assert kmv_rows and all("linkpred_eff_loss" in r for r in kmv_rows)


if __name__ == "__main__":
    raise SystemExit(budget_sweep_main())

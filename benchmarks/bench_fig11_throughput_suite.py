"""Figure 11 (appendix): per-graph clique throughput for all BK variants.

The appendix figure plots maximal cliques mined per second for every
variant (including the TBB flavors) across the whole dataset suite.  We
reproduce the panel data and the headline observation of section 8.10:
the *relative* benefit of the GMS variants over BK-DAS is smaller on
graphs with a higher density of maximal cliques — which is exactly the
insight plain runtimes cannot expose.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset, suite
from repro.mining import BK_VARIANTS, run_bk_variant
from repro.platform import simulated_parallel_seconds, write_artifact

THREADS = 16
GRAPHS = [
    "chebyshev4-mini", "gearbox-mini", "gupta3-mini", "ep-trust-mini",
    "fb-comm-mini", "sc-ht-mini", "mbeacxc-mini", "orani678-mini",
    "movierec-mini", "jester2-mini", "antcolony6-mini", "usa-roads-mini",
]


def run_fig11():
    rows = []
    for name in GRAPHS:
        graph = load_dataset(name)
        for variant in BK_VARIANTS:
            res = run_bk_variant(graph, variant)
            for policy, flavor in (("dynamic", "GMS"), ("stealing", "TBB")):
                if flavor == "TBB" and variant == "BK-DAS":
                    continue
                seconds = simulated_parallel_seconds(res, THREADS, policy)
                rows.append(
                    {
                        "graph": name,
                        "variant": variant if flavor == "GMS"
                        else variant.replace("GMS", "TBB"),
                        "cliques": res.num_cliques,
                        "clique_density": res.num_cliques / graph.num_nodes,
                        "throughput": res.num_cliques / seconds,
                    }
                )
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_throughput_suite(benchmark, show_table):
    rows = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    show_table(
        f"Figure 11 — maximal cliques per second, full suite ({THREADS} thr)",
        ["graph", "variant", "cliques", "cliques/s"],
        [
            [r["graph"], r["variant"], r["cliques"], f"{r['throughput']:,.0f}"]
            for r in rows
        ],
    )
    write_artifact("fig11_throughput_suite", rows)

    # GMS variants lead BK-DAS on nearly every graph.
    wins = 0
    for name in GRAPHS:
        das = next(r["throughput"] for r in rows
                   if r["graph"] == name and r["variant"] == "BK-DAS")
        best = max(r["throughput"] for r in rows
                   if r["graph"] == name and r["variant"] != "BK-DAS")
        if best > das:
            wins += 1
    assert wins >= len(GRAPHS) - 1

"""Figure 1: algorithmic throughput of the BK variants, OpenMP vs TBB.

Reproduces the headline figure: maximal cliques mined per second for
BK-DAS vs the GMS variants on one structural, one communication, one
biological, and one economics network, under both scheduler flavors
(OpenMP ≈ dynamic chunks, TBB ≈ randomized stealing with higher per-task
overhead).  Expected shape: GMS variants above BK-DAS on most graphs, and
the OpenMP flavor at or above TBB (section 8.2).
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset, suite
from repro.mining import BK_VARIANTS, run_bk_variant
from repro.platform import simulated_parallel_seconds, write_artifact

THREADS = 16


def run_fig1():
    rows = []
    for name in suite("quick"):
        graph = load_dataset(name)
        for variant in BK_VARIANTS:
            res = run_bk_variant(graph, variant)
            for policy, flavor in (("dynamic", "OpenMP"), ("stealing", "TBB")):
                seconds = simulated_parallel_seconds(res, THREADS, policy)
                rows.append(
                    {
                        "graph": name,
                        "variant": variant,
                        "flavor": flavor,
                        "cliques": res.num_cliques,
                        "seconds": seconds,
                        "throughput": res.num_cliques / seconds,
                    }
                )
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_algorithmic_throughput(benchmark, show_table):
    rows = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    table = [
        [r["graph"], r["variant"], r["flavor"], r["cliques"],
         f"{r['throughput']:,.0f}"]
        for r in rows
    ]
    show_table(
        f"Figure 1 — maximal cliques per second ({THREADS} simulated threads)",
        ["graph", "variant", "threading", "cliques", "cliques/s"],
        table,
    )
    write_artifact("fig1_throughput", rows)

    # Shape assertions: on most graphs the best GMS variant beats BK-DAS,
    # and OpenMP >= TBB for the same variant.
    openmp = [r for r in rows if r["flavor"] == "OpenMP"]
    graphs = {r["graph"] for r in openmp}
    gms_wins = 0
    for g in graphs:
        das = next(r for r in openmp if r["graph"] == g and r["variant"] == "BK-DAS")
        best_gms = max(
            r["throughput"]
            for r in openmp
            if r["graph"] == g and r["variant"] != "BK-DAS"
        )
        if best_gms > das["throughput"]:
            gms_wins += 1
    assert gms_wins >= len(graphs) - 1, "GMS variants should lead on most graphs"
    for r_open in openmp:
        r_tbb = next(
            r for r in rows
            if r["flavor"] == "TBB"
            and r["graph"] == r_open["graph"]
            and r["variant"] == r_open["variant"]
        )
        assert r_open["throughput"] >= r_tbb["throughput"] * 0.99

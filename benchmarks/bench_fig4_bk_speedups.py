"""Figure 4: speedups of the GMS BK variants over BK-DAS across the suite.

One panel per dataset: simulated 16-thread runtimes of BK-DAS and the four
GMS variants, plus the fraction of each runtime spent reordering (the
stacked dark bars of the figure).  Expected shape: consistent GMS speedups
over BK-DAS (often >1.5×, sometimes much more), with DGR showing a visible
reordering fraction that ADG removes.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset, suite
from repro.mining import BK_VARIANTS, run_bk_variant
from repro.platform import (
    parallel_reorder_seconds,
    simulated_parallel_seconds,
    write_artifact,
)

THREADS = 16


def run_fig4():
    rows = []
    for name in suite("default"):
        graph = load_dataset(name)
        per_variant = {}
        for variant in BK_VARIANTS:
            res = run_bk_variant(graph, variant)
            total = simulated_parallel_seconds(res, THREADS)
            ordering = "DGR" if variant == "BK-DAS" else variant.split("-")[2]
            reorder = parallel_reorder_seconds(
                ordering, res.reorder_seconds, res.ordering_rounds, THREADS
            )
            per_variant[variant] = {
                "seconds": total,
                "reorder_fraction": reorder / total if total else 0.0,
                "cliques": res.num_cliques,
            }
        das = per_variant["BK-DAS"]["seconds"]
        for variant, rec in per_variant.items():
            rows.append(
                {
                    "graph": name,
                    "variant": variant,
                    "seconds": rec["seconds"],
                    "speedup_over_das": das / rec["seconds"],
                    "reorder_fraction": rec["reorder_fraction"],
                    "cliques": rec["cliques"],
                }
            )
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_bk_speedups(benchmark, show_table):
    rows = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    show_table(
        f"Figure 4 — BK runtime & speedup over BK-DAS ({THREADS} threads)",
        ["graph", "variant", "time [ms]", "speedup", "reorder %"],
        [
            [
                r["graph"],
                r["variant"],
                f"{1000 * r['seconds']:.1f}",
                f"{r['speedup_over_das']:.2f}x",
                f"{100 * r['reorder_fraction']:.0f}%",
            ]
            for r in rows
        ],
    )
    write_artifact("fig4_bk_speedups", rows)

    graphs = {r["graph"] for r in rows}
    best = {
        g: max(
            r["speedup_over_das"]
            for r in rows
            if r["graph"] == g and r["variant"] != "BK-DAS"
        )
        for g in graphs
    }
    # Consistent speedups: the best GMS variant wins on ~all graphs ...
    winners = sum(1 for s in best.values() if s > 1.0)
    assert winners >= 0.85 * len(graphs), f"GMS won only {winners}/{len(graphs)}"
    # ... often by >50% (the paper's phrasing), sometimes by much more.
    assert sum(1 for s in best.values() if s > 1.5) >= 0.5 * len(graphs)
    assert max(best.values()) > 3.0
    # DGR pays a larger reordering fraction than ADG on most graphs.
    dgr_heavier = 0
    for g in graphs:
        dgr = next(r for r in rows if r["graph"] == g and r["variant"] == "BK-GMS-DGR")
        adg = next(r for r in rows if r["graph"] == g and r["variant"] == "BK-GMS-ADG")
        if dgr["reorder_fraction"] >= adg["reorder_fraction"]:
            dgr_heavier += 1
    assert dgr_heavier >= 0.7 * len(graphs)

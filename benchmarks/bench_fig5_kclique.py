"""Figure 5: k-clique listing — GMS vs the Danisch et al. baseline,
and ADG vs DEG/DGR reorderings.

The paper shows (1) the GMS reformulation beating the original kClist by
up to ~1.1× (it avoids the per-level induced-subgraph construction), and
(2) ADG reordering beating DGR once the reordering time is included, with
per-bar splits showing the reordering fraction.  We sweep k on the two
social stand-ins (the paper used Orkut and Flickr).
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset
from repro.mining import danisch_kclique_count, kclique_count
from repro.platform import (
    parallel_reorder_seconds,
    simulated_parallel_seconds,
    write_artifact,
)

THREADS = 16
GRAPHS = {"orkut-mini": (5, 6, 7), "flickr-mini": (4, 5, 6)}


def run_fig5():
    rows = []
    for name, ks in GRAPHS.items():
        graph = load_dataset(name)
        for k in ks:
            for ordering in ("DEG", "DGR", "ADG"):
                res = kclique_count(graph, k, ordering, "edge")
                total = simulated_parallel_seconds(res, THREADS,
                                                   ordering=ordering)
                reorder = parallel_reorder_seconds(
                    ordering, res.reorder_seconds, res.ordering_rounds, THREADS
                )
                rows.append(
                    {
                        "graph": name, "k": k, "variant": f"KC-{ordering}",
                        "count": res.count, "seconds": total,
                        "reorder_fraction": reorder / total if total else 0,
                    }
                )
            dan = danisch_kclique_count(graph, k)
            rows.append(
                {
                    "graph": name, "k": k, "variant": "Danisch",
                    "count": dan.count,
                    "seconds": simulated_parallel_seconds(dan, THREADS,
                                                          ordering="DGR"),
                    "reorder_fraction": 0.0,
                }
            )
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_kclique(benchmark, show_table):
    rows = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    show_table(
        f"Figure 5 — k-clique listing runtimes ({THREADS} threads)",
        ["graph", "k", "variant", "k-cliques", "time [ms]", "reorder %"],
        [
            [r["graph"], r["k"], r["variant"], r["count"],
             f"{1000 * r['seconds']:.1f}",
             f"{100 * r['reorder_fraction']:.0f}%"]
            for r in rows
        ],
    )
    write_artifact("fig5_kclique", rows)

    # All variants agree on the counts.
    for name, ks in GRAPHS.items():
        for k in ks:
            counts = {r["count"] for r in rows
                      if r["graph"] == name and r["k"] == k}
            assert len(counts) == 1
    # GMS (best ordering) beats the per-level-subgraph Danisch baseline on
    # most (graph, k) points — the modest, consistent win of section 8.3.
    gms_wins = 0
    points = 0
    for name, ks in GRAPHS.items():
        for k in ks:
            points += 1
            gms = min(r["seconds"] for r in rows
                      if r["graph"] == name and r["k"] == k
                      and r["variant"].startswith("KC-"))
            dan = next(r["seconds"] for r in rows
                       if r["graph"] == name and r["k"] == k
                       and r["variant"] == "Danisch")
            if gms < dan:
                gms_wins += 1
    assert gms_wins >= points - 1
    # ADG's reordering fraction stays below DGR's.
    for name in GRAPHS:
        adg = [r for r in rows if r["graph"] == name and r["variant"] == "KC-ADG"]
        dgr = [r for r in rows if r["graph"] == name and r["variant"] == "KC-DGR"]
        assert sum(a["reorder_fraction"] for a in adg) <= sum(
            d["reorder_fraction"] for d in dgr
        ) + 1e-9

"""Figure 6: reordering analysis — DGR vs DEG vs ADG(ε), plus BK-E impact.

The paper's Youtube experiment: stacked bars of (reordering time) +
(Bron–Kerbosch by Eppstein runtime after that reordering), for DGR, DEG,
and ADG with ε ∈ {0.5, 0.1, 0.01}.  Expected shape: ADG reorders much
faster than DGR while reducing the BK time comparably; smaller ε gives a
slightly better order at slightly more reordering rounds; DEG reorders
fast but helps BK less.
"""

from __future__ import annotations

import pytest

from repro.core import BitSet
from repro.graph import load_dataset
from repro.mining import bron_kerbosch
from repro.platform import parallel_reorder_seconds, write_artifact
from repro.runtime.scheduler import simulate_makespan

THREADS = 16
CONFIGS = [
    ("DGR", None),
    ("DEG", None),
    ("ADG", 0.5),
    ("ADG", 0.1),
    ("ADG", 0.01),
]


def run_fig6():
    graph = load_dataset("youtube-mini")
    rows = []
    for ordering, eps in CONFIGS:
        kwargs = {"eps": eps} if eps is not None else {}
        res = bron_kerbosch(graph, ordering, BitSet, **kwargs)
        reorder = parallel_reorder_seconds(
            ordering, res.reorder_seconds, res.ordering_rounds, THREADS
        )
        mine = simulate_makespan(res.task_costs, THREADS, "dynamic")
        label = ordering if eps is None else f"ADG(eps={eps})"
        rows.append(
            {
                "config": label,
                "reorder_seconds": reorder,
                "bk_seconds": mine,
                "total": reorder + mine,
                "rounds": res.ordering_rounds,
                "cliques": res.num_cliques,
            }
        )
    return rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_reordering(benchmark, show_table):
    rows = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    show_table(
        f"Figure 6 — reordering + BK-E on youtube-mini ({THREADS} threads)",
        ["config", "reorder [ms]", "BK [ms]", "total [ms]", "rounds"],
        [
            [r["config"], f"{1000 * r['reorder_seconds']:.2f}",
             f"{1000 * r['bk_seconds']:.1f}", f"{1000 * r['total']:.1f}",
             r["rounds"]]
            for r in rows
        ],
    )
    write_artifact("fig6_reordering", rows)

    by = {r["config"]: r for r in rows}
    # All configs find the same cliques.
    assert len({r["cliques"] for r in rows}) == 1
    # ADG reorders faster than the sequential DGR at any ε.
    for eps in (0.5, 0.1, 0.01):
        assert by[f"ADG(eps={eps})"]["reorder_seconds"] < by["DGR"][
            "reorder_seconds"
        ]
    # Larger ε ⇒ fewer peeling rounds (more parallelism).
    assert by["ADG(eps=0.5)"]["rounds"] <= by["ADG(eps=0.01)"]["rounds"]
    # ADG total beats DGR total (the paper's headline >2x claim holds on
    # reordering itself; totals include the BK time which dominates here).
    assert by["ADG(eps=0.5)"]["total"] <= by["DGR"]["total"] * 1.1

"""Figure 7: subgraph isomorphism — the GMS optimization ladder vs threads.

The paper accelerates the parallel VF3-Light baseline with work splitting,
work stealing, SIMD, and a precompute scheme, reaching 2.5× total; runtime
falls with thread count for every variant.  The workload mirrors the
original setup at miniature scale: induced queries against a labeled
Erdős–Rényi target (the VF3-Light authors' dataset design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import build_undirected, generators as gen
from repro.isomorphism import SI_VARIANTS, run_si_variant, si_scaling_curve
from repro.platform import write_artifact

THREADS = [1, 2, 4, 8, 16, 32]


def _workload():
    target = gen.erdos_renyi(110, 0.12, seed=9)
    rng = np.random.default_rng(13)
    target_labels = rng.integers(0, 3, size=target.num_nodes)
    # Three connected 5-vertex induced query patterns with labels.
    queries, query_labels = [], []
    patterns = [
        [(0, 1), (1, 2), (2, 3), (3, 4)],             # path
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],     # triangle + tail
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],     # diamond + chord
    ]
    for i, edges in enumerate(patterns):
        queries.append(build_undirected(5, edges))
        query_labels.append(rng.integers(0, 3, size=5))
    return target, queries, target_labels, query_labels


def run_fig7():
    target, queries, tl, ql = _workload()
    results = {}
    for variant in SI_VARIANTS:
        res = run_si_variant(
            target, queries, variant, induced=True,
            target_labels=tl, query_labels=ql,
        )
        results[variant] = {
            "embeddings": res.embeddings,
            "curve": si_scaling_curve(res, THREADS),
            "tasks": len(res.task_costs),
        }
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_si_scaling(benchmark, show_table):
    results = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    show_table(
        "Figure 7 — subgraph isomorphism runtime [ms] vs simulated threads",
        ["variant", "embeddings"] + [f"p={p}" for p in THREADS],
        [
            [v, rec["embeddings"]] + [f"{1000 * t:.1f}" for t in rec["curve"]]
            for v, rec in results.items()
        ],
    )
    write_artifact("fig7_si_scaling", results)

    # Every variant finds the same embeddings.
    assert len({rec["embeddings"] for rec in results.values()}) == 1
    # Runtime decreases with threads for each variant.
    for variant, rec in results.items():
        curve = rec["curve"]
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:])), variant
    # The ladder: the fully optimized variant beats the baseline at full
    # parallelism, by a factor in the paper's ~2-3x ballpark or better.
    base32 = results["baseline"]["curve"][-1]
    best32 = results["precompute"]["curve"][-1]
    assert best32 < base32
    assert base32 / best32 > 1.5
    # Work stealing fixes the imbalance static splitting leaves.
    assert results["stealing"]["curve"][-1] <= results["splitting"]["curve"][-1] * 1.05

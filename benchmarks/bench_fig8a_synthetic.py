"""Figure 8a: synthetic Kronecker graphs — mining vs preprocessing time
as sparsity m/n grows.

The paper varies the average degree of power-law Kronecker graphs at two
scales and plots BK-GMS-DGR's mining time and preprocessing (reordering)
time.  Expected shape: for very sparse graphs mining dominates (cost of
listing the many small cliques), while as m/n grows the reordering cost
grows proportionally and eventually dominates, because Kronecker graphs
lack large cliques so mining stays comparatively flat.
"""

from __future__ import annotations

import pytest

from repro.core import BitSet
from repro.graph import generators as gen
from repro.mining import bron_kerbosch
from repro.platform import write_artifact

SCALES = (10, 11)  # the paper's n = 2^10 and 2^11 series
EDGE_FACTORS = (1, 2, 4, 8, 16, 32)


def run_fig8a():
    rows = []
    for scale in SCALES:
        for ef in EDGE_FACTORS:
            graph = gen.kronecker(scale, ef, seed=100 + scale)
            res = bron_kerbosch(graph, "DGR", BitSet)
            rows.append(
                {
                    "scale": scale,
                    "edge_factor": ef,
                    "avg_degree": graph.num_edges / graph.num_nodes,
                    "preprocessing_time": res.reorder_seconds,
                    "mining_time": res.mine_seconds,
                    "cliques": res.num_cliques,
                }
            )
    return rows


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_synthetic(benchmark, show_table):
    rows = benchmark.pedantic(run_fig8a, rounds=1, iterations=1)
    show_table(
        "Figure 8a — Kronecker sparsity sweep (BK-GMS-DGR)",
        ["scale", "m/n", "preprocess [ms]", "mine [ms]", "cliques"],
        [
            [r["scale"], f"{r['avg_degree']:.1f}",
             f"{1000 * r['preprocessing_time']:.1f}",
             f"{1000 * r['mining_time']:.1f}", r["cliques"]]
            for r in rows
        ],
    )
    write_artifact("fig8a_synthetic", rows)

    for scale in SCALES:
        series = [r for r in rows if r["scale"] == scale]
        series.sort(key=lambda r: r["edge_factor"])
        # Reordering cost grows with m/n (the paper's stated mechanism).
        # The peel is O(n + m), and n is fixed per series, so the growth
        # factor is damped by the O(n) term — require a clear >2x rise
        # across the 32x density sweep.
        assert (
            series[-1]["preprocessing_time"]
            > 2 * min(r["preprocessing_time"] for r in series[:2])
        )
        # Mining cost grows *superlinearly* in density — the mechanism
        # behind the paper's "missing points are timeouts" at extreme m/n.
        dens_ratio = series[-1]["avg_degree"] / series[0]["avg_degree"]
        mine_ratio = series[-1]["mining_time"] / series[0]["mining_time"]
        assert mine_ratio > dens_ratio
        # Note (EXPERIMENTS.md): absolute pre/mine ordering deviates from
        # the paper — Python's per-clique constant is ~10³ larger than
        # C++'s, so the mining line sits above preprocessing here, while
        # both scaling laws match the paper's.

"""Figure 8b: machine-efficiency analysis — stalled CPU cycles vs threads.

The paper uses PAPI around the parallel BK region and shows, with growing
thread counts: flattening runtime speedups, growing stalled-cycle *ratios*,
and growing stalled-cycle *counts* — evidence that maximal clique listing
is memory-bound.  We reproduce the same three panels from the software
counters gathered by the set-algebra layer plus the documented
bandwidth-contention model.
"""

from __future__ import annotations

import pytest

from repro.core import BitSet, reset
from repro.graph import load_dataset
from repro.mining import bron_kerbosch
from repro.platform import write_artifact
from repro.runtime import PAPIW, StallModel
from repro.runtime.scheduler import simulate_makespan

THREADS = [1, 2, 4, 8, 16, 32]
# The paper's Figure 8b panel: citations, dblp, Flixster, pokec.
GRAPHS = ["citations-mini", "dblp-mini", "flixster-mini", "pokec-mini"]


def run_fig8b():
    model = StallModel()
    out = {}
    for name in GRAPHS:
        graph = load_dataset(name)
        reset()
        PAPIW.INIT_PARALLEL("PAPI_MEM_SCY", "PAPI_RES_STL")
        PAPIW.START()
        res = bron_kerbosch(graph, "DGR", BitSet)
        m = PAPIW.STOP()
        runtimes, ratios, counts = [], [], []
        for p in THREADS:
            # Makespan of the measured tasks, stretched by the bandwidth-
            # contention slowdown past the knee (Fig. 8b's mechanism).
            base = simulate_makespan(res.task_costs, p, "dynamic")
            runtimes.append(base * model.contention_slowdown(m, p))
            count, ratio = model.stalled_cycles(m, p)
            counts.append(count)
            ratios.append(ratio)
        out[name] = {
            "runtimes": runtimes,
            "stall_ratios": ratios,
            "stall_counts": counts,
            "traffic": m.memory_traffic,
        }
    return out


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_machine_efficiency(benchmark, show_table):
    results = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    rows = []
    for name, rec in results.items():
        rows.append([name, "runtime [ms]"] +
                    [f"{1000 * t:.1f}" for t in rec["runtimes"]])
        rows.append([name, "stall ratio"] +
                    [f"{r:.2f}" for r in rec["stall_ratios"]])
        rows.append([name, "stalls [Melem]"] +
                    [f"{c / 1e6:.1f}" for c in rec["stall_counts"]])
    show_table(
        "Figure 8b — BK-GMS-DGR machine efficiency vs simulated threads",
        ["graph", "series"] + [f"p={p}" for p in THREADS],
        rows,
    )
    write_artifact("fig8b_machine_efficiency", results)

    for name, rec in results.items():
        # Speedups flatten: the 16→32 gain is far below 2x.
        s_16_32 = rec["runtimes"][-2] / rec["runtimes"][-1]
        s_1_2 = rec["runtimes"][0] / rec["runtimes"][1]
        assert s_16_32 < s_1_2, name
        assert s_16_32 < 1.5, name
        # Stall ratios and counts grow monotonically with threads.
        assert all(b >= a for a, b in zip(rec["stall_ratios"],
                                          rec["stall_ratios"][1:]))
        assert all(b >= a for a, b in zip(rec["stall_counts"],
                                          rec["stall_counts"][1:]))

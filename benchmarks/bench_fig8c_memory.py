"""Figure 8c: memory consumption of the set-centric graph representations.

The paper compares, on a web graph (h-wen), a social network (s-ork), and
the USA road network (v-usa): the *peak* memory while constructing each
representation (bars) and the *final* representation sizes (numbers above
the bars), for the Das et al. representation and the GMS HashSet /
RoaringSet / SortedSet graphs.  Expected shape: final sizes comparable
(road graph favoring sparse arrays), peak construction memory visibly
higher for RoaringSet, and the Das et al. structure paying the highest
peak cost.
"""

from __future__ import annotations

import pytest

from repro.core import HashSet, RoaringSet, SortedSet
from repro.graph import build_set_graph, load_dataset
from repro.platform import write_artifact
from repro.runtime import peak_memory_bytes

GRAPHS = {"h-wen": "wikipedia-mini", "s-ork": "orkut-mini",
          "v-usa": "usa-roads-mini"}


def _das_representation(graph):
    """Das et al.'s structure: per-vertex adjacency dict-of-dicts
    (CSR copied into nested hash containers with per-thread scratch)."""
    adjacency = {}
    for v in graph.vertices():
        adjacency[v] = {int(u): True for u in graph.out_neigh(v).tolist()}
    scratch = [dict(adjacency[v]) for v in graph.vertices()]  # work buffers
    return adjacency, scratch


def run_fig8c():
    rows = []
    for label, dataset in GRAPHS.items():
        graph = load_dataset(dataset)
        builders = {
            "Das et al.": lambda g=graph: _das_representation(g),
            "HashSet": lambda g=graph: build_set_graph(g, HashSet),
            "RoaringSet": lambda g=graph: build_set_graph(g, RoaringSet),
            "SortedSet": lambda g=graph: build_set_graph(g, SortedSet),
        }
        for rep, builder in builders.items():
            result, peak = peak_memory_bytes(builder)
            final = (
                result.storage_bytes()
                if hasattr(result, "storage_bytes")
                else peak  # the Das structure is its own peak
            )
            rows.append(
                {
                    "graph": label,
                    "representation": rep,
                    "peak_mb": peak / 1e6,
                    "final_mb": final / 1e6,
                }
            )
    return rows


@pytest.mark.benchmark(group="fig8c")
def test_fig8c_memory(benchmark, show_table):
    rows = benchmark.pedantic(run_fig8c, rounds=1, iterations=1)
    show_table(
        "Figure 8c — representation memory (peak construction / final) [MB]",
        ["graph", "representation", "peak", "final"],
        [
            [r["graph"], r["representation"], f"{r['peak_mb']:.2f}",
             f"{r['final_mb']:.2f}"]
            for r in rows
        ],
    )
    write_artifact("fig8c_memory", rows)

    for label in GRAPHS:
        sub = {r["representation"]: r for r in rows if r["graph"] == label}
        # Das et al. pays the highest peak construction cost (paper: "it
        # always comes with the highest peak storage costs").
        das_peak = sub["Das et al."]["peak_mb"]
        assert all(
            das_peak >= rec["peak_mb"]
            for rep, rec in sub.items()
            if rep != "Das et al."
        ), label
        # RoaringSet peaks above SortedSet during construction.
        assert sub["RoaringSet"]["peak_mb"] > sub["SortedSet"]["peak_mb"]

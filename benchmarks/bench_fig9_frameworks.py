"""Figure 9 + section 8.12: GMS vs GBBS vs Danisch vs pattern frameworks.

k-clique mining at large k, comparing:

* **GMS** — edge-parallel intersection recursion with ADG;
* **GBBS** — node-parallel DGR variant (the exact kernel GBBS offers);
* **Danisch et al.** — the original edge-parallel kClist that rebuilds an
  induced subgraph per level;
* **Framework** — generic pattern-matching exploration (Peregrine/RStream
  style), run on the smallest graph only (section 8.12 reports 10–100×).

Expected shape: GMS consistently fastest, GBBS/Danisch close (within small
factors), frameworks an order of magnitude or more behind.  Clique sizes
scale the paper's k=9/10 down to our miniature graphs.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset
from repro.mining import (
    danisch_kclique_count,
    framework_kclique_count,
    gbbs_kclique_count,
    kclique_count,
)
from repro.platform import simulated_parallel_seconds, write_artifact

THREADS = 16
# (dataset, k) — scaled-down analogs of the paper's {Chebyshev4, Gearbox,
# dblp, jester2, sc-ht, skitter} x {9, 10}.
POINTS = [
    ("chebyshev4-mini", 6),
    ("gearbox-mini", 7),
    ("sc-ht-mini", 7),
    ("dbpedia-mini", 7),
]
FRAMEWORK_POINT = ("sc-ht-mini", 5)


def _best_of(fn, repeats=2):
    """Min-total-cost run of *fn* — damps scheduler noise on shared hosts."""
    runs = [fn() for _ in range(repeats)]
    return min(runs, key=lambda r: r.reorder_seconds + sum(r.task_costs))


def run_fig9():
    rows = []
    for name, k in POINTS:
        graph = load_dataset(name)
        gms = _best_of(lambda: kclique_count(graph, k, "ADG", "edge"))
        gbbs = _best_of(lambda: gbbs_kclique_count(graph, k))
        dan = _best_of(lambda: danisch_kclique_count(graph, k))
        assert gms.count == gbbs.count == dan.count
        for label, res in (("GMS", gms), ("GBBS", gbbs), ("Danisch", dan)):
            ordering = "ADG" if label == "GMS" else "DGR"
            rows.append(
                {
                    "graph": name, "k": k, "infrastructure": label,
                    "count": res.count,
                    "seconds": simulated_parallel_seconds(
                        res, THREADS, ordering=ordering
                    ),
                }
            )
    # Framework baseline: sequential generic exploration, one cheap point.
    name, k = FRAMEWORK_POINT
    graph = load_dataset(name)
    fw = framework_kclique_count(graph, k)
    gms_ref = kclique_count(graph, k, "ADG", "edge")
    assert fw.count == gms_ref.count
    rows.append(
        {
            "graph": name, "k": k, "infrastructure": "Framework",
            "count": fw.count,
            "seconds": fw.mine_seconds / THREADS,  # generous: ideal scaling
        }
    )
    rows.append(
        {
            "graph": name, "k": k, "infrastructure": "GMS",
            "count": gms_ref.count,
            "seconds": simulated_parallel_seconds(gms_ref, THREADS,
                                                  ordering="ADG"),
        }
    )
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_frameworks(benchmark, show_table):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    show_table(
        f"Figure 9 — k-clique mining across infrastructures ({THREADS} thr)",
        ["graph", "k", "infrastructure", "k-cliques", "time [ms]"],
        [
            [r["graph"], r["k"], r["infrastructure"], r["count"],
             f"{1000 * r['seconds']:.1f}"]
            for r in rows
        ],
    )
    write_artifact("fig9_frameworks", rows)

    # GMS offers consistent advantages across graphs and large clique
    # sizes: fastest on most points, never far from the best.
    gms_wins = 0
    for name, k in POINTS:
        sub = {r["infrastructure"]: r["seconds"] for r in rows
               if r["graph"] == name and r["k"] == k}
        best_other = min(sub["Danisch"], sub["GBBS"])
        if sub["GMS"] <= best_other:
            gms_wins += 1
        assert sub["GMS"] <= best_other * 1.3, (name, sub)
    assert gms_wins >= len(POINTS) - 1
    # Frameworks are an order of magnitude (or more) slower (section 8.12).
    name, k = FRAMEWORK_POINT
    fw = next(r["seconds"] for r in rows
              if r["graph"] == name and r["infrastructure"] == "Framework")
    gms = next(r["seconds"] for r in rows
               if r["graph"] == name and r["k"] == k
               and r["infrastructure"] == "GMS")
    assert fw / gms > 10.0

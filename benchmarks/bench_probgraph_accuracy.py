"""ProbGraph speed-vs-accuracy sweep (Besta et al. 2022, Fig. 6-style).

Triangle counting and 4-clique counting run *unmodified* over the set-class
registry; the probabilistic backends (Bloom filters, KMV sketches) are
swept over their storage budgets against a ``SortedSet`` exact baseline on
the synthetic generators.  Expected shape: relative error shrinks as the
sketch budget grows (more bits per element / larger signatures), with the
richest budgets inside 10% of the exact counts, while exact backends stay
at exactly 0% error.

Speed note: in this pure-Python reproduction the sketch ops and the numpy
merge intersections have comparable constant factors, so the "speed" axis
is reported as set-algebra *work* (the software op counters) next to wall
time — the C++ platform realizes the work reduction as wall-clock speedup.
"""

from __future__ import annotations

import time

import pytest

from repro.approx import bloom_set_class, kmv_set_class
from repro.core import COUNTERS, SortedSet, reset, snapshot
from repro.graph import generators as gen
from repro.mining import (
    kclique_count,
    kclique_count_sets,
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)
from repro.platform import write_artifact

GRAPHS = {
    "power-law-cluster": lambda: gen.holme_kim(1000, 8, 0.5, seed=7),
    "kronecker": lambda: gen.kronecker(9, edge_factor=8, seed=3),
}

BACKENDS = [
    ("sorted (exact)", SortedSet),
    ("bloom b=4", bloom_set_class(4, 2, min_bits=64)),
    ("bloom b=8", bloom_set_class(8, 3, min_bits=64)),
    ("bloom b=32", bloom_set_class(32, 4, min_bits=256)),
    ("kmv K=8", kmv_set_class(8)),
    ("kmv K=32", kmv_set_class(32)),
    ("kmv K=128", kmv_set_class(128)),
]


def _metered(fn):
    reset()
    before = snapshot()
    t0 = time.perf_counter()
    value = fn()
    seconds = time.perf_counter() - t0
    work = before.delta(snapshot()).memory_traffic
    return value, seconds, work


def run_probgraph_accuracy():
    rows = []
    for graph_name, make in GRAPHS.items():
        graph = make()
        tc_exact = triangle_count_rank_merge(graph)
        fc_exact = kclique_count(graph, 4, "DGR").count
        for backend_name, cls in BACKENDS:
            tc_est, tc_seconds, tc_work = _metered(
                lambda: triangle_count_node_iterator(graph, set_cls=cls)
            )
            fc_est, fc_seconds, fc_work = _metered(
                lambda: kclique_count_sets(graph, 4, cls, "DGR")
            )
            rows.append(
                {
                    "graph": graph_name,
                    "backend": backend_name,
                    "exact_backend": cls.IS_EXACT,
                    "tc_estimate": tc_est,
                    "tc_exact": tc_exact,
                    "tc_rel_error": abs(tc_est - tc_exact) / max(tc_exact, 1),
                    "tc_seconds": tc_seconds,
                    "tc_work": tc_work,
                    "fc_estimate": fc_est,
                    "fc_exact": fc_exact,
                    "fc_rel_error": abs(fc_est - fc_exact) / max(fc_exact, 1),
                    "fc_seconds": fc_seconds,
                    "fc_work": fc_work,
                }
            )
    return rows


@pytest.mark.benchmark(group="probgraph")
def test_probgraph_speed_vs_accuracy(benchmark, show_table):
    rows = benchmark.pedantic(run_probgraph_accuracy, rounds=1, iterations=1)

    for graph_name in GRAPHS:
        graph_rows = [r for r in rows if r["graph"] == graph_name]
        baseline = next(r for r in graph_rows if r["backend"] == "sorted (exact)")
        table = [
            [
                r["backend"],
                f"{r['tc_estimate']:,}",
                f"{100 * r['tc_rel_error']:.2f}%",
                f"{baseline['tc_work'] / max(r['tc_work'], 1):.2f}x",
                f"{r['fc_estimate']:,}",
                f"{100 * r['fc_rel_error']:.2f}%",
                f"{baseline['fc_work'] / max(r['fc_work'], 1):.2f}x",
                f"{1000 * (r['tc_seconds'] + r['fc_seconds']):.0f} ms",
            ]
            for r in graph_rows
        ]
        show_table(
            f"ProbGraph sweep — {graph_name} "
            f"(tc exact {baseline['tc_exact']:,}, "
            f"4c exact {baseline['fc_exact']:,})",
            ["backend", "tc est", "tc err", "tc work↓", "4c est", "4c err",
             "4c work↓", "wall"],
            table,
        )
    write_artifact("probgraph_accuracy", rows)

    # Shape assertions.
    for r in rows:
        if r["exact_backend"]:
            assert r["tc_rel_error"] == 0.0 and r["fc_rel_error"] == 0.0
        assert r["tc_estimate"] > 0 and r["fc_estimate"] > 0
    for graph_name in GRAPHS:
        graph_rows = {r["backend"]: r for r in rows if r["graph"] == graph_name}
        # The richest budget of each family reproduces the exact counts to
        # within 10% (the ProbGraph operating point).
        assert graph_rows["bloom b=32"]["tc_rel_error"] <= 0.10
        assert graph_rows["kmv K=128"]["tc_rel_error"] <= 0.10
        assert graph_rows["bloom b=32"]["fc_rel_error"] <= 0.10
        assert graph_rows["kmv K=128"]["fc_rel_error"] <= 0.10
        # Accuracy improves (weakly) along each family's budget sweep.
        assert (
            graph_rows["bloom b=32"]["tc_rel_error"]
            <= graph_rows["bloom b=4"]["tc_rel_error"] + 0.02
        )
        assert (
            graph_rows["kmv K=128"]["tc_rel_error"]
            <= graph_rows["kmv K=8"]["tc_rel_error"] + 0.02
        )
        # The speed axis: lean sketches do a fraction of the exact
        # backend's set-algebra work on the intersection-heavy kernel.
        assert (
            graph_rows["bloom b=4"]["tc_work"]
            < 0.5 * graph_rows["sorted (exact)"]["tc_work"]
        )

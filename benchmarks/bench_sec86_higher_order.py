"""Section 8.6: subtleties of higher-order structure.

The paper's Livemocha-vs-Flickr example: two graphs nearly identical in
n, m, sparsity, and degree shape, yet the photo-relations graph has ~2000×
more 4-cliques — because graph *origin* determines higher-order structure.
Our stand-ins reproduce the qualitative gap: similar bulk statistics,
orders-of-magnitude different 4-clique counts.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset, summarize
from repro.mining import kclique_count
from repro.platform import write_artifact

PAIR = ("livemocha-mini", "flickr-photos-mini")


def run_sec86():
    out = {}
    for name in PAIR:
        graph = load_dataset(name)
        s = summarize(graph, name)
        out[name] = {
            "n": s.n,
            "m": s.m,
            "sparsity": s.sparsity,
            "four_cliques": kclique_count(graph, 4, "DGR", "edge").count,
        }
    return out


@pytest.mark.benchmark(group="sec86")
def test_sec86_higher_order(benchmark, show_table):
    stats = benchmark.pedantic(run_sec86, rounds=1, iterations=1)
    show_table(
        "Section 8.6 — similar graphs, very different 4-clique counts",
        ["graph", "n", "m", "m/n", "4-cliques"],
        [
            [name, rec["n"], rec["m"], f"{rec['sparsity']:.1f}",
             rec["four_cliques"]]
            for name, rec in stats.items()
        ],
    )
    write_artifact("sec86_higher_order", stats)

    social = stats["livemocha-mini"]
    photos = stats["flickr-photos-mini"]
    # Bulk statistics are similar (within ~50%) ...
    assert abs(social["n"] - photos["n"]) / social["n"] < 0.5
    assert abs(social["sparsity"] - photos["sparsity"]) / social["sparsity"] < 0.5
    # ... but the 4-clique counts differ by a large factor.
    assert photos["four_cliques"] > 3 * social["four_cliques"]

"""Closed-loop load bench for the HTTP serving tier.

The question ``python -m repro serve --http`` raises is service-shaped,
not kernel-shaped: what latency does a *client* observe, and how does
throughput move with the session's worker count and the offered
concurrency?  This bench answers it with a closed-loop generator — every
client thread keeps exactly one request in flight over its own
keep-alive connection, so offered load follows service rate and the
measured latency is queueing-free at ``concurrency=1`` and
queueing-dominated at higher fan-in (all session work serializes through
the server's single session executor; extra workers only help requests
whose *plans* fan out across the pool).

The matrix is ``workers × concurrency`` over one warmed dataset
(default ``ca-grqc``); each cell reports client-side p50/p99 latency and
end-to-end QPS, plus the server's own admission gauges.  Results land in
``results/serve_bench.json`` (schema ``gms-serve-bench/v1``).

``--smoke`` additionally runs the serving-correctness gate CI consumes:
a smoke suite submitted as an HTTP job must produce an artifact
``suite-diff --semantic``-identical to the same plan run directly on a
session (the CLI path), and the HTTP-served payload is persisted as
``results/serve_smoke_suite.json`` for the workflow's artifact upload.

Script form::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI smoke

Pytest form: the smoke matrix on the mini dataset, with the suite-diff
gate asserted.
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.graph.datasets import dataset_provenance
from repro.platform.bench import print_table, write_artifact
from repro.platform.http import running_server
from repro.platform.runner import diff_payloads
from repro.platform.session import MiningSession
from repro.platform.suite import ExperimentPlan

SCHEMA = "gms-serve-bench/v1"

#: The request mix: one cheap kernel and one materialization-heavy one,
#: all warm (the server session is pre-warmed before the clock starts).
def _request_mix(dataset: str) -> List[Dict[str, object]]:
    return [
        {"kernel": "tc", "dataset": dataset, "backend": "bitset"},
        {"kernel": "4clique", "dataset": dataset, "backend": "bitset",
         "ordering": "degeneracy"},
    ]


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _client_loop(port: int, requests: List[bytes], latencies: List[float],
                 errors: List[str]) -> None:
    """One closed-loop client: issue *requests* serially, record latency."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        for body in requests:
            t0 = time.perf_counter()
            conn.request("POST", "/query", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = response.read()
            elapsed = time.perf_counter() - t0
            if response.status == 429:
                # Closed-loop clients respect the server's pushback the
                # way a well-behaved caller would: wait, then reissue.
                time.sleep(int(response.getheader("Retry-After", "1")))
                conn.request("POST", "/query", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = response.read()
                elapsed = time.perf_counter() - t0
            if response.status != 200:
                errors.append(payload.decode(errors="replace")[:200])
                continue
            latencies.append(elapsed)
    finally:
        conn.close()


def bench_cell(dataset: str, workers: int, concurrency: int,
               requests_per_client: int) -> Dict[str, object]:
    """One matrix cell: a server at *workers*, *concurrency* clients."""
    mix = _request_mix(dataset)
    per_client = [
        json.dumps(mix[i % len(mix)]).encode()
        for i in range(requests_per_client)
    ]
    with MiningSession(workers=workers) as session:
        # Warm the materializations the mix touches so the measurement
        # window is the steady state, not first-touch materialization.
        session.warm(dataset, backends=("bitset",),
                     orderings=("DGR",))
        with tempfile.TemporaryDirectory() as job_root:
            with running_server(
                session, max_inflight=max(4, concurrency),
                backlog=4 * max(4, concurrency), job_root=job_root,
            ) as server:
                latencies: List[float] = []
                errors: List[str] = []
                threads = [
                    threading.Thread(
                        target=_client_loop,
                        args=(server.port, per_client, latencies, errors),
                    )
                    for _ in range(concurrency)
                ]
                t0 = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                window = time.perf_counter() - t0
                admission = server.admission.stats()
    if errors:
        raise RuntimeError(f"serve bench requests failed: {errors[:3]}")
    total = len(latencies)
    return {
        "dataset": dataset,
        "provenance": dataset_provenance(dataset),
        "workers": workers,
        "concurrency": concurrency,
        "requests": total,
        "window_seconds": window,
        "qps": total / window if window > 0 else 0.0,
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "mean_seconds": statistics.fmean(latencies) if latencies else 0.0,
        "admitted": admission["admitted"],
        "rejected": admission["rejected"],
    }


def suite_diff_gate(dataset: str = "sc-ht-mini") -> Dict[str, object]:
    """HTTP-served suite vs direct session run: must be semantically equal.

    Returns the gate verdict plus the HTTP-served payload (which the
    caller persists as ``serve_smoke_suite.json`` so CI can upload the
    exact artifact the gate judged).
    """
    plan = ExperimentPlan.smoke()
    with MiningSession() as session:
        reference = session.run_plan(plan)[0]
    with tempfile.TemporaryDirectory() as job_root:
        with running_server(job_root=job_root) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=300
            )
            conn.request("POST", "/suite", body=json.dumps({"smoke": True}))
            accepted = json.loads(conn.getresponse().read())
            job_id = accepted["job"]
            deadline = time.time() + 300
            while True:
                conn.request("GET", f"/jobs/{job_id}")
                record = json.loads(conn.getresponse().read())
                if record["state"] in ("done", "failed", "interrupted"):
                    break
                if time.time() > deadline:
                    raise TimeoutError(f"job {job_id} did not finish")
                time.sleep(0.1)
            conn.close()
            if record["state"] != "done":
                raise RuntimeError(
                    f"suite job ended {record['state']}: {record['error']}"
                )
            (artifact_path,) = record["artifacts"]
            with open(artifact_path) as handle:
                served = json.load(handle)
    problems = diff_payloads(reference, served, semantic=True)
    return {
        "dataset": dataset,
        "job_state": record["state"],
        "exact_mismatches": record["exact_mismatches"],
        "identical_to_cli": problems == [],
        "diff_problems": problems,
        "served_payload": served,
    }


def run_bench(smoke: bool = False) -> Dict[str, object]:
    if smoke:
        dataset, requests_per_client = "sc-ht-mini", 6
        matrix = [(1, 1), (1, 2), (2, 1), (2, 2)]
    else:
        dataset, requests_per_client = "ca-grqc", 20
        matrix = [(1, 1), (1, 4), (2, 1), (2, 4)]
    cells = [
        bench_cell(dataset, workers, concurrency, requests_per_client)
        for workers, concurrency in matrix
    ]
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "dataset": dataset,
        "requests_per_client": requests_per_client,
        "cells": cells,
    }


def _print_payload(payload: Dict[str, object]) -> None:
    print_table(
        f"HTTP serve latency/throughput ({payload['dataset']})",
        ["workers", "clients", "requests", "QPS", "p50 ms", "p99 ms",
         "rejected"],
        [
            [c["workers"], c["concurrency"], c["requests"],
             f"{c['qps']:.1f}",
             f"{1000 * c['p50_seconds']:.1f}",
             f"{1000 * c['p99_seconds']:.1f}",
             c["rejected"]]
            for c in payload["cells"]
        ],
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load bench for repro serve --http"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="mini dataset + the CLI-equivalence gate "
                             "(CI form)")
    ns = parser.parse_args(argv)
    payload = run_bench(smoke=ns.smoke)
    _print_payload(payload)
    if ns.smoke:
        gate = suite_diff_gate()
        served = gate.pop("served_payload")
        payload["suite_diff_gate"] = gate
        path = write_artifact("serve_smoke_suite", served)
        print(f"served-suite artifact: {path}")
        if not gate["identical_to_cli"]:
            print("HTTP-served suite DIVERGED from the CLI run:")
            for problem in gate["diff_problems"]:
                print(f"  {problem}")
            write_artifact("serve_bench", payload)
            return 1
        print("suite-diff gate: HTTP-served artifact identical to CLI run")
    path = write_artifact("serve_bench", payload)
    print(f"artifact: {path}")
    return 0


# ---------------------------------------------------------------------------
# Pytest form.
# ---------------------------------------------------------------------------


def test_serve_bench_smoke():
    payload = run_bench(smoke=True)
    assert payload["schema"] == SCHEMA
    assert len(payload["cells"]) == 4
    for cell in payload["cells"]:
        assert cell["requests"] == (cell["concurrency"]
                                    * payload["requests_per_client"])
        assert cell["qps"] > 0
        assert 0 < cell["p50_seconds"] <= cell["p99_seconds"]


def test_serve_suite_diff_gate():
    gate = suite_diff_gate()
    assert gate["job_state"] == "done"
    assert gate["exact_mismatches"] == 0
    assert gate["identical_to_cli"], gate["diff_problems"]


if __name__ == "__main__":
    raise SystemExit(main())

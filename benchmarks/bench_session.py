"""Session warm/cold latency and resident-pool reuse bench.

The :class:`~repro.platform.session.MiningSession` exists to amortize
state across requests; this bench measures exactly that amortization and
persists it as ``results/session_bench.json`` (schema
``gms-session-bench/v1``) for the plot script:

* **cold vs warm query latency** — the same query twice in one session;
  the second run hits the shared ``MaterializationCache`` instead of
  recomputing orderings and neighborhood conversions.  Run on the real
  (or real-scale fallback) datasets ``ca-grqc`` / ``email-eu-core`` so
  materialization is a meaningful fraction of the request;
* **pool reuse speedup** — a batch of queries through a 2-worker
  *resident* pool, three ways: the first batch on a fresh session (pays
  pool start + worker warm-up), the same batch again (resident pool,
  warm workers), and the per-call-pool baseline the pre-session API used
  (a throwaway ``run_suite``-style pool per batch);
* **transport × schedule matrix** — one suite plan under every
  ``{pickle, shm} × {static, dynamic, stealing}`` combination, recording
  the measured payload bytes shipped to the pool (pre-warm seed + per
  task) and asserting every artifact is suite-diff identical to the
  sequential reference.  The headline column is payload bytes per task:
  the shared-memory transport ships :class:`~repro.platform.shm.ArrayRef`
  descriptors instead of pickled arrays, so it must come in an order of
  magnitude under the pickle transport on a warm real-scale dataset.

Script form::

    PYTHONPATH=src python benchmarks/bench_session.py [--quick]

Pytest form: asserts warm queries actually hit the cache and that the
artifact has the advertised shape (timing ratios are reported, not
asserted — CI machines are too noisy to gate on them).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

from repro.core import counters as _counters
from repro.graph.datasets import dataset_provenance
from repro.platform.bench import print_table, write_artifact
from repro.platform.cli import RUNNER_SCHEDULES, TRANSPORTS
from repro.platform.session import MiningSession
from repro.platform.suite import ExperimentPlan
from repro.platform.runner import diff_payloads, run_suite_parallel

SCHEMA = "gms-session-bench/v2"

#: The cold/warm measurement matrix: real-scale inputs, one cheap and one
#: materialization-heavy kernel each.
DEFAULT_QUERIES = [
    {"dataset": "ca-grqc", "kernel": "tc", "backend": "bitset"},
    {"dataset": "ca-grqc", "kernel": "4clique", "backend": "bitset",
     "ordering": "degeneracy"},
    {"dataset": "email-eu-core", "kernel": "tc", "backend": "bitset"},
    {"dataset": "email-eu-core", "kernel": "kclique", "backend": "bloom",
     "ordering": "degeneracy", "k": 4},
]

QUICK_QUERIES = [
    {"dataset": "sc-ht-mini", "kernel": "tc", "backend": "bitset"},
    {"dataset": "sc-ht-mini", "kernel": "4clique", "backend": "bitset",
     "ordering": "degeneracy"},
]

#: The pool-reuse batch: one plan small enough to run three times.
def _batch_plan(dataset: str) -> ExperimentPlan:
    return ExperimentPlan(
        datasets=(dataset,),
        kernels=("tc", "4clique"),
        set_classes=("bitset",),
        orderings=("DGR",),
        repeats=1,
        workers=2,
        schedule="dynamic",
    )


def _run_query(session: MiningSession, spec: Dict) -> Dict[str, object]:
    query = session.query(
        spec["kernel"], k=int(spec.get("k", 4))
    ).on(spec["dataset"]).backend(spec["backend"])
    if "ordering" in spec:
        query = query.ordering(spec["ordering"])
    result = query.run()
    return result


def bench_cold_warm(queries: List[Dict]) -> List[Dict[str, object]]:
    """Each query twice in one fresh session; report both latencies."""
    rows: List[Dict[str, object]] = []
    with MiningSession() as session:
        for spec in queries:
            cold = _run_query(session, spec)
            warm = _run_query(session, spec)
            rows.append({
                "dataset": spec["dataset"],
                "provenance": dataset_provenance(spec["dataset"]),
                "kernel": cold.kernel,
                "backend": spec["backend"],
                "ordering": cold.ordering,
                "value": cold.value,
                "cold_seconds": cold.wall_seconds,
                "warm_seconds": warm.wall_seconds,
                "warm_speedup": (
                    cold.wall_seconds / warm.wall_seconds
                    if warm.wall_seconds > 0 else 0.0
                ),
                "warm_cache_hits": warm.cache_hits,
                "warm_cache_misses": warm.cache_misses,
            })
    return rows


def bench_pool_reuse(dataset: str) -> Dict[str, object]:
    """One parallel plan, three ways: cold pool, resident pool, per-call pool."""
    plan = _batch_plan(dataset)
    with MiningSession(workers=2) as session:
        t0 = time.perf_counter()
        session.run_plan(plan)
        first = time.perf_counter() - t0  # pool start + worker warm-up
        t0 = time.perf_counter()
        session.run_plan(plan)
        resident = time.perf_counter() - t0  # resident pool, warm workers
        pool_starts = session.pool_starts
    t0 = time.perf_counter()
    run_suite_parallel(plan)  # throwaway pool per call (historical path)
    per_call = time.perf_counter() - t0
    return {
        "dataset": dataset,
        "provenance": dataset_provenance(dataset),
        "workers": plan.workers,
        "pool_starts": pool_starts,
        "first_batch_seconds": first,
        "resident_batch_seconds": resident,
        "per_call_pool_seconds": per_call,
        "reuse_speedup_vs_cold": first / resident if resident > 0 else 0.0,
        "reuse_speedup_vs_per_call": (
            per_call / resident if resident > 0 else 0.0
        ),
    }


#: The transport-matrix plan: every smoke kernel over the exact backends
#: (inexact ones cannot ride shared memory and would dilute the payload
#: comparison), warmed ahead of the pool so the seed carries real state.
def _transport_plan(dataset: str) -> ExperimentPlan:
    return ExperimentPlan(
        datasets=(dataset,),
        kernels=("tc", "4clique", "bk"),
        set_classes=("sorted", "bitset"),
        orderings=("DGR",),
        repeats=1,
    )


def bench_transport_matrix(dataset: str) -> List[Dict[str, object]]:
    """One plan per {transport} × {schedule}; meter shipped payload bytes.

    Every combination warms the same (backend × ordering) state before
    the pool starts, runs the same plan, and is checked suite-diff
    identical against a sequential reference — the transport and the
    scheduling policy must be invisible in the artifact.  The parent-side
    payload meter (``Counters.payload_bytes_shipped``) captures both the
    workers-many pre-warm seed and the per-task ``(plan, dataset, shard)``
    pickles, so bytes-per-task is a measured quantity, not an estimate.
    """
    plan = _transport_plan(dataset)
    with MiningSession() as session:
        reference = session.run_plan(plan)[0]
    rows: List[Dict[str, object]] = []
    for transport in TRANSPORTS:
        for schedule in RUNNER_SCHEDULES:
            before = _counters.snapshot()
            t0 = time.perf_counter()
            with MiningSession(workers=2, schedule=schedule,
                               transport=transport) as session:
                session.warm(dataset, backends=("sorted", "bitset"),
                             orderings=("DGR",))
                payload = session.run_plan(plan)[0]
                stats = session.stats()
            wall = time.perf_counter() - t0
            delta = before.delta(_counters.snapshot())
            problems = diff_payloads(reference, payload)
            rows.append({
                "dataset": dataset,
                "provenance": dataset_provenance(dataset),
                "transport": transport,
                "schedule": schedule,
                "payload_bytes_shipped": delta.payload_bytes_shipped,
                "payload_tasks": delta.payload_tasks,
                "payload_bytes_per_task": (
                    delta.payload_bytes_shipped / delta.payload_tasks
                    if delta.payload_tasks else 0.0
                ),
                "shm_resident_bytes": stats["pool"]["shm_bytes"],
                "wall_seconds": wall,
                "identical_to_sequential": problems == [],
                "diff_problems": problems,
            })
    return rows


def run_bench(quick: bool = False) -> Dict[str, object]:
    queries = QUICK_QUERIES if quick else DEFAULT_QUERIES
    pool_dataset = "sc-ht-mini" if quick else "ca-grqc"
    return {
        "schema": SCHEMA,
        "quick": quick,
        "cold_warm": bench_cold_warm(queries),
        "pool_reuse": [bench_pool_reuse(pool_dataset)],
        "transport_matrix": bench_transport_matrix(pool_dataset),
    }


def _print_payload(payload: Dict[str, object]) -> None:
    print_table(
        "Session cold vs warm query latency",
        ["dataset", "kernel", "backend", "cold ms", "warm ms", "speedup",
         "warm hits"],
        [
            [r["dataset"], r["kernel"], r["backend"],
             f"{1000 * r['cold_seconds']:.1f}",
             f"{1000 * r['warm_seconds']:.1f}",
             f"{r['warm_speedup']:.2f}x",
             r["warm_cache_hits"]]
            for r in payload["cold_warm"]
        ],
    )
    print_table(
        "Resident-pool reuse (2 workers)",
        ["dataset", "first batch ms", "resident ms", "per-call pool ms",
         "vs cold", "vs per-call"],
        [
            [r["dataset"],
             f"{1000 * r['first_batch_seconds']:.0f}",
             f"{1000 * r['resident_batch_seconds']:.0f}",
             f"{1000 * r['per_call_pool_seconds']:.0f}",
             f"{r['reuse_speedup_vs_cold']:.2f}x",
             f"{r['reuse_speedup_vs_per_call']:.2f}x"]
            for r in payload["pool_reuse"]
        ],
    )
    print_table(
        "Payload shipped per transport × schedule (2 workers)",
        ["transport", "schedule", "bytes shipped", "tasks", "bytes/task",
         "shm resident", "wall ms", "identical"],
        [
            [r["transport"], r["schedule"],
             f"{r['payload_bytes_shipped']:,}",
             r["payload_tasks"],
             f"{r['payload_bytes_per_task']:,.0f}",
             f"{r['shm_resident_bytes']:,}",
             f"{1000 * r['wall_seconds']:.0f}",
             "yes" if r["identical_to_sequential"] else "NO"]
            for r in payload["transport_matrix"]
        ],
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="session warm/cold + pool-reuse bench"
    )
    parser.add_argument("--quick", action="store_true",
                        help="miniature inputs only (CI smoke)")
    ns = parser.parse_args(argv)
    payload = run_bench(quick=ns.quick)
    _print_payload(payload)
    path = write_artifact("session_bench", payload)
    print(f"\nartifact: {path}")
    return 0


# ---------------------------------------------------------------------------
# Pytest form.
# ---------------------------------------------------------------------------


def test_session_bench_quick():
    payload = run_bench(quick=True)
    assert payload["schema"] == SCHEMA
    for row in payload["cold_warm"]:
        # The warm run must be served from the session cache.
        assert row["warm_cache_hits"] > 0
        assert row["warm_cache_misses"] == 0
        assert row["cold_seconds"] > 0 and row["warm_seconds"] > 0
    (reuse,) = payload["pool_reuse"]
    assert reuse["pool_starts"] == 1
    assert reuse["first_batch_seconds"] > 0
    assert reuse["resident_batch_seconds"] > 0
    matrix = payload["transport_matrix"]
    assert len(matrix) == len(TRANSPORTS) * len(RUNNER_SCHEDULES)
    assert all(r["identical_to_sequential"] for r in matrix)
    shipped = {(r["transport"], r["schedule"]): r["payload_bytes_shipped"]
               for r in matrix}
    for schedule in RUNNER_SCHEDULES:
        # The zero-copy acceptance bar holds even on the mini dataset.
        assert shipped[("shm", schedule)] * 10 <= \
            shipped[("pickle", schedule)]


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment-suite matrix bench (the unified kernel × backend sweep).

The script form runs one :class:`~repro.platform.suite.ExperimentPlan`
through the same entry point as ``python -m repro suite``::

    PYTHONPATH=src python benchmarks/bench_suite_matrix.py --smoke
    PYTHONPATH=src python benchmarks/bench_suite_matrix.py --smoke \
        --workers 4 --schedule static
    PYTHONPATH=src python benchmarks/bench_suite_matrix.py \
        --datasets sc-ht-mini --set-classes sorted bitset bloom kmv

The pytest form asserts the unified-artifact shape the CI upload step
publishes: every planned kernel runs under every planned backend, exact
backends agree bit-for-bit with the reference, approximate backends carry
a measured (not assumed) relative error, and the shared materialization
cache actually de-duplicates the per-(backend, ordering) conversions.
The parallel form additionally asserts the process-pool runner's artifact
is cell-for-cell identical to the sequential one up to timing, and that
the measured wall-clock lands next to the scheduler-model prediction.
"""

from __future__ import annotations

import json
import os
from itertools import product

import pytest

from repro.platform.session import MiningSession
from repro.platform.suite import (
    ExperimentPlan,
    main as suite_main,
)
from repro.platform.bench import write_artifact


def _run_plan(plan: ExperimentPlan):
    """One throwaway session per measured run (the `run_suite` semantics,
    without the deprecation shim)."""
    with MiningSession.from_plan(plan) as session:
        return session.run_plan(plan)


@pytest.mark.benchmark(group="suite")
def test_suite_smoke_matrix(benchmark, show_table):
    """The CI smoke plan, with the artifact schema asserted."""
    plan = ExperimentPlan.smoke()
    payloads = benchmark.pedantic(
        lambda: _run_plan(plan), rounds=1, iterations=1
    )
    assert len(payloads) == len(plan.datasets) == 1
    payload = payloads[0]
    path = write_artifact(f"suite_{payload['dataset']}", payload)
    assert os.path.exists(path)
    with open(path) as handle:
        on_disk = json.load(handle)
    assert on_disk["schema"] == "gms-suite/v2"

    cells = payload["cells"]
    show_table(
        f"suite — {payload['dataset']}",
        ["kernel", "order", "backend", "exact", "value", "rel err"],
        [
            [c["kernel"], c["ordering"], c["set_class"],
             c["exact"], c["value"], f"{100 * c['rel_error']:.2f}%"]
            for c in cells
        ],
    )

    # Coverage: every kernel × backend pair of the plan has a cell (the
    # reference backend rides along with the two planned ones).
    backends = set(plan.set_classes) | {payload["reference_backend"]}
    seen = {(c["kernel"], c["set_class"]) for c in cells}
    for kernel, backend in product(plan.kernels, backends):
        assert (kernel, backend) in seen
    # Exact backends agree with the reference on every cell.
    assert all(c["rel_error"] == 0.0 for c in cells if c["exact"])
    # The shared cache de-duplicates materializations across cells.
    assert payload["materialization"]["hits"] > 0


if __name__ == "__main__":
    raise SystemExit(suite_main())


@pytest.mark.benchmark(group="suite")
def test_suite_parallel_matches_sequential(benchmark, show_table):
    """The smoke plan through the 2-worker pool: identical up to timing."""
    from dataclasses import replace

    from repro.platform.runner import diff_payloads

    sequential = _run_plan(ExperimentPlan.smoke())[0]
    plan = replace(ExperimentPlan.smoke(), workers=2, schedule="static")
    payloads = benchmark.pedantic(
        lambda: _run_plan(plan), rounds=1, iterations=1
    )
    parallel = payloads[0]
    assert diff_payloads(sequential, parallel) == []

    execution = parallel["execution"]
    modeled = execution["modeled"]["static"]
    show_table(
        "suite parallel — measured vs modeled (2 workers, static)",
        ["metric", "value"],
        [
            ["cells", len(parallel["cells"])],
            ["cells total", f"{1000 * execution['cells_seconds_total']:.1f} ms"],
            ["measured wall", f"{1000 * execution['measured_seconds']:.1f} ms"],
            ["measured speedup", f"{execution['measured_speedup']:.2f}x"],
            ["modeled makespan", f"{1000 * modeled['makespan_seconds']:.1f} ms"],
            ["modeled speedup", f"{modeled['speedup']:.2f}x"],
        ],
    )
    assert execution["workers"] == 2
    assert modeled["speedup"] > 1.0

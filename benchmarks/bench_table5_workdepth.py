"""Tables 5–6: the concurrency analysis, checked against measurements.

The paper's work–depth claims that we can verify empirically on the
simulated substrate:

* **ADG depth** — O(log² n) peeling rounds, versus DGR's inherently
  sequential n iterations (Lemma 7.1);
* **ADG work** — linear in m (runtime across graphs scales ~ m);
* **k-clique work** — grows with ``m·(d/2)^(k-2)`` (Table 5, columns 1–3):
  measured across graphs of different degeneracy, the scaling follows the
  bound's *shape* within tolerance;
* **Table 6 ordering** — this paper's bound sits between Eppstein's and
  Das et al.'s closed forms on sparse graphs.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.graph import generators as gen
from repro.mining import kclique_count
from repro.platform import write_artifact
from repro.preprocess import approx_degeneracy_order, degeneracy_order
from repro.theory import TABLE5, TABLE6, check_scaling


def run_table5():
    out = {}
    # -- ADG rounds vs n (depth) -----------------------------------------
    rounds = {}
    for scale in (256, 1024, 4096):
        g = gen.erdos_renyi_nm(scale, scale * 5, seed=scale)
        rounds[scale] = approx_degeneracy_order(g, eps=0.5).rounds
    out["adg_rounds"] = rounds

    # -- ADG work vs m (linear) -------------------------------------------
    adg_seconds = {}
    for m in (4000, 16000, 64000):
        g = gen.erdos_renyi_nm(m // 5, m, seed=m)
        t0 = time.perf_counter()
        approx_degeneracy_order(g, eps=0.5)
        adg_seconds[m] = time.perf_counter() - t0
    out["adg_seconds"] = adg_seconds

    # -- k-clique work across degeneracies ---------------------------------
    measured, predicted = {}, {}
    for label, g in {
        "sparse": gen.erdos_renyi_nm(400, 1600, seed=1),
        "dense": gen.erdos_renyi_nm(400, 6400, seed=2),
    }.items():
        _, d = degeneracy_order(g)
        res = kclique_count(g, 4, "DGR", "edge")
        measured[label] = res.mine_seconds
        predicted[label] = TABLE5["kclique-edge"].work(
            n=g.num_nodes, m=g.num_edges, d=d, k=4
        )
    out["kclique_measured"] = measured
    out["kclique_predicted"] = predicted
    out["kclique_scaling"] = check_scaling(measured, predicted)
    return out


@pytest.mark.benchmark(group="table5")
def test_table5_workdepth(benchmark, show_table):
    data = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    show_table(
        "Table 5 — ADG peeling rounds (depth ∝ log² n; DGR needs n)",
        ["n", "ADG rounds", "log2(n)", "DGR rounds"],
        [[n, r, f"{math.log2(n):.1f}", n] for n, r in data["adg_rounds"].items()],
    )
    show_table(
        "Table 5 — ADG runtime vs m (work ∝ m)",
        ["m", "seconds"],
        [[m, f"{s:.4f}"] for m, s in data["adg_seconds"].items()],
    )
    show_table(
        "Table 5 — k-clique measured-vs-bound scaling ratios",
        ["pair", "ratio (≈1 = bound shape holds)"],
        [[k, f"{v:.2f}"] for k, v in data["kclique_scaling"].items()],
    )
    write_artifact("table5_workdepth", data)

    # Depth: rounds grow ~log n, staying tiny versus n.
    for n, r in data["adg_rounds"].items():
        assert r <= 4 * math.log2(n) ** 2
        assert r < n / 10
    # Work: ADG time scales close to linearly in m (16x m → ≤ ~48x time).
    s = data["adg_seconds"]
    ms = sorted(s)
    assert s[ms[-1]] / s[ms[0]] < 3 * (ms[-1] / ms[0])
    # k-clique: work bounds are *upper* bounds, so measured growth must
    # track the predicted direction without exceeding it — denser input
    # costs substantially more, but no more than the bound's growth allows
    # (random intersections stay far below the worst-case (d/2)^(k-2)).
    measured = data["kclique_measured"]
    predicted = data["kclique_predicted"]
    m_ratio = measured["dense"] / measured["sparse"]
    p_ratio = predicted["dense"] / predicted["sparse"]
    assert m_ratio > 2.0
    assert m_ratio < 2.0 * p_ratio

    # Table 6 closed-form ordering (sparse regime).
    kw = dict(n=500, m=3000, d=8, eps=0.1)
    assert TABLE6["eppstein"](**kw) <= TABLE6["this-paper"](**kw) <= TABLE6[
        "das"
    ](**kw)

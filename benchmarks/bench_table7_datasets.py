"""Table 7: structural characterization of the dataset registry.

Recomputes every column of the paper's dataset table — n, m, m/n, maximum
degree, degeneracy, T, T/n, max triangles per vertex (T̂), and the
triangle skew — over the synthetic stand-ins, and checks that each
category hits the structural regime its paper counterpart was selected
for (the "Why selected/special?" column).
"""

from __future__ import annotations

import pytest

from repro.graph import DATASETS, load_dataset, summarize
from repro.platform import write_artifact


def run_table7():
    rows = []
    for name, spec in sorted(DATASETS.items()):
        s = summarize(load_dataset(name), name)
        rows.append(
            {
                "name": name, "category": spec.category,
                "mirrors": spec.mirrors, "n": s.n, "m": s.m,
                "sparsity": s.sparsity, "max_degree": s.max_degree,
                "degeneracy": s.degeneracy, "T": s.triangles,
                "T_per_n": s.triangles_per_vertex,
                "T_hat": s.max_triangles_per_vertex, "t_skew": s.t_skew,
            }
        )
    return rows


@pytest.mark.benchmark(group="table7")
def test_table7_datasets(benchmark, show_table):
    rows = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    show_table(
        "Table 7 — dataset structural statistics",
        ["graph", "cat", "n", "m", "m/n", "dmax", "d", "T", "T/n", "T^",
         "skew"],
        [
            [r["name"], r["category"], r["n"], r["m"],
             f"{r['sparsity']:.1f}", r["max_degree"], r["degeneracy"],
             r["T"], f"{r['T_per_n']:.1f}", r["T_hat"], f"{r['t_skew']:.1f}"]
            for r in rows
        ],
    )
    write_artifact("table7_datasets", rows)

    by = {r["name"]: r for r in rows}
    # Road network: extremely low m/n and T (paper's USA row).
    assert by["usa-roads-mini"]["sparsity"] < 2.5
    assert by["usa-roads-mini"]["T_per_n"] < 0.5
    # Youtube/Flixster: very low m/n and T among social graphs.
    assert by["youtube-mini"]["sparsity"] < 3.5
    assert by["youtube-mini"]["T_per_n"] < 1
    # Mesh-like structural graphs: very low triangle skew.
    assert by["gearbox-mini"]["t_skew"] < 2
    assert by["ldoor-mini"]["t_skew"] < 2
    assert by["nemeth25-mini"]["t_skew"] < 2
    # Huge-skew graphs dominate the mesh-like ones by an order of magnitude.
    for skewed in ("gupta3-mini", "ep-trust-mini", "youtube-mini"):
        assert by[skewed]["t_skew"] > 10 * by["gearbox-mini"]["t_skew"]
    # Dense small biological/economics graphs: high m/n and T/n.
    assert by["antcolony6-mini"]["sparsity"] > 15
    assert by["antcolony6-mini"]["T_per_n"] > 50
    assert by["mbeacxc-mini"]["T_per_n"] > 10
    # Libimseti: large m/n (its defining property).
    assert by["libimseti-mini"]["sparsity"] > 15
    # Recommendation projections: large T (co-rating cliques).
    assert by["movierec-mini"]["T_per_n"] > 50

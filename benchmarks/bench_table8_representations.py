"""Table 8: algorithm runtimes across graph storage models (appendix B).

The paper's appendix derives the time complexity of classic algorithms on
four storage models — sorted Adjacency List (AL), Adjacency Matrix (AM),
and unsorted/sorted Edge List.  We run BFS and node-iterator triangle
counting generically over the shared query interface and verify the
predicted *relative ordering*: AL is the right structure for traversals
and TC, AM pays Θ(n²) scans, and unsorted EL pays Θ(m) per neighborhood
probe.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np
import pytest

from repro.graph import GRAPH_MODELS, build_model
from repro.graph import generators as gen
from repro.platform import write_artifact


def generic_bfs(model, source: int = 0) -> int:
    """BFS written only against the query interface; returns #reached."""
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v in model.neighbors(u).tolist():
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return len(dist)


def generic_triangle_count(model) -> int:
    """Node-iterator TC over the query interface (Figure 2's kernel)."""
    total = 0
    for v in model.iter_vertices():
        neigh = model.neighbors(v).tolist()
        for i, a in enumerate(neigh):
            for b in neigh[i + 1 :]:
                if model.has_edge(a, b):
                    total += 1
    return total // 3


def generic_pagerank(model, iterations: int = 10) -> np.ndarray:
    """Pushing PageRank over the query interface (Table 8's row)."""
    n = model.num_nodes
    ranks = np.full(n, 1.0 / n)
    for _ in range(iterations):
        nxt = np.full(n, 0.15 / n)
        for u in model.iter_vertices():
            neigh = model.neighbors(u)
            if len(neigh):
                nxt[neigh] += 0.85 * ranks[u] / len(neigh)
            else:
                nxt += 0.85 * ranks[u] / n
        ranks = nxt
    return ranks


def run_table8():
    graph = gen.erdos_renyi_nm(600, 2400, seed=88)
    results = {}
    for kind in GRAPH_MODELS:
        model = build_model(graph, kind)
        t0 = time.perf_counter()
        reached = generic_bfs(model)
        bfs_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        triangles = generic_triangle_count(model)
        tc_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        ranks = generic_pagerank(model)
        pr_seconds = time.perf_counter() - t0
        results[kind] = {
            "bfs_seconds": bfs_seconds,
            "tc_seconds": tc_seconds,
            "pr_seconds": pr_seconds,
            "reached": reached,
            "triangles": triangles,
            "rank_sum": round(float(ranks.sum()), 9),
            "storage_mb": model.storage_bytes() / 1e6,
        }
    return results


@pytest.mark.benchmark(group="table8")
def test_table8_representations(benchmark, show_table):
    results = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    show_table(
        "Table 8 — BFS / TC / PageRank across storage models",
        ["model", "BFS [ms]", "TC [ms]", "PR [ms]", "storage [MB]"],
        [
            [kind, f"{1000 * rec['bfs_seconds']:.1f}",
             f"{1000 * rec['tc_seconds']:.1f}",
             f"{1000 * rec['pr_seconds']:.1f}", f"{rec['storage_mb']:.2f}"]
            for kind, rec in results.items()
        ],
    )
    write_artifact("table8_representations", results)

    # All models compute identical answers.
    assert len({rec["reached"] for rec in results.values()}) == 1
    assert len({rec["triangles"] for rec in results.values()}) == 1
    assert len({rec["rank_sum"] for rec in results.values()}) == 1
    # PageRank (pushing): unsorted EL's Θ(m)-per-neighborhood is slowest.
    assert results["EL-unsorted"]["pr_seconds"] > results["AL"]["pr_seconds"]
    # Predicted orderings (Table 8 complexities):
    # BFS: Θ(n+m) on AL beats Θ(n²)-scan AM and Θ(nm) unsorted EL.
    assert results["AL"]["bfs_seconds"] < results["AM"]["bfs_seconds"]
    assert results["AL"]["bfs_seconds"] < results["EL-unsorted"]["bfs_seconds"]
    # TC: the O(m) per-probe unsorted EL is by far the slowest.
    assert results["EL-unsorted"]["tc_seconds"] > 3 * results["AL"]["tc_seconds"]
    # AM pays n² storage on a sparse graph.
    assert results["AM"]["storage_mb"] > 4 * results["AL"]["storage_mb"]

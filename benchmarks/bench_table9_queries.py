"""Table 9: graph-query costs across storage models (appendix B).

Micro-benchmarks the six query kinds of Table 9 — vertex iteration, edge
iteration, neighborhood iteration, degree, edge existence — over AL, AM,
and the two edge lists, and checks the predicted complexity separations:
``has_edge`` is O(1) on AM vs Θ(m) on unsorted EL; neighborhoods are O(Δ)
on AL vs Θ(m) on unsorted EL; etc.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graph import GRAPH_MODELS, build_model
from repro.graph import generators as gen
from repro.platform import write_artifact

QUERIES = 400


def run_table9():
    graph = gen.erdos_renyi_nm(800, 4000, seed=99)
    rng = np.random.default_rng(7)
    probe_v = rng.integers(0, graph.num_nodes, size=QUERIES).tolist()
    probe_uv = rng.integers(0, graph.num_nodes, size=(QUERIES, 2)).tolist()
    results = {}
    for kind in GRAPH_MODELS:
        model = build_model(graph, kind)
        t0 = time.perf_counter()
        for v in probe_v:
            model.neighbors(v)
        neigh_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        for v in probe_v:
            model.degree(v)
        degree_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        hits = 0
        for u, v in probe_uv:
            hits += model.has_edge(u, v)
        edge_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        edge_count = sum(1 for _ in model.iter_edges())
        iter_seconds = time.perf_counter() - t0
        results[kind] = {
            "neighbors_us": 1e6 * neigh_seconds / QUERIES,
            "degree_us": 1e6 * degree_seconds / QUERIES,
            "has_edge_us": 1e6 * edge_seconds / QUERIES,
            "iter_edges_ms": 1e3 * iter_seconds,
            "hits": hits,
            "edge_count": edge_count,
        }
    return results


@pytest.mark.benchmark(group="table9")
def test_table9_queries(benchmark, show_table):
    results = benchmark.pedantic(run_table9, rounds=1, iterations=1)
    show_table(
        "Table 9 — per-query costs across storage models",
        ["model", "neighbors [us]", "degree [us]", "has_edge [us]",
         "iter edges [ms]"],
        [
            [kind, f"{rec['neighbors_us']:.1f}", f"{rec['degree_us']:.1f}",
             f"{rec['has_edge_us']:.1f}", f"{rec['iter_edges_ms']:.1f}"]
            for kind, rec in results.items()
        ],
    )
    write_artifact("table9_queries", results)

    # All models agree on query answers.
    assert len({rec["hits"] for rec in results.values()}) == 1
    assert len({rec["edge_count"] for rec in results.values()}) == 1
    # Θ(m) neighborhood scans on unsorted EL vs O(Δ)/O(log m + Δ) elsewhere.
    assert results["EL-unsorted"]["neighbors_us"] > 2 * results["AL"][
        "neighbors_us"
    ]
    assert results["EL-unsorted"]["neighbors_us"] > 2 * results["EL-sorted"][
        "neighbors_us"
    ]
    # Θ(m) edge-existence scans on unsorted EL vs O(1)/O(log) elsewhere.
    assert results["EL-unsorted"]["has_edge_us"] > 3 * results["AM"][
        "has_edge_us"
    ]
    assert results["EL-unsorted"]["has_edge_us"] > 3 * results["AL"][
        "has_edge_us"
    ]

"""Shared fixtures for the figure/table reproduction benches."""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print rows through captured stdout so they reach the terminal."""

    def _show(*args, **kwargs):
        with capsys.disabled():
            print(*args, **kwargs)

    return _show


@pytest.fixture
def show_table(capsys):
    """Render one paper-shaped table, bypassing pytest's capture."""
    from repro.platform import print_table

    def _show(title, header, rows):
        with capsys.disabled():
            print_table(title, header, rows)

    return _show

"""Plot the unified result artifacts (aggregate + session bench).

Consumes ``results/aggregate.json`` (``gms-aggregate/v2``, produced by
``python -m repro aggregate``) and ``results/session_bench.json``
(``gms-session-bench/v2``, produced by ``benchmarks/bench_session.py``)
and renders:

* per-backend speed vs accuracy (mean speedup over the reference vs mean
  relative error) — the paper's ProbGraph operating-curve view;
* measured vs modeled parallel speedup per dataset (the ``execution``
  blocks the suite artifacts carry);
* session cold-vs-warm query latency and resident-pool reuse bars.

Matplotlib is optional (the container may not ship it): with it, PNGs
land under ``results/plots/``; without it, the same figures degrade to
deterministic ASCII bar charts written as ``.txt`` next to where the
PNGs would be — so CI can always archive *something* and the script
never needs a new dependency.

Run::

    PYTHONPATH=src python benchmarks/plot_results.py [--results-dir results]
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

try:  # gated: never a hard dependency
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except Exception:  # pragma: no cover - environment dependent
    plt = None

BAR_WIDTH = 40


def _ascii_barchart(
    title: str, rows: Sequence[Tuple[str, float]], unit: str
) -> str:
    """One deterministic ASCII bar chart (the no-matplotlib fallback)."""
    lines = [title, "=" * len(title)]
    peak = max((value for _, value in rows), default=0.0)
    for label, value in rows:
        width = int(round(BAR_WIDTH * value / peak)) if peak > 0 else 0
        lines.append(f"{label:<28} {'#' * width:<{BAR_WIDTH}} "
                     f"{value:.4g} {unit}")
    return "\n".join(lines) + "\n"


def _emit(path_base: str, title: str,
          rows: Sequence[Tuple[str, float]], unit: str) -> str:
    """Render one bar figure as PNG (matplotlib) or TXT (fallback)."""
    if plt is not None:
        labels = [label for label, _ in rows]
        values = [value for _, value in rows]
        fig, ax = plt.subplots(figsize=(8, 0.5 * max(4, len(rows))))
        ax.barh(labels, values)
        ax.set_xlabel(unit)
        ax.set_title(title)
        ax.invert_yaxis()
        fig.tight_layout()
        path = path_base + ".png"
        fig.savefig(path, dpi=120)
        plt.close(fig)
        return path
    path = path_base + ".txt"
    with open(path, "w") as handle:
        handle.write(_ascii_barchart(title, rows, unit))
    return path


def _scatter_or_table(path_base: str, title: str,
                      points: Sequence[Tuple[str, float, float]],
                      xlabel: str, ylabel: str) -> str:
    """Speed-vs-accuracy scatter (or aligned table without matplotlib)."""
    if plt is not None:
        fig, ax = plt.subplots(figsize=(7, 5))
        for label, x, y in points:
            ax.scatter([x], [y])
            ax.annotate(label, (x, y), textcoords="offset points",
                        xytext=(4, 4), fontsize=8)
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        ax.set_title(title)
        fig.tight_layout()
        path = path_base + ".png"
        fig.savefig(path, dpi=120)
        plt.close(fig)
        return path
    path = path_base + ".txt"
    with open(path, "w") as handle:
        handle.write(f"{title}\n{'=' * len(title)}\n")
        handle.write(f"{'backend':<28} {xlabel:>14} {ylabel:>14}\n")
        for label, x, y in points:
            handle.write(f"{label:<28} {x:>14.4g} {y:>14.4g}\n")
    return path


def plot_aggregate(payload: Dict, out_dir: str) -> List[str]:
    emitted: List[str] = []
    backends = payload.get("backends", {})
    points = [
        (name, summary["mean_speedup"], summary["mean_rel_error"])
        for name, summary in sorted(backends.items())
        if summary.get("cells")
    ]
    if points:
        emitted.append(_scatter_or_table(
            os.path.join(out_dir, "speed_vs_accuracy"),
            "Per-backend speed vs accuracy (aggregate)",
            points, "mean speedup vs reference", "mean relative error",
        ))
    parallel = payload.get("parallel", [])
    rows = []
    for entry in parallel:
        tag = f"{entry['dataset']} ({entry['schedule']}x{entry['workers']})"
        rows.append((tag + " measured", entry["measured_speedup"]))
        if entry.get("modeled_speedup"):
            rows.append((tag + " modeled", entry["modeled_speedup"]))
    if rows:
        emitted.append(_emit(
            os.path.join(out_dir, "parallel_speedup"),
            "Measured vs modeled parallel speedup",
            rows, "speedup (x)",
        ))
    return emitted


def plot_session_bench(payload: Dict, out_dir: str) -> List[str]:
    emitted: List[str] = []
    rows: List[Tuple[str, float]] = []
    for row in payload.get("cold_warm", []):
        tag = f"{row['dataset']}/{row['kernel']}/{row['backend']}"
        rows.append((tag + " cold", 1000 * row["cold_seconds"]))
        rows.append((tag + " warm", 1000 * row["warm_seconds"]))
    if rows:
        emitted.append(_emit(
            os.path.join(out_dir, "session_cold_warm"),
            "Session query latency: cold vs warm",
            rows, "ms",
        ))
    rows = []
    for row in payload.get("pool_reuse", []):
        rows.append((f"{row['dataset']} first batch",
                     1000 * row["first_batch_seconds"]))
        rows.append((f"{row['dataset']} resident pool",
                     1000 * row["resident_batch_seconds"]))
        rows.append((f"{row['dataset']} per-call pool",
                     1000 * row["per_call_pool_seconds"]))
    if rows:
        emitted.append(_emit(
            os.path.join(out_dir, "session_pool_reuse"),
            "Batch latency: resident vs per-call pool",
            rows, "ms",
        ))
    return emitted


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="plot result artifacts")
    parser.add_argument("--results-dir", default="results")
    ns = parser.parse_args(argv)
    out_dir = os.path.join(ns.results_dir, "plots")
    os.makedirs(out_dir, exist_ok=True)
    emitted: List[str] = []
    for name, renderer in (
        ("aggregate.json", plot_aggregate),
        ("session_bench.json", plot_session_bench),
    ):
        path = os.path.join(ns.results_dir, name)
        if not os.path.exists(path):
            print(f"skipping {name}: not found under {ns.results_dir}/")
            continue
        with open(path) as handle:
            emitted.extend(renderer(json.load(handle), out_dir))
    if not emitted:
        print("nothing to plot (run `python -m repro aggregate` and "
              "`python benchmarks/bench_session.py` first)")
        return 1
    backend = "matplotlib" if plt is not None else "ascii fallback"
    print(f"rendered {len(emitted)} figure(s) via {backend}:")
    for path in emitted:
        print(f"  {path}")
    return 0


# ---------------------------------------------------------------------------
# Pytest form: the renderers must work on synthetic payloads either way.
# ---------------------------------------------------------------------------


def test_plot_renderers(tmp_path):
    aggregate = {
        "backends": {
            "sorted": {"cells": 2, "mean_speedup": 1.0,
                       "mean_rel_error": 0.0},
            "bloom": {"cells": 2, "mean_speedup": 1.7,
                      "mean_rel_error": 0.02},
        },
        "parallel": [{
            "dataset": "alpha", "schedule": "static", "workers": 2,
            "measured_speedup": 1.6, "modeled_speedup": 1.9,
        }],
    }
    session = {
        "cold_warm": [{
            "dataset": "alpha", "kernel": "tc", "backend": "bitset",
            "cold_seconds": 0.4, "warm_seconds": 0.1,
        }],
        "pool_reuse": [{
            "dataset": "alpha", "first_batch_seconds": 1.0,
            "resident_batch_seconds": 0.4, "per_call_pool_seconds": 0.9,
        }],
    }
    out = plot_aggregate(aggregate, str(tmp_path))
    out += plot_session_bench(session, str(tmp_path))
    assert len(out) == 4
    for path in out:
        assert os.path.exists(path)
        assert os.path.getsize(path) > 0


if __name__ == "__main__":
    raise SystemExit(main())

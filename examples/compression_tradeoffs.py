"""Graph-representation and compression trade-offs (paper section 6.8).

Walks the storage schemes of Figure 3 on a web-graph stand-in: plain CSR,
Log(Graph) with bit packing and with gap+varint encoding, the k²-tree,
and the effect of vertex relabelings on compressibility — reporting sizes
and access costs, and verifying mining results are representation-
independent (the whole point of GMS modularity).

Run:  python examples/compression_tradeoffs.py
"""

import time

from repro.compress import (
    K2Tree,
    LogGraph,
    bfs_relabel,
    degree_minimizing_relabel,
)
from repro.core import BitSet
from repro.graph import load_dataset, permute
from repro.mining import bron_kerbosch


def access_cost(rep, vertices) -> float:
    t0 = time.perf_counter()
    for v in vertices:
        rep.out_neigh(v)
    return time.perf_counter() - t0


def main() -> None:
    graph = load_dataset("wikipedia-mini")
    print(f"web graph: {graph}")
    probes = list(range(0, graph.num_nodes, 7))

    rows = []
    rows.append(("CSR (plain)", graph.storage_bytes(),
                 access_cost(graph, probes)))
    for encoding in ("bitpack", "varint-gap"):
        lg = LogGraph(graph, encoding)
        rows.append((f"Log(Graph) {encoding}", lg.storage_bytes(),
                     access_cost(lg, probes)))
    k2 = K2Tree(graph)
    rows.append(("k2-tree", k2.storage_bits() // 8, None))

    print(f"\n{'representation':<24}{'bytes':>10}{'rel. size':>10}"
          f"{'probe cost':>12}")
    print("-" * 58)
    base = rows[0][1]
    for name, size, cost in rows:
        cost_s = f"{1e6 * cost / len(probes):.1f} us" if cost else "-"
        print(f"{name:<24}{size:>10}{size / base:>9.0%}{cost_s:>12}")

    # Relabelings change compressibility without changing the graph.
    print("\nvarint-gap size under relabelings:")
    for label, perm_fn in (
        ("original", None),
        ("degree-minimizing", degree_minimizing_relabel),
        ("BFS order", bfs_relabel),
    ):
        g = graph if perm_fn is None else permute(graph, perm_fn(graph))
        size = LogGraph(g, "varint-gap").storage_bytes()
        print(f"  {label:<20} {size} bytes")

    # Representation independence: the mining result never changes.
    lg = LogGraph(graph, "bitpack")
    direct = bron_kerbosch(graph, "DEG", BitSet).num_cliques
    decompressed = bron_kerbosch(lg.to_csr(), "DEG", BitSet).num_cliques
    assert direct == decompressed
    print(f"\nmaximal cliques via CSR and via Log(Graph) agree: {direct}")


if __name__ == "__main__":
    main()

"""Concurrency analysis in practice (paper section 7).

Demonstrates the GMS workflow of judging an algorithm's scalability
*before* committing to an implementation: evaluate the closed-form
work/depth bounds of Table 5, then validate the prediction against a
simulated parallel execution of the real code (measured per-task costs
replayed through the W/p + D scheduler).

The worked comparison is the paper's own headline: BK over the exact
degeneracy order (DGR: n sequential peeling iterations) versus BK over
the (2+ε)-approximate order (ADG: O(log² n) depth) — theory says ADG
should dominate as threads grow, and the simulation agrees.

Run:  python examples/concurrency_analysis.py
"""

import math

from repro.core import BitSet
from repro.graph import load_dataset
from repro.mining import bron_kerbosch
from repro.platform import simulated_parallel_seconds
from repro.theory import TABLE5

THREADS = [1, 2, 4, 8, 16, 32]


def main() -> None:
    graph = load_dataset("orkut-mini")
    n, m = graph.num_nodes, graph.num_edges
    from repro.preprocess import degeneracy_order

    _, d = degeneracy_order(graph)
    print(f"graph: {graph}, degeneracy d={d}")

    # -- 1. A-priori judgement from the Table 5 bounds ----------------------
    print("\nTable 5 predictions (relative units):")
    for name in ("adg", "bk-adg", "bk-das"):
        bound = TABLE5[name]
        work = bound.work(n=n, m=m, d=d, k=4, eps=0.1)
        depth = bound.depth(n=n, m=m, d=d, k=4, eps=0.1)
        print(f"  {name:<12} work ~ {work:.3g}   depth ~ {depth:.3g}   "
              f"work/depth (max useful parallelism) ~ {work / depth:.1f}")

    # -- 2. Simulated scaling of the real implementations -------------------
    print(f"\nsimulated runtimes [ms] over {THREADS} threads:")
    for ordering in ("DGR", "ADG"):
        res = bron_kerbosch(graph, ordering, BitSet)
        times = [
            1000 * simulated_parallel_seconds(res, p, ordering=ordering)
            for p in THREADS
        ]
        cells = "  ".join(f"{t:7.1f}" for t in times)
        print(f"  BK-GMS-{ordering:<4} {cells}")
        print(f"      speedup at 32 threads: {times[0] / times[-1]:.1f}x "
              f"(reorder {1000 * res.reorder_seconds:.1f} ms, "
              f"{res.ordering_rounds} rounds)")

    print(
        "\nreading: DGR's sequential reordering caps its scaling exactly as "
        "the depth bounds predict;\nADG keeps the preprocessing off the "
        "critical path (O(log^2 n) rounds), so its curve keeps falling."
    )


if __name__ == "__main__":
    main()

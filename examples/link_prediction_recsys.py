"""Link prediction on a recommendation network (paper section 6.7).

Runs the paper's full protocol on the MovieRec stand-in: remove 10% of
the co-rating links, score the candidate pairs with each of the seven
vertex-similarity measures, and rank the schemes by the paper's
effectiveness metric ``eff = |E_predict ∩ E_rndm|`` — contrasting against
the random-guess baseline.  Also demonstrates the merge-vs-galloping
intersection choice (section 6.5).

Run:  python examples/link_prediction_recsys.py
"""

import time

from repro.graph import load_dataset
from repro.learning import SIMILARITY_MEASURES, evaluate_scheme, similarity_all_pairs


def main() -> None:
    graph = load_dataset("movierec-mini")
    print(f"recommendation graph: {graph}")
    non_edges = graph.num_nodes * (graph.num_nodes - 1) / 2 - graph.num_edges

    print(f"\n{'measure':<24}{'eff':>8}{'lift over random':>18}")
    print("-" * 50)
    results = []
    for measure in sorted(SIMILARITY_MEASURES):
        res = evaluate_scheme(graph, measure, fraction=0.1, seed=42)
        random_rate = res.removed / non_edges
        lift = res.effectiveness / random_rate if random_rate else 0.0
        results.append((res.effectiveness, measure, lift))
        print(f"{measure:<24}{res.effectiveness:>8.3f}{lift:>15.0f}x")

    best = max(results)
    print(f"\nbest scheme: {best[1]} "
          f"(eff {best[0]:.3f}, {best[2]:.0f}x better than random)")

    # The 5+ modularity hook: same measure, different intersection kernel.
    for algorithm in ("merge", "galloping"):
        t0 = time.perf_counter()
        pairs = similarity_all_pairs(graph, "jaccard", algorithm)
        dt = time.perf_counter() - t0
        print(f"jaccard all-pairs with {algorithm:<10} kernel: "
              f"{len(pairs)} pairs in {1000 * dt:.0f} ms")


if __name__ == "__main__":
    main()

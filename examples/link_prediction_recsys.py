"""Link prediction on a recommendation network (paper section 6.7).

Runs the paper's full protocol on the MovieRec stand-in: remove 10% of
the co-rating links, score the candidate pairs with each of the seven
vertex-similarity measures, and rank the schemes by the paper's
effectiveness metric ``eff = |E_predict ∩ E_rndm|`` — contrasting against
the random-guess baseline.  Also demonstrates the merge-vs-galloping
intersection choice (section 6.5) and the *approximate mining* path: the
sketch-based ``"jaccard-kmv"`` measure scored through per-vertex KMV
signatures, with its effectiveness loss against exact Jaccard.

Run:  python examples/link_prediction_recsys.py
"""

import time

from repro.approx import kmv_set_class
from repro.graph import load_dataset
from repro.learning import (
    SIMILARITY_MEASURES,
    effectiveness_loss,
    evaluate_scheme,
    similarity_all_pairs,
)


def main() -> None:
    graph = load_dataset("movierec-mini")
    print(f"recommendation graph: {graph}")
    non_edges = graph.num_nodes * (graph.num_nodes - 1) / 2 - graph.num_edges

    print(f"\n{'measure':<24}{'eff':>8}{'lift over random':>18}")
    print("-" * 50)
    results = []
    for measure in sorted(SIMILARITY_MEASURES):
        res = evaluate_scheme(graph, measure, fraction=0.1, seed=42)
        random_rate = res.removed / non_edges
        lift = res.effectiveness / random_rate if random_rate else 0.0
        results.append((res.effectiveness, measure, lift))
        print(f"{measure:<24}{res.effectiveness:>8.3f}{lift:>15.0f}x")

    best = max(results)
    print(f"\nbest scheme: {best[1]} "
          f"(eff {best[0]:.3f}, {best[2]:.0f}x better than random)")

    # The 5+ modularity hook: same measure, different intersection kernel.
    for algorithm in ("merge", "galloping"):
        t0 = time.perf_counter()
        pairs = similarity_all_pairs(graph, "jaccard", algorithm)
        dt = time.perf_counter() - t0
        print(f"jaccard all-pairs with {algorithm:<10} kernel: "
              f"{len(pairs)} pairs in {1000 * dt:.0f} ms")

    # Approximate mining: the "jaccard-kmv" sketch measure.  Each
    # neighborhood is hashed once into a bottom-K signature; every pair
    # then costs O(K) instead of an exact merge.  The effectiveness-loss
    # protocol reruns the identical split with exact and sketch Jaccard,
    # so the difference isolates the estimator error at each budget.
    print(f"\n{'kmv budget':<14}{'eff (kmv)':>10}{'eff (exact)':>13}{'loss':>8}")
    print("-" * 45)
    for K in (8, 32, 128):
        res = effectiveness_loss(graph, "jaccard", "jaccard-kmv",
                                 fraction=0.1, seed=42,
                                 kmv_cls=kmv_set_class(K))
        print(f"K={K:<12}{res.approx.effectiveness:>10.3f}"
              f"{res.exact.effectiveness:>13.3f}{res.loss:>+8.3f}")

    t0 = time.perf_counter()
    pairs = similarity_all_pairs(graph, "jaccard-kmv")
    dt = time.perf_counter() - t0
    print(f"jaccard-kmv all-pairs (K=128 signatures): "
          f"{len(pairs)} pairs in {1000 * dt:.0f} ms")


if __name__ == "__main__":
    main()

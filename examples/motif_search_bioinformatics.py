"""Motif search in a protein-interaction-style network (bioinformatics).

The paper motivates graph mining for bioinformatics (analyzing protein
structures).  On the biological stand-in: (1) count classic 4-vertex
motifs with labeled subgraph isomorphism (VF2 / VF3-Light / Glasgow all
agree), (2) mine the frequent connected patterns with FSM, and (3) find
k-clique-stars — the relaxed dense motifs of section 6.6.

Run:  python examples/motif_search_bioinformatics.py
"""

import numpy as np

from repro.graph import build_undirected, load_dataset
from repro.isomorphism import glasgow_count, vf2_count, vf3light_count
from repro.mining import frequent_subgraphs, kclique_stars

MOTIFS = {
    "path-4": [(0, 1), (1, 2), (2, 3)],
    "star-4": [(0, 1), (0, 2), (0, 3)],
    "cycle-4": [(0, 1), (1, 2), (2, 3), (3, 0)],
    "tailed-triangle": [(0, 1), (1, 2), (2, 0), (2, 3)],
    "clique-4": [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
}


def main() -> None:
    graph = load_dataset("sc-ht-mini")
    print(f"gene-interaction graph: {graph}")

    # -- 1. Motif census via subgraph isomorphism ---------------------------
    print(f"\n{'motif':<18}{'embeddings':>12}   (induced, VF3-Light)")
    print("-" * 46)
    for name, edges in MOTIFS.items():
        n = 1 + max(max(e) for e in edges)
        query = build_undirected(n, edges)
        count = vf3light_count(graph, query, induced=True)
        print(f"{name:<18}{count:>12}")
        # All three solvers agree (cheap cross-check on the smallest motif).
        if name == "star-4":
            assert count == vf2_count(graph, query, induced=True)
            assert count == glasgow_count(graph, query, induced=True)

    # -- 2. Frequent subgraph mining ----------------------------------------
    patterns = frequent_subgraphs(graph, min_support=25, max_edges=3)
    print(f"\nfrequent patterns (MNI support >= 25, <= 3 edges): "
          f"{len(patterns)}")
    for p in patterns:
        print(f"  {p.num_vertices} vertices, edges {p.edges}: "
              f"support {p.support}, {p.embeddings} embeddings")

    # -- 3. k-clique-stars ----------------------------------------------------
    stars = kclique_stars(graph, k=3, min_star=2)
    print(f"\n3-clique-stars with >= 2 star vertices: {len(stars)}")
    if stars:
        clique, star = max(stars, key=lambda cs: len(cs[1]))
        print(f"  largest star: triangle {clique} with "
              f"{len(star)} common neighbors")


if __name__ == "__main__":
    main()

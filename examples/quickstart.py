"""Quickstart: the GMS pipeline in five steps.

Loads a dataset from the registry, characterizes it (the Table 7 columns),
applies the (2+ε)-approximate degeneracy reordering, lists all maximal
cliques with the set-algebra Bron–Kerbosch, and reports runtime plus the
paper's *algorithmic throughput* metric — all through the public API.

Run:  python examples/quickstart.py [dataset-name]
"""

import sys

from repro.core import BitSet
from repro.graph import load_dataset, summarize
from repro.mining import bron_kerbosch, kclique_count
from repro.platform import simulated_parallel_seconds
from repro.runtime import algorithmic_throughput


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sc-ht-mini"

    # 1. Load a graph (CSR representation) from the dataset registry.
    graph = load_dataset(name)
    print(f"loaded {name}: {graph}")

    # 2. Characterize it — the structural parameters of Table 7.
    stats = summarize(graph, name)
    print(stats.row())

    # 3+4. Reorder with ADG and list maximal cliques (Bron–Kerbosch with
    # Tomita pivoting over bitvector sets) — one call does both stages.
    result = bron_kerbosch(graph, ordering="ADG", set_cls=BitSet)
    print(
        f"{result.variant}: {result.num_cliques} maximal cliques "
        f"(largest: {result.max_clique_size} vertices) in "
        f"{1000 * result.total_seconds:.1f} ms "
        f"({1000 * result.reorder_seconds:.2f} ms reordering)"
    )

    # 5. Metrics: algorithmic throughput and the simulated 16-thread time.
    throughput = algorithmic_throughput(result.num_cliques,
                                        result.total_seconds)
    par16 = simulated_parallel_seconds(result, threads=16)
    print(f"algorithmic throughput: {throughput:,.0f} maximal cliques/s")
    print(f"simulated 16-thread runtime: {1000 * par16:.2f} ms")

    # Bonus: count 4-cliques with the k-clique kernel (Listing 7).
    kc = kclique_count(graph, 4, ordering="ADG", parallel="edge")
    print(f"4-cliques: {kc.count} "
          f"({algorithmic_throughput(kc.count, kc.total_seconds):,.0f}/s)")


if __name__ == "__main__":
    main()

"""Session quickstart: the fluent query API over one long-lived session.

Everything the platform owns — loaded graphs, the shared (optionally
byte-bounded) materialization cache, merged set-algebra counters, and
the resident worker pool — lives on one :class:`MiningSession`; queries
are fluent one-liners that compile down to the same
``ExperimentPlan``/``run_cell`` machinery as ``python -m repro suite``.

The example walks the service lifecycle: cold query, warm repeat (cache
hit), a sketched approximate query, a batch fanned out over the resident
2-worker pool (started lazily, pre-warmed once, reused), and the final
session stats.

Run:  PYTHONPATH=src python examples/session_quickstart.py
"""

from __future__ import annotations

from repro.platform.session import MiningSession


def main() -> None:
    # One session per service process.  workers=2 gives it a resident
    # pool for batches; single queries stay in-process (lowest latency).
    with MiningSession(workers=2, cache_budget_bytes=64 << 20) as session:

        # 1. A cold query: loads the graph, computes the degeneracy
        #    ordering, materializes the oriented SetGraph, runs kClist.
        cold = (
            session.query("kclique", k=4)
            .on("ca-grqc")                    # real dataset (or its
            .backend("bitset")                # synthetic twin offline)
            .ordering("degeneracy")
            .run()
        )
        print(f"cold : {cold.value:,} 4-cliques in "
              f"{1000 * cold.wall_seconds:.1f} ms "
              f"({cold.cache_misses} cache misses)")

        # 2. The same query again: everything is already materialized in
        #    the session cache — only the kernel runs.
        warm = (
            session.query("kclique", k=4)
            .on("ca-grqc").backend("bitset").ordering("degeneracy")
            .run()
        )
        print(f"warm : {warm.value:,} 4-cliques in "
              f"{1000 * warm.wall_seconds:.1f} ms "
              f"({warm.cache_hits} cache hits, {warm.cache_misses} misses)")

        # 3. Approximate backends are a budget away: state the accuracy
        #    target, the platform sizes the sketch (here for triangle
        #    counting, the ProbGraph headline kernel).
        exact_tc = session.query("tc").on("ca-grqc").backend("bitset").run()
        sketched = (
            session.query("tc")
            .on("ca-grqc")
            .backend("kmv", kmv_k=128)
            .run()
        )
        error = abs(sketched.value - exact_tc.value) / max(exact_tc.value, 1)
        print(f"kmv  : {sketched.value:,} triangles vs {exact_tc.value:,} "
              f"exact [{sketched.resolved_class}] — {100 * error:.2f}% off")

        # 4. Batch traffic fans out over the resident pool (one pool per
        #    session, created now, reused by every later batch or plan).
        batch = session.query("tc").on("ca-grqc").run_many([
            {"backend": "sorted"},
            {"backend": "bitset"},
            {"backend": "roaring"},
            {"backend": "bloom", "fpr": 0.02},
        ])
        print("batch:", ", ".join(
            f"{r.backend}={r.value:,}" for r in batch
        ), f"(pool starts: {session.pool_starts})")

        # 5. The session's merged observability: cache economics, pool
        #    lifecycle, and the set-algebra counters across every query.
        stats = session.stats()
        print(f"stats: {stats['queries']} queries, "
              f"cache {stats['cache']['hits']}h/{stats['cache']['misses']}m, "
              f"{stats['counters']['set_ops']:,} set ops, "
              f"{stats['counters']['memory_traffic']:,} elements moved")
    # Leaving the with-block closed the session and tore down the pool.


if __name__ == "__main__":
    main()

"""Social-network analysis: dense groups, communities, and influencers.

The workload the paper's introduction motivates for social sciences:
on a social-network stand-in, find (1) the tightly-knit friend groups
(maximal cliques and k-cores), (2) the community structure (Louvain and
label propagation, with modularity), and (3) the strongest non-adjacent
ties (vertex similarity) — each exercising a different GMS subsystem.

Run:  python examples/social_network_analysis.py
"""

from collections import Counter

import numpy as np

from repro.core import BitSet
from repro.graph import load_dataset
from repro.learning import label_propagation, louvain, modularity, similarity
from repro.mining import bron_kerbosch, core_histogram, densest_subgraph, k_core


def main() -> None:
    graph = load_dataset("orkut-mini")
    print(f"social graph: {graph}")

    # -- 1. Tight groups ---------------------------------------------------
    bk = bron_kerbosch(graph, "ADG", BitSet, collect=True)
    sizes = Counter(len(c) for c in bk.cliques)
    print(f"\nmaximal cliques: {bk.num_cliques}")
    print("clique-size histogram:",
          dict(sorted(sizes.items())))
    largest = max(bk.cliques, key=len)
    print(f"largest clique ({len(largest)} members): {sorted(largest)}")

    hist = core_histogram(graph)
    top_k = hist[-1][0]
    core_sub, members = k_core(graph, top_k)
    print(f"innermost core: k={top_k} with {len(members)} vertices")

    verts, density = densest_subgraph(graph)
    print(f"densest subgraph: {len(verts)} vertices at density {density:.2f}")

    # -- 2. Communities -----------------------------------------------------
    lv = louvain(graph)
    lp = label_propagation(graph, seed=1)
    print(f"\nLouvain: {lv.max() + 1} communities, "
          f"modularity {modularity(graph, lv):.3f}")
    print(f"Label propagation: {lp.max() + 1} communities, "
          f"modularity {modularity(graph, lp):.3f}")

    # -- 3. Strong non-adjacent ties (friend recommendations) ---------------
    hub = int(np.argmax(graph.degrees()))
    candidates = []
    for v in graph.vertices():
        if v != hub and not graph.has_edge(hub, v):
            score = similarity(graph, hub, v, "adamic_adar")
            if score > 0:
                candidates.append((score, v))
    candidates.sort(reverse=True)
    print(f"\ntop friend recommendations for hub vertex {hub} "
          f"(degree {graph.out_degree(hub)}):")
    for score, v in candidates[:5]:
        print(f"  vertex {v}: adamic-adar {score:.2f}")


if __name__ == "__main__":
    main()

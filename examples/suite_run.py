"""Driving the declarative experiment suite from the library API.

``python -m repro suite`` is the CLI face of the same machinery used
below: build an :class:`~repro.platform.suite.ExperimentPlan`, run it,
and consume the unified artifact payloads in-process.  The example also
shows the two extension hooks that make the sweep *registry-driven*:

* a custom **set backend** registered via
  :func:`repro.core.registry.register_set_class` joins the backend axis;
* a custom **kernel** registered via
  :func:`repro.platform.suite.register_suite_kernel` joins the kernel
  axis.

The second half re-runs the same plan on a session with a 2-worker
*resident* pool (the library face of ``python -m repro suite --workers
2``) and a bounded ``MaterializationCache``, and checks the parallel
artifact is cell-for-cell identical to the sequential one up to timing
— custom kernel included, since workers are forked from this process.
Plans run through :meth:`MiningSession.run_plan` — the engine behind the
deprecated ``run_suite`` shim — so the cache (and, for parallel
sessions, the worker pool) stays warm across every plan the session
serves; see ``examples/session_quickstart.py`` for the fluent
single-query face of the same session object.

Run with::

    PYTHONPATH=src python examples/suite_run.py
"""

from __future__ import annotations

from repro.platform import print_table
from repro.platform.runner import diff_payloads
from repro.platform.session import MiningSession
from repro.platform.suite import (
    SUITE_KERNELS,
    ExperimentPlan,
    register_suite_kernel,
)


def wedge_count(graph, set_cls, ordering, plan, cache):
    """Paths of length two — a one-liner against the SetGraph algebra."""
    sg = cache.set_graph(graph, set_cls)
    return sum(
        d * (d - 1) // 2
        for d in (sg.out_degree(v) for v in sg.vertices())
    )


def main() -> None:
    # 1. A custom kernel joins the sweep exactly like the built-ins did.
    register_suite_kernel("wedges", wedge_count,
                          "wedge (2-path) count", uses_ordering=False)

    # 2. Declare the sweep: datasets × orderings × backends × kernels,
    #    with the sketch budgets stated once.  bloom_fpr auto-sizes the
    #    shared Bloom budget from an accuracy target (2% false positives)
    #    instead of a raw bit count.
    plan = ExperimentPlan(
        datasets=("sc-ht-mini",),
        kernels=("tc", "4clique", "bk", "wedges"),
        set_classes=("bitset", "roaring", "bloom", "kmv"),
        orderings=("DGR", "ADG"),
        bloom_fpr=0.02,
        repeats=1,
    )

    # 3. Run it through a session: one shared MaterializationCache means
    #    each (backend, ordering) pair is converted exactly once, however
    #    many kernels — or later plans — consume it.
    session = MiningSession()
    payloads = session.run_plan(plan)

    for payload in payloads:
        mat = payload["materialization"]
        print_table(
            f"{payload['dataset']}: {len(payload['cells'])} cells, "
            f"{mat['misses']} materializations ({mat['hits']} cache hits)",
            ["kernel", "order", "backend", "exact", "value", "rel err",
             "ms"],
            [
                [c["kernel"], c["ordering"], c["set_class"],
                 "yes" if c["exact"] else "no", f"{c['value']:,}",
                 f"{100 * c['rel_error']:.2f}%",
                 f"{1000 * c['seconds']:.1f}"]
                for c in payload["cells"]
            ],
        )

    # 4. The same cells, sliced per backend: the speed-vs-accuracy view
    #    `python -m repro aggregate` builds across datasets.
    cells = payloads[0]["cells"]
    for backend in ("bitset", "bloom"):
        mine = [c for c in cells if c["set_class"] == backend]
        worst = max(c["rel_error"] for c in mine)
        total_ms = 1000 * sum(c["seconds"] for c in mine)
        print(f"{backend:<8} worst error {100 * worst:.2f}%  "
              f"total kernel time {total_ms:.1f} ms")

    # 5. The same plan through the sharded process-pool runtime, with the
    #    per-worker MaterializationCache bounded to 16 MiB.  The artifact
    #    must agree with the sequential run on every deterministic field
    #    (suite-diff's check) — only the timing differs.  Caveat: that
    #    identity is guaranteed as long as the budget never evicts a
    #    cell's own materializations between its warm-up and metered
    #    runs (a too-tight budget would fold re-materialization work
    #    into some cells' counters), so check evictions before diffing.
    with MiningSession(workers=2, schedule="static",
                       cache_budget_bytes=16 << 20) as pool_session:
        parallel = pool_session.run_plan(plan)[0]
    assert parallel["materialization"]["evictions"] == 0
    assert diff_payloads(payloads[0], parallel) == []
    execution = parallel["execution"]
    modeled = execution["modeled"][execution["schedule"]]
    mat = parallel["materialization"]
    print(f"\nparallel run ({execution['schedule']} x "
          f"{execution['workers']} workers): "
          f"{1000 * execution['measured_seconds']:.1f} ms wall, "
          f"{execution['measured_speedup']:.2f}x over summed cell times "
          f"(scheduler model: {modeled['speedup']:.2f}x); "
          f"pool-wide cache: {mat['hits']} hits, {mat['misses']} misses, "
          f"{mat['evictions']} evictions under the byte budget")
    print("parallel artifact identical to sequential up to timing: OK")

    session.close()
    del SUITE_KERNELS["wedges"]  # leave the registry as we found it


if __name__ == "__main__":
    main()

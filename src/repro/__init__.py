"""repro — a from-scratch Python reproduction of GraphMineSuite (GMS).

GraphMineSuite (Besta et al., VLDB 2021) is a benchmarking suite for
high-performance graph mining built on *set algebra*: graph mining
algorithms are decomposed into set operations (∩, ∪, \\, |·|, ∈) whose
implementations — and the underlying set representations — can be swapped
independently of algorithm code.

Subpackages
-----------
``repro.core``          set-algebra interface + 4 representations (§5)
``repro.graph``         CSR / set-centric graphs, generators, datasets (§2, §5.3)
``repro.compress``      Log(Graph), k²-trees, varint/gap/RLE, relabelings (§6.8)
``repro.preprocess``    DEG / DGR / ADG vertex orderings (§6.1)
``repro.runtime``       work–depth model, scheduler simulation, PAPI facade (§7)
``repro.mining``        Bron–Kerbosch, k-cliques, k-cores, FSM, … (§6)
``repro.isomorphism``   VF2, VF3-Light, Glasgow, parallel SI (§6.4)
``repro.learning``      similarity, link prediction, clustering (§6.5, §6.7)
``repro.optimization``  coloring, MST, min-cut (§4.1.4)
``repro.platform``      pipeline, CLI, benchmark harness (§5.4)
``repro.theory``        closed-form bounds of Tables 5/6/8 (§7)
"""

from . import (
    compress,
    core,
    graph,
    isomorphism,
    learning,
    mining,
    optimization,
    platform,
    preprocess,
    runtime,
    theory,
)
from .core import BitSet, HashSet, RoaringSet, SetBase, SortedSet
from .graph import CSRGraph, build_undirected, load_dataset
from .mining import bron_kerbosch, kclique_count

__version__ = "1.0.0"

__all__ = [
    "core",
    "graph",
    "compress",
    "preprocess",
    "runtime",
    "mining",
    "isomorphism",
    "learning",
    "optimization",
    "platform",
    "theory",
    "SetBase",
    "SortedSet",
    "BitSet",
    "RoaringSet",
    "HashSet",
    "CSRGraph",
    "build_undirected",
    "load_dataset",
    "bron_kerbosch",
    "kclique_count",
    "__version__",
]

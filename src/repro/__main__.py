"""Command-line entry point: ``python -m repro <command> ...``.

The C++ GMS platform ships one benchmark binary per algorithm; this module
is the Python equivalent — a single driver exposing the toolchain stages
(load → representation → preprocess → kernel → metrics) over the dataset
registry, the set-class registry, and the ordering registry.

Commands
--------
``datasets``            list the Table 7 stand-in registry
``stats <dataset>``     print the Table 7 row of one dataset
``bk <dataset>``        maximal clique listing (variant/set/ordering flags)
``kclique <dataset>``   k-clique counting
``approx <dataset>``    sketch-based approximate counting (ProbGraph workload)
``similarity <dataset>``link-prediction effectiveness of every measure
``color <dataset>``     graph coloring (JP priorities / Johansson)
``budget-sweep``        CLI-driven sketch-budget sweep → results/ artifact
``suite``               declarative kernel × backend × ordering experiment
                        suite (``--smoke`` for the tiny CI matrix;
                        ``--workers N --schedule static|dynamic`` shards
                        the cells over a process pool) →
                        ``results/suite_<dataset>.json``
``suite-diff``          compare two suite artifacts up to timing fields
                        (the parallel-vs-sequential determinism check)
``serve``               session REPL: one long-lived ``MiningSession``
                        (shared materialization cache, resident
                        ``--workers N`` pool) answers ``query``/``suite``
                        lines from stdin — repeated queries are warm;
                        ``--http PORT`` serves the same session over
                        asyncio HTTP/JSON instead (``POST /query``,
                        ``POST /suite`` jobs, ``GET /jobs/<id>``,
                        ``GET /stats``) with admission control and
                        per-tenant quotas
``aggregate``           merge suite + budget-sweep artifacts into
                        ``results/aggregate.json`` (per-backend
                        speed-vs-accuracy summaries + measured-vs-modeled
                        parallel speedups)
``lint``                AST-based invariant analyzer (``repro.analysis``):
                        GMS001 set-algebra purity, GMS002 counter
                        discipline, GMS003 resource lifecycle, GMS004
                        silent suppression, GMS005 determinism, GMS006
                        deprecated shims; ``--format json`` emits the
                        ``gms-lint/v1`` artifact the CI gate diffs
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.registry import get_set_class, set_class_names
from .graph import DATASETS, load_dataset, summarize
from .learning import evaluate_scheme, known_measures
from .mining import (
    BK_VARIANTS,
    approx_four_clique_count,
    approx_triangle_count,
    kclique_count,
    run_bk_variant,
    sketch_pivot_bron_kerbosch,
)
from .optimization import johansson, jones_plassmann, verify_coloring
from .platform import (
    add_sketch_budget_args,
    resolve_set_class,
    simulated_parallel_seconds,
)
from .preprocess.ordering import ORDERINGS
from .runtime import algorithmic_throughput


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GraphMineSuite reproduction driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset registry")

    p = sub.add_parser("stats", help="Table 7 row of one dataset")
    p.add_argument("dataset")

    p = sub.add_parser("bk", help="maximal clique listing")
    p.add_argument("dataset")
    p.add_argument("--variant", default="BK-GMS-ADG", choices=BK_VARIANTS)
    p.add_argument("--set-class", default="bitset",
                   choices=set_class_names())
    p.add_argument("--threads", type=int, default=16)

    p = sub.add_parser("kclique", help="k-clique counting")
    p.add_argument("dataset")
    p.add_argument("-k", type=int, default=4)
    p.add_argument("--ordering", default="ADG", choices=sorted(ORDERINGS))
    p.add_argument("--parallel", default="edge", choices=["node", "edge"])

    p = sub.add_parser("approx", help="sketch-based approximate counting")
    p.add_argument("dataset")
    p.add_argument("--kernel", default="tc", choices=["tc", "4clique", "bk"])
    p.add_argument("--set-class", default="bloom",
                   choices=set_class_names())
    p.add_argument("--reconcile", action="store_true",
                   help="4clique: exact candidate sets at every level, "
                        "estimates only at the top (counting) level")
    add_sketch_budget_args(p)

    p = sub.add_parser("similarity", help="link-prediction effectiveness")
    p.add_argument("dataset")
    p.add_argument("--fraction", type=float, default=0.1)

    p = sub.add_parser(
        "budget-sweep",
        help="CLI-driven sketch-budget sweep (flags of the shared "
             "benchmark parser; writes results/budget_sweep_<dataset>.json)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)

    p = sub.add_parser(
        "suite",
        help="declarative kernel × backend × ordering experiment suite "
             "(--smoke for the tiny CI matrix; writes "
             "results/suite_<dataset>.json)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)

    p = sub.add_parser(
        "suite-diff",
        help="compare two suite artifacts up to timing fields "
             "(parallel-vs-sequential determinism check)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)

    p = sub.add_parser(
        "aggregate",
        help="merge suite/budget-sweep artifacts into results/aggregate.json",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)

    p = sub.add_parser(
        "lint",
        help="AST-based invariant analyzer: set-algebra purity, counter "
             "discipline, resource lifecycle, silent suppression, "
             "determinism, deprecated shims (gms-lint/v1 artifact)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)

    p = sub.add_parser(
        "serve",
        help="session REPL: serve repeated query/suite lines from one "
             "long-lived MiningSession (resident --workers N pool); "
             "--http PORT serves HTTP/JSON instead",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)

    p = sub.add_parser("color", help="graph coloring")
    p.add_argument("dataset")
    p.add_argument("--method", default="JP-SL",
                   choices=["JP-random", "JP-FF", "JP-LF", "JP-SL",
                            "Johansson"])
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "budget-sweep":
        # The sweep owns the full shared benchmark parser (dataset, budgets,
        # ordering, …), so its flags are forwarded wholesale instead of
        # being re-declared on this driver's subparser.
        from .platform.budget_sweep import main as budget_sweep_main

        return budget_sweep_main(argv[1:])
    if argv and argv[0] == "suite":
        # Same forwarding pattern: the suite owns its own parser (plan
        # selection + the shared sketch-budget and parallel flags).
        from .platform.suite import main as suite_main

        return suite_main(argv[1:])
    if argv and argv[0] == "suite-diff":
        from .platform.runner import diff_main

        return diff_main(argv[1:])
    if argv and argv[0] == "aggregate":
        from .platform.aggregate import main as aggregate_main

        return aggregate_main(argv[1:])
    if argv and argv[0] == "serve":
        from .platform.serve import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "lint":
        # The analyzer is stdlib-only and owns its full parser (paths,
        # rule selection, baseline flags) — forwarded like the suite.
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)

    if args.command == "datasets":
        try:
            for name, spec in sorted(DATASETS.items()):
                print(f"{name:<22} [{spec.category}]  mirrors {spec.mirrors}: "
                      f"{spec.why}")
        except BrokenPipeError:  # e.g. `... | head`
            pass
        return 0

    graph = load_dataset(args.dataset)

    if args.command == "stats":
        print(summarize(graph, args.dataset).row())
        return 0

    if args.command == "bk":
        res = run_bk_variant(graph, args.variant,
                             set_cls=get_set_class(args.set_class))
        par = simulated_parallel_seconds(res, args.threads)
        print(f"{res.variant}: {res.num_cliques} maximal cliques "
              f"(max size {res.max_clique_size})")
        print(f"  sequential {1000 * res.total_seconds:.1f} ms "
              f"({1000 * res.reorder_seconds:.2f} ms reorder), "
              f"simulated {args.threads}-thread {1000 * par:.2f} ms")
        print(f"  throughput {algorithmic_throughput(res.num_cliques, par):,.0f} cliques/s")
        return 0

    if args.command == "kclique":
        res = kclique_count(graph, args.k, args.ordering, args.parallel)
        print(f"{res.variant}: {res.count} {args.k}-cliques in "
              f"{1000 * res.total_seconds:.1f} ms "
              f"({res.throughput():,.0f}/s)")
        return 0

    if args.command == "approx":
        try:
            set_cls = resolve_set_class(
                args.set_class, bloom_bits=args.bloom_bits, kmv_k=args.kmv_k,
                bloom_shared_bits=args.bloom_shared_bits,
                num_sets=graph.num_nodes,
                bloom_fpr=args.bloom_fpr,
                avg_set_size=(
                    2.0 * graph.num_edges / graph.num_nodes
                    if graph.num_nodes else 0.0
                ),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.kernel == "bk":
            bk = sketch_pivot_bron_kerbosch(graph, set_cls)
            print(f"bk-sketch-pivot [{bk.pivot_class}]: "
                  f"{bk.num_cliques} maximal cliques "
                  f"(exact {bk.exact_num_cliques}, "
                  f"identical: {bk.identical})")
            print(f"  recursion {bk.estimate_calls} calls "
                  f"(exact pivots {bk.exact_calls}, "
                  f"{bk.call_overhead:.2f}x), "
                  f"{1000 * bk.estimate_seconds:.1f} ms vs "
                  f"{1000 * bk.exact_seconds:.1f} ms")
            return 0 if bk.identical else 1
        if args.kernel == "tc":
            res = approx_triangle_count(graph, set_cls)
            what = "triangles"
        else:
            res = approx_four_clique_count(graph, set_cls,
                                           reconcile=args.reconcile)
            what = "4-cliques"
        print(f"{res.kernel} [{res.set_class}]: estimate {res.estimate:,} "
              f"{what} (exact {res.exact:,}, "
              f"rel. error {100 * res.relative_error:.2f}%)")
        print(f"  estimator {1000 * res.estimate_seconds:.1f} ms, "
              f"exact baseline {1000 * res.exact_seconds:.1f} ms "
              f"({res.speedup:.2f}x)")
        return 0

    if args.command == "similarity":
        for measure in known_measures():
            res = evaluate_scheme(graph, measure, fraction=args.fraction)
            print(f"{measure:<24} eff {res.effectiveness:.3f} "
                  f"({res.predicted_correct}/{res.removed})")
        return 0

    if args.command == "color":
        if args.method == "Johansson":
            res = johansson(graph)
        else:
            res = jones_plassmann(graph, args.method.split("-")[1])
        ok = verify_coloring(graph, res.colors)
        print(f"{res.method}: {res.num_colors} colors in {res.rounds} "
              f"rounds (proper: {ok})")
        return 0 if ok else 1

    return 2


if __name__ == "__main__":
    sys.exit(main())

"""``repro.analysis`` — project-invariant static analysis (``repro lint``).

An AST-based analyzer that mechanically enforces the contracts the
suite's correctness-and-comparability story rests on: all mining goes
through the :class:`SetBase` algebra (GMS001), every backend op
accounts its element traffic (GMS002), shared resources are released on
every path (GMS003), no exception is swallowed silently (GMS004),
artifact values are deterministic (GMS005), and nobody calls the
deprecation shims internally (GMS006).

Entry points
------------
* ``python -m repro lint`` — the CLI (:mod:`repro.analysis.cli`);
* :func:`analyze_paths` / :func:`analyze_source` — the library API the
  tests drive;
* :func:`registered_rules` — the plugin registry.

The package is deliberately stdlib-only (``ast`` + ``tokenize``): the
linter must run in environments where the suite's numeric dependencies
are absent or broken — that is often exactly when you want it.
"""

from .baseline import Baseline, BASELINE_SCHEMA
from .engine import (
    LintError,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    iter_python_files,
    register,
    registered_rules,
)
from .findings import Finding

__all__ = [
    "Baseline",
    "BASELINE_SCHEMA",
    "Finding",
    "LintError",
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "register",
    "registered_rules",
]

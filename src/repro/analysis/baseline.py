"""Baseline file support — grandfathered findings that do not gate.

The committed baseline (``lint_baseline.json`` at the repo root) lists
findings that predate a rule and are accepted as-is; ``repro lint``
exits non-zero only for findings *not* in the baseline, so CI gates on
new violations while the grandfathered ones stay visible in the
artifact (tagged ``"baselined": true``) until someone fixes them and
shrinks the file.

Matching is by :meth:`~repro.analysis.findings.Finding.baseline_key` —
``(rule, path, message)``, no line numbers — and multiset-aware: two
identical findings need two baseline entries, so a baselined file
cannot silently grow more copies of the same violation.

Schema (``gms-lint-baseline/v1``)::

    {"schema": "gms-lint-baseline/v1",
     "entries": [{"rule": "GMS001", "path": "src/...", "message": "..."}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Counter as CounterT
from typing import Dict, List, Tuple
from collections import Counter

from .findings import Finding

__all__ = ["Baseline", "BASELINE_SCHEMA"]

BASELINE_SCHEMA = "gms-lint-baseline/v1"

_Key = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, entries: CounterT[_Key] = None) -> None:
        self.entries: CounterT[_Key] = Counter(entries or ())

    # -- I/O ----------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {BASELINE_SCHEMA!r}, "
                f"got {payload.get('schema')!r}"
            )
        entries: CounterT[_Key] = Counter()
        for entry in payload.get("entries", ()):
            entries[(entry["rule"], entry["path"], entry["message"])] += 1
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(Counter(f.baseline_key() for f in findings))

    def dump(self, path: Path) -> None:
        entries = sorted(self.entries.elements())
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [
                {"rule": rule, "path": rel, "message": message}
                for rule, rel, message in entries
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    # -- matching -----------------------------------------------------------
    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into (new, baselined), consuming entries.

        Each baseline entry absorbs at most one finding, in sorted
        finding order, so the split is deterministic and a duplicate
        violation beyond the grandfathered count surfaces as new.
        """
        budget = Counter(self.entries)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in sorted(findings):
            key = finding.baseline_key()
            if budget[key] > 0:
                budget[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def stale_entries(self, findings: List[Finding]) -> List[Dict[str, str]]:
        """Baseline entries no current finding matches (fixed violations).

        Reported so the baseline file shrinks as debt is paid instead of
        fossilizing — a stale entry is a nudge, not a gate failure.
        """
        budget = Counter(self.entries)
        budget.subtract(Counter(f.baseline_key() for f in findings))
        stale = []
        for (rule, path, message), count in sorted(budget.items()):
            for _ in range(max(0, count)):
                stale.append({"rule": rule, "path": path, "message": message})
        return stale

"""``python -m repro lint`` — the analyzer's command-line front end.

Runs the GMS rule pack over the repo (default: ``src/repro``), applies
the committed baseline, and reports::

    repro lint                          # text report, exit 1 on new findings
    repro lint --format json            # gms-lint/v1 artifact on stdout
    repro lint --format json --output results/lint.json
    repro lint --select GMS001,GMS004   # only these rules
    repro lint --ignore GMS005          # all but these
    repro lint --rules                  # list the registered rules
    repro lint --write-baseline         # grandfather today's findings
    repro lint --no-baseline            # gate on *all* findings

Determinism is part of the artifact contract (the CI gate diffs it):
findings are sorted, paths are repo-relative with POSIX separators, and
the JSON contains no timestamps or absolute paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import LintError, analyze_paths, registered_rules
from .findings import Finding

__all__ = ["main", "LINT_SCHEMA", "DEFAULT_BASELINE_NAME", "find_repo_root"]

LINT_SCHEMA = "gms-lint/v1"
DEFAULT_BASELINE_NAME = "lint_baseline.json"


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor holding ``src/repro`` (else *start* itself).

    The root anchors repo-relative finding paths, so the artifact and
    the baseline agree no matter which subdirectory the CLI ran from.
    """
    for candidate in [start, *start.parents]:
        if (candidate / "src" / "repro" / "__init__.py").is_file():
            return candidate
    return start


def _parse_rule_list(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [item.strip() for item in text.split(",") if item.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based project-invariant analyzer (GMS rule pack)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument("--rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run")
    parser.add_argument("--ignore", metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--output", metavar="PATH",
                        help="also write the report to PATH")
    parser.add_argument("--baseline", metavar="PATH",
                        help=f"baseline file (default: "
                             f"<root>/{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline: gate on all findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--root", metavar="DIR",
                        help="repo root for relative paths "
                             "(default: auto-detected)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    rules = registered_rules()
    if args.rules:
        for rule_id, rule in rules.items():
            print(f"{rule_id}  {rule.title}")
        return 0

    root = Path(args.root).resolve() if args.root else \
        find_repo_root(Path.cwd().resolve())
    paths = [Path(p) for p in args.paths] if args.paths else \
        [root / "src" / "repro"]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    try:
        findings = analyze_paths(
            paths, root,
            select=_parse_rule_list(args.select),
            ignore=_parse_rule_list(args.ignore),
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else \
        root / DEFAULT_BASELINE_NAME
    if args.write_baseline:
        Baseline.from_findings(findings).dump(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = Baseline()
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError) as exc:
            print(f"error: bad baseline: {exc}", file=sys.stderr)
            return 2
    new, baselined = baseline.partition(findings)
    stale = baseline.stale_entries(findings)

    report = _render(args, root, paths, rules, new, baselined, stale)
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(report + "\n", encoding="utf-8")
    print(report)
    return 1 if new else 0


def _render(args, root: Path, paths, rules, new: List[Finding],
            baselined: List[Finding], stale) -> str:
    if args.format == "json":
        return _render_json(args, root, paths, rules, new, baselined, stale)
    lines = [finding.format_text() for finding in new]
    if baselined:
        lines.append(f"# {len(baselined)} baselined finding(s) not shown "
                     f"(repro lint --no-baseline lists them)")
    if stale:
        lines.append(f"# {len(stale)} stale baseline entry(ies): the "
                     f"violation is gone — shrink the baseline file")
    lines.append(
        f"{'FAIL' if new else 'OK'}: {len(new)} new finding(s), "
        f"{len(baselined)} baselined, {len(stale)} stale baseline entries"
    )
    return "\n".join(lines)


def _render_json(args, root: Path, paths, rules, new: List[Finding],
                 baselined: List[Finding], stale) -> str:
    def relative(path: Path) -> str:
        try:
            return path.resolve().relative_to(root).as_posix()
        except ValueError:
            return path.as_posix()

    entries = sorted(
        [dict(f.to_dict(), baselined=False) for f in new]
        + [dict(f.to_dict(), baselined=True) for f in baselined],
        key=lambda e: (e["path"], e["line"], e["col"], e["rule"],
                       e["message"]),
    )
    payload = {
        "schema": LINT_SCHEMA,
        "paths": sorted(relative(p) for p in paths),
        "rules": {rule_id: rule.title for rule_id, rule in rules.items()},
        "selected": sorted(_parse_rule_list(args.select) or rules),
        "ignored": sorted(_parse_rule_list(args.ignore) or []),
        "findings": entries,
        "stale_baseline_entries": stale,
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "total": len(new) + len(baselined),
            "stale_baseline": len(stale),
        },
        "ok": not new,
    }
    return json.dumps(payload, indent=2, sort_keys=True)

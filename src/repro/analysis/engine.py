"""The ``repro lint`` analysis engine.

One :class:`ModuleContext` per analyzed file (path, parsed AST, source,
alias-aware :class:`~repro.analysis.resolve.ImportMap`, inline
suppressions), a plugin registry of :class:`Rule` objects keyed by id,
and the drivers :func:`analyze_source` / :func:`analyze_paths` that walk
files, run the selected rules, filter ``# gms: ignore[...]`` lines, and
return sorted :class:`~repro.analysis.findings.Finding` lists.

Rules self-register at import time via the :func:`register` decorator;
importing :mod:`repro.analysis.rules` loads the built-in pack.  A rule
is an object with ``id`` (``"GMS0xx"``), ``title``, and
``check(ctx) -> iterable of Finding`` — nothing else, so project rules
can be added by dropping a module into ``analysis/rules/`` and
importing it from the pack's ``__init__``.

Inline suppressions
-------------------
A comment ``# gms: ignore[GMS001]`` (ids comma-separated) on a line
suppresses that line's findings for the named rules; a bare
``# gms: ignore`` suppresses every rule on the line.  Suppressions are
read with :mod:`tokenize`, so the marker inside a string literal is
inert.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding
from .resolve import ImportMap

__all__ = [
    "Rule",
    "ModuleContext",
    "register",
    "registered_rules",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
    "LintError",
]

_IGNORE_RE = re.compile(
    r"#\s*gms:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]*)\])?"
)

#: Suppression marker meaning "every rule".
_ALL = "*"


class LintError(RuntimeError):
    """A file could not be analyzed (syntax error, unreadable)."""


class ModuleContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, source: str, relpath: str, module: str = "") -> None:
        self.source = source
        #: Repo-relative POSIX path — the path findings carry.
        self.relpath = relpath
        #: Dotted module name when known ("repro.core.ops"), else "".
        self.module = module
        try:
            self.tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            raise LintError(f"{relpath}: cannot parse: {exc}") from exc
        self.imports = ImportMap.from_tree(self.tree, module)
        self.suppressions = _scan_suppressions(source)

    # -- helpers for rules --------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a Name/Attribute chain."""
        return self.imports.resolve(node)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        ids = self.suppressions.get(finding.line)
        return ids is not None and (_ALL in ids or finding.rule in ids)


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → rule ids suppressed on that line."""
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _IGNORE_RE.search(token.string)
            if not match:
                continue
            ids = match.group("ids")
            line = token.start[0]
            if ids is None or not ids.strip():
                suppressed.setdefault(line, set()).add(_ALL)
            else:
                for rule_id in ids.split(","):
                    rule_id = rule_id.strip()
                    if rule_id:
                        suppressed.setdefault(line, set()).add(rule_id)
    except tokenize.TokenizeError:
        pass  # unparseable tail: the ast parse is the arbiter of validity
    return suppressed


class Rule:
    """Base class for analysis rules (subclass and :func:`register`)."""

    id: str = ""
    title: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


#: Registry of rule instances keyed by rule id, populated by @register.
_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def registered_rules() -> Dict[str, Rule]:
    """The built-in rule pack, id → rule instance (loads on first use)."""
    from . import rules  # noqa: F401 — importing registers the pack
    return dict(sorted(_REGISTRY.items()))


def _select_rules(select: Optional[Sequence[str]],
                  ignore: Optional[Sequence[str]]) -> List[Rule]:
    rules = registered_rules()
    chosen = list(select) if select else sorted(rules)
    unknown = [rule_id for rule_id in chosen if rule_id not in rules]
    if unknown:
        known = ", ".join(sorted(rules))
        raise LintError(
            f"unknown rule id(s) {', '.join(unknown)}; known: {known}"
        )
    dropped = set(ignore or ())
    return [rules[rule_id] for rule_id in chosen if rule_id not in dropped]


def analyze_source(
    source: str,
    relpath: str,
    module: str = "",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the (selected) rule pack over one in-memory source.

    This is the fixture-level entry point the rule tests drive: pass a
    snippet and the repo-relative path it should pretend to live at
    (rules scope on the path), get sorted findings back with inline
    suppressions already applied.
    """
    ctx = ModuleContext(source, relpath, module=module)
    findings: List[Finding] = []
    for rule in _select_rules(select, ignore):
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            seen.add(path)
    return sorted(seen)


def module_name_for(path: Path, root: Path) -> str:
    """Best-effort dotted module name of *path* under *root*.

    Walks the repo-relative parts looking for the first package segment
    (conventionally ``repro`` under ``src/``); returns "" when the file
    does not live in a recognizable package, which disables relative-
    import resolution but nothing else.
    """
    try:
        parts = list(path.resolve().relative_to(root.resolve()).parts)
    except ValueError:
        return ""
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    stem = Path(parts[-1]).stem
    parts = parts[:-1] + ([stem] if stem != "__init__" else ["__init__"])
    return ".".join(parts)


def analyze_paths(
    paths: Sequence[Path],
    root: Path,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the rules over files/directories; return sorted findings.

    Paths in findings are relative to *root* with POSIX separators, so
    artifacts and baselines are byte-stable across checkouts.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        resolved = path.resolve()
        try:
            relpath = resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = resolved.as_posix()
        source = resolved.read_text(encoding="utf-8")
        module = module_name_for(resolved, root)
        findings.extend(
            analyze_source(source, relpath, module=module,
                           select=select, ignore=ignore)
        )
    return sorted(findings)

"""Finding — the unit of output of the ``repro lint`` analyzer.

A finding pins one invariant violation to a source location: a
repo-relative path, a 1-based line, a 0-based column, the rule id that
fired (``GMS0xx``), and a human-readable message.  Findings are value
objects with a total order — ``(path, line, col, rule, message)`` — so
every emitter (text, JSON artifact, baseline diff) is deterministic
across machines and runs by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Field order is the sort order: findings sort by path, then line,
    then column, then rule id — the stable order the JSON artifact and
    the CI diff rely on.
    """

    path: str  # repo-relative, POSIX separators
    line: int  # 1-based, as reported by ast
    col: int  # 0-based column offset
    rule: str  # "GMS001" ... "GMS006"
    message: str

    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity used for baseline matching.

        Deliberately excludes line/column so grandfathered findings
        survive unrelated edits that shift code up or down a file;
        a finding only escapes the baseline when its rule, file, or
        message changes.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

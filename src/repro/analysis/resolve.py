"""Alias-aware import resolution for the AST rules.

Every rule that matches "a call to ``numpy.intersect1d``" must see
through the module's import spellings: ``import numpy as np``,
``from numpy import intersect1d as ix``, ``from ..core import counters
as _counters`` all denote the same targets.  :class:`ImportMap` builds a
per-module table of local name → fully-qualified dotted name from the
import statements, and :func:`dotted_name` / :meth:`ImportMap.resolve`
turn an ``ast.Name``/``ast.Attribute`` chain into that canonical form.

Resolution is best-effort and purely lexical — names rebound after the
import, wildcard imports, and dynamic access are out of scope, which is
the right trade for a linter: a miss degrades to "no finding", never to
a crash or a false positive on an unrelated name.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["ImportMap", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"`` (else None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Local-name → fully-qualified-name table for one module."""

    def __init__(self, module: str = "") -> None:
        #: Dotted name of the module being analyzed ("repro.core.ops");
        #: empty for sources with no known package (test fixtures).
        self.module = module
        self._table: Dict[str, str] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def from_tree(cls, tree: ast.Module, module: str = "") -> "ImportMap":
        imports = cls(module)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.add_import(alias.name, alias.asname)
            elif isinstance(node, ast.ImportFrom):
                base = imports._resolve_from_base(node.module, node.level)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports._table[local] = f"{base}.{alias.name}"
        return imports

    def add_import(self, name: str, asname: Optional[str]) -> None:
        if asname:
            self._table[asname] = name
        else:
            # ``import a.b.c`` binds only ``a`` — to the top-level module.
            head = name.split(".", 1)[0]
            self._table[head] = head

    def _resolve_from_base(self, module: Optional[str],
                           level: int) -> Optional[str]:
        """Absolute dotted base of a ``from``-import (None when unknown)."""
        if level == 0:
            return module
        if not self.module:
            return None  # relative import in a package-less fixture
        # ``from . import x`` in module pkg.sub.mod: level 1 strips the
        # module's own basename, each further level strips one package.
        parts = self.module.split(".")[:-level]
        if not parts:
            return None
        base = ".".join(parts)
        return f"{base}.{module}" if module else base

    # -- resolution ---------------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a ``Name``/``Attribute`` chain.

        The chain's leading segment is rewritten through the import
        table when it names an import binding; unknown leading names are
        returned as spelled (so same-module helpers keep their bare
        name and rules can match them against local definitions).
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return self.resolve_dotted(dotted)

    def resolve_dotted(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = self._table.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def local_names_for(self, qualified_prefix: str) -> List[str]:
        """Local bindings whose target starts with *qualified_prefix*."""
        return sorted(
            local for local, target in self._table.items()
            if target == qualified_prefix
            or target.startswith(qualified_prefix + ".")
        )

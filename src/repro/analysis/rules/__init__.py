"""The built-in GMS rule pack.

Importing this package registers every rule with the engine registry
(:func:`repro.analysis.engine.registered_rules` does it lazily).  To add
a project rule: drop a module here, subclass
:class:`~repro.analysis.engine.Rule`, decorate it with
:func:`~repro.analysis.engine.register`, and import it below — the CLI,
baseline, and artifact plumbing pick it up with no further wiring.
"""

from . import (  # noqa: F401  — importing registers the rules
    gms001_set_purity,
    gms002_counter_discipline,
    gms003_resource_lifecycle,
    gms004_silent_suppression,
    gms005_determinism,
    gms006_deprecated_shims,
)

__all__ = [
    "gms001_set_purity",
    "gms002_counter_discipline",
    "gms003_resource_lifecycle",
    "gms004_silent_suppression",
    "gms005_determinism",
    "gms006_deprecated_shims",
]

"""GMS001 — set-algebra purity in the algorithm layers.

The suite's comparability story requires that every candidate-set
operation in the algorithm layers (``mining/``, ``learning/``,
``optimization/``) routes through the audited :class:`SetBase` algebra:
that is what makes counts identical across backends and the per-op
counters meaningful.  A kernel that reaches for numpy's raw array set
routines (``intersect1d``/``setdiff1d``/``union1d``/``in1d``/``isin``)
— or hand-rolls a union as ``np.unique(np.concatenate(...))`` —
bypasses both the dispatch layer and the work accounting, silently
desynchronizing the performance model from the measured kernels.

The check resolves aliases (``import numpy as np``, ``from numpy import
intersect1d as ix``) through the module's import map, so renaming an
import does not evade it — the weakness of the string-grep test this
rule replaces.

The ``core/``/``approx/``/``compress/`` layers are exempt by scope:
they *are* the audited implementations the algebra dispatches to.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule, register

#: numpy's raw array-set routines — the bypasses this rule exists for.
_NUMPY_SET_OPS = frozenset(
    f"numpy.{name}" for name in
    ("intersect1d", "setdiff1d", "union1d", "in1d", "isin")
) | frozenset(
    f"numpy.lib.arraysetops.{name}" for name in
    ("intersect1d", "setdiff1d", "union1d", "in1d", "isin")
)

#: Layers whose files must speak only the SetBase algebra.
_SCOPE = re.compile(r"(^|/)repro/(mining|learning|optimization)/")


@register
class SetAlgebraPurityRule(Rule):
    id = "GMS001"
    title = ("algorithm layers must use the SetBase algebra, "
             "not raw numpy set routines")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not _SCOPE.search(ctx.relpath):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _NUMPY_SET_OPS:
                yield ctx.finding(
                    node, self.id,
                    f"call to {resolved} bypasses the SetBase algebra "
                    f"(route candidate-set work through a registered "
                    f"set class so it stays dispatched and accounted)",
                )
            elif resolved == "numpy.unique" and _is_union_idiom(ctx, node):
                yield ctx.finding(
                    node, self.id,
                    "np.unique(np.concatenate(...)) is a raw sorted-array "
                    "union; use SetBase.union so the merge is dispatched "
                    "and accounted",
                )


def _is_union_idiom(ctx: ModuleContext, node: ast.Call) -> bool:
    """``np.unique(np.concatenate(...))`` — a hand-rolled union."""
    if not node.args or not isinstance(node.args[0], ast.Call):
        return False
    inner = ctx.resolve(node.args[0].func) or ""
    return inner in ("numpy.concatenate", "numpy.hstack", "numpy.append")

"""GMS002 — counter discipline in SetBase backends.

The normative contract of :mod:`repro.core.counters` (module docstring)
is that every backend op method that touches member storage accounts
its element traffic: bulk ops record ``|A| + |B|`` reads plus their
writes, point ops record through ``record_point``.  Identical op
sequences must produce identical counter deltas across exact backends —
the property the cross-backend regression tests pin, and the one a new
backend method silently breaks when it does its array math without
recording.

The rule inspects every class whose (lexical) base resolves to
``SetBase`` — or to a known local subclass in the same module — and
flags overridden op methods whose body shows *no accounting evidence*:

* no reference to the global ``COUNTERS`` block (record calls or
  direct ``elements_written`` bumps),
* no delegation to another algebra method (``self.x()``, ``super().x()``
  or ``other_set.x()`` for an op-method name — delegated work is
  accounted by the delegate),
* no call to a same-module helper that itself references ``COUNTERS``,
* no call into :mod:`repro.core.ops` / :mod:`repro.core.packed`, whose
  kernels account internally.

Abstract bodies (docstring-only / ``...`` / ``raise``) are exempt:
they define the interface, they do not touch storage.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..engine import Finding, ModuleContext, Rule, register
from ..resolve import dotted_name

#: Methods of the SetBase surface that touch member storage and must
#: account (bulk family + point family + the Listing-1 overloads).
OP_METHODS = frozenset({
    "intersect", "union", "diff",
    "intersect_count", "union_count", "diff_count",
    "intersect_inplace", "union_inplace", "diff_inplace",
    "intersect_assign",
    "diff_element", "union_element",
    "contains", "add", "remove",
})

#: Fully-qualified prefixes whose callees account internally.
_ACCOUNTED_MODULES = ("repro.core.ops", "repro.core.packed",
                     "repro.core.counters")

_COUNTERS_SUFFIX = ".COUNTERS"


def _counter_reference(ctx: ModuleContext, node: ast.AST) -> bool:
    """Does *node* (a Name/Attribute chain) denote the COUNTERS block?"""
    resolved = ctx.resolve(node)
    if resolved is None:
        return False
    return resolved == "COUNTERS" or resolved.endswith(_COUNTERS_SUFFIX) \
        or ".COUNTERS." in resolved or resolved.startswith("COUNTERS.")


class _AccountingScan(ast.NodeVisitor):
    """Scan one method body for any accounting evidence."""

    def __init__(self, ctx: ModuleContext, class_methods: Set[str],
                 accounted_helpers: Set[str]) -> None:
        self.ctx = ctx
        self.class_methods = class_methods
        self.accounted_helpers = accounted_helpers
        self.found = False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _counter_reference(self.ctx, node):
            self.found = True
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if _counter_reference(self.ctx, node):
            self.found = True

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # Delegation to an algebra method on any receiver — self,
            # super(), a coerced operand, or a wrapped inner set.
            if func.attr in OP_METHODS or func.attr in self.class_methods:
                self.found = True
        resolved = self.ctx.resolve(func)
        if resolved is not None:
            if resolved in self.accounted_helpers:
                self.found = True
            if resolved.startswith(_ACCOUNTED_MODULES):
                self.found = True
        self.generic_visit(node)


def _is_abstract_body(body: List[ast.stmt]) -> bool:
    """Docstring-only / ``...`` / ``raise`` bodies define, not implement."""
    real = [
        stmt for stmt in body
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant))
    ]
    if not real:
        return True
    return all(isinstance(stmt, (ast.Raise, ast.Pass)) for stmt in real)


def _module_helpers_with_counters(ctx: ModuleContext) -> Set[str]:
    """Names of same-module functions whose bodies reference COUNTERS."""
    helpers: Set[str] = set()
    for node in ctx.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Name, ast.Attribute)) \
                    and _counter_reference(ctx, sub):
                helpers.add(node.name)
                break
    return helpers


@register
class CounterDisciplineRule(Rule):
    id = "GMS002"
    title = ("SetBase backend op methods must account element traffic "
             "via Counters")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        subclasses = _set_base_subclasses(ctx)
        if not subclasses:
            return
        helpers = _module_helpers_with_counters(ctx)
        for class_node in subclasses:
            method_names = {
                stmt.name for stmt in class_node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for stmt in class_node.body:
                if not isinstance(stmt,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name not in OP_METHODS:
                    continue
                if _is_abstract_body(stmt.body):
                    continue
                scan = _AccountingScan(ctx, method_names - {stmt.name},
                                       helpers)
                for body_stmt in stmt.body:
                    scan.visit(body_stmt)
                    if scan.found:
                        break
                if not scan.found:
                    yield ctx.finding(
                        stmt, self.id,
                        f"{class_node.name}.{stmt.name} touches member "
                        f"storage without accounting element traffic "
                        f"(call COUNTERS.record_bulk/record_point or "
                        f"delegate to an accounted algebra method)",
                    )


def _set_base_subclasses(ctx: ModuleContext) -> List[ast.ClassDef]:
    """Classes lexically derived from SetBase (direct or via a local
    chain of bases defined in the same module)."""
    classes = [node for node in ast.walk(ctx.tree)
               if isinstance(node, ast.ClassDef)]
    derived: Dict[str, bool] = {}

    def is_set_base(expr: ast.expr) -> bool:
        dotted = dotted_name(expr)
        if dotted is None:
            return False
        resolved = ctx.imports.resolve_dotted(dotted)
        if resolved.split(".")[-1] == "SetBase":
            return True
        return derived.get(dotted.split(".")[-1], False)

    # Two passes so a local chain (SetBase -> A -> B) resolves without
    # a full topological sort; deeper chains converge by iteration.
    for _ in range(3):
        for node in classes:
            if derived.get(node.name):
                continue
            derived[node.name] = any(is_set_base(base)
                                     for base in node.bases)
    return [node for node in classes if derived.get(node.name)]

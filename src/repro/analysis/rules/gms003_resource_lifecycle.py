"""GMS003 — shared-resource lifecycle (the PR 7/8 leak class).

A ``multiprocessing.shared_memory.SharedMemory`` segment or a
``SegmentExporter`` created and then dropped on an exception path
squats in ``/dev/shm`` until reboot — exactly the leak class PRs 7/8
fixed by hand.  This rule requires every creation site to reach a
release on all control-flow paths through one of the accepted
ownership patterns:

* ``with`` statement (context manager owns the release),
* direct ``return`` of the fresh resource (ownership transfers to the
  caller, who is a creation site of its own),
* direct argument to another call (ownership transferred to the callee),
* assignment to ``self.<attr>`` / ``self.<attr>[...]`` inside a class
  that defines ``close``/``__exit__``/``__del__`` (the instance owns it),
* local variable that is later (in the same function) stored into such
  a ``self`` slot, returned, registered with ``weakref.finalize``,
  entered via ``with``, or released inside a ``try/finally``.

Anything else is an orphan creation: no path guarantees the release.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..engine import Finding, ModuleContext, Rule, register

#: Fully-qualified constructors that allocate a leakable OS resource.
_RESOURCE_FACTORIES = frozenset({
    "multiprocessing.shared_memory.SharedMemory",
    "repro.platform.shm.SegmentExporter",
    "SegmentExporter",  # same-module references inside shm.py itself
})

#: Method names whose presence marks a class as a resource owner.
_OWNER_METHODS = frozenset({"close", "__exit__", "__del__"})

#: Callee names (last dotted segment) that take over the release.
_RELEASE_HINTS = frozenset({
    "close", "unlink", "release", "finalize", "register",
})


@register
class ResourceLifecycleRule(Rule):
    id = "GMS003"
    title = ("SharedMemory/SegmentExporter creations must reach a "
             "release on every path")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        parents = _ParentMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in _RESOURCE_FACTORIES:
                continue
            if _creation_is_owned(ctx, node, parents):
                continue
            yield ctx.finding(
                node, self.id,
                f"{resolved.split('.')[-1]} created without a guaranteed "
                f"release path (use `with`, try/finally, "
                f"weakref.finalize, or store it on an owner that "
                f"defines close())",
            )


class _ParentMap:
    def __init__(self, tree: ast.AST) -> None:
        self._parent = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parent[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parent.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST):
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None


def _creation_is_owned(ctx: ModuleContext, call: ast.Call,
                       parents: _ParentMap) -> bool:
    parent = parents.parent(call)
    # with SharedMemory(...) as x: ...
    if isinstance(parent, ast.withitem):
        return True
    # return SharedMemory(...)  — ownership transfers to the caller.
    if isinstance(parent, ast.Return):
        return True
    # f(SharedMemory(...)) / registry[...] = hand-off to another call.
    if isinstance(parent, ast.Call) and call in parent.args:
        return True
    if isinstance(parent, ast.Assign):
        return _assignment_is_owned(ctx, parent, parents)
    if isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
        target = getattr(parent, "target", None)
        return target is not None and _target_is_owner_slot(target, parents,
                                                           parent)
    return False


def _assignment_is_owned(ctx: ModuleContext, assign: ast.Assign,
                         parents: _ParentMap) -> bool:
    for target in assign.targets:
        if _target_is_owner_slot(target, parents, assign):
            return True
        if isinstance(target, ast.Name):
            if _local_reaches_release(ctx, target.id, assign, parents):
                return True
    return False


def _target_is_owner_slot(target: ast.expr, parents: _ParentMap,
                          site: ast.AST) -> bool:
    """``self.x = ...`` / ``self.x[k] = ...`` inside an owner class."""
    base = target
    if isinstance(base, ast.Subscript):
        base = base.value
    if not (isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"):
        return False
    class_node = parents.enclosing_class(site)
    if class_node is None:
        return False
    methods = {
        stmt.name for stmt in class_node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if methods & _OWNER_METHODS:
        return True
    # A finalizer registered anywhere in the class is ownership too.
    for stmt in ast.walk(class_node):
        if isinstance(stmt, ast.Call) and _is_release_call(stmt):
            return True
    return False


def _is_release_call(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    return name in _RELEASE_HINTS


def _local_reaches_release(ctx: ModuleContext, name: str, assign: ast.AST,
                           parents: _ParentMap) -> bool:
    """Does local *name* provably reach a release inside this function?"""
    function = parents.enclosing_function(assign)
    if function is None:
        return False
    for node in ast.walk(function):
        # try: ... finally: <anything naming the local + a release hint>
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                if _names_local_in_release(stmt, name):
                    return True
        # with x: / with closing(x):
        if isinstance(node, ast.With):
            for item in node.items:
                if _expr_names_local(item.context_expr, name):
                    return True
        # weakref.finalize(owner, release, x) or x handed to a releaser.
        if isinstance(node, ast.Call) and _is_release_call(node):
            if any(_expr_names_local(arg, name) for arg in node.args):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and _expr_names_local(node.func.value, name):
                return True
        # return x — ownership transferred to the caller.
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Name) and node.value.id == name:
                return True
        # self._segments[...] = x  /  self.attr = x — the instance owns it.
        if isinstance(node, ast.Assign):
            if any(isinstance(value, ast.Name) and value.id == name
                   for value in [node.value]) \
                    and any(_target_is_owner_slot(t, parents, node)
                            for t in node.targets):
                return True
    return False


def _names_local_in_release(stmt: ast.stmt, name: str) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and _is_release_call(node):
            if any(_expr_names_local(arg, name) for arg in node.args):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and _expr_names_local(node.func.value, name):
                return True
    return False


def _expr_names_local(expr: ast.expr, name: str) -> bool:
    return any(isinstance(node, ast.Name) and node.id == name
               for node in ast.walk(expr))

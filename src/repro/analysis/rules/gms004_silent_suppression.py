"""GMS004 — no silent exception swallowing.

PRs 7/8 spent real debugging time on failures that had been caught and
dropped: shm cleanup errors swallowed during teardown, warm-payload
pickling failures that silently degraded a dataset's transport.  The
repo's sanctioned pattern is :func:`repro.platform.shm._suppress` —
swallow *loudly*: log the exception at DEBUG (with traceback) and bump
a counter, so diagnostics have a trail even when the suppression is
deliberate.

This rule flags broad handlers — bare ``except:``, ``except
Exception``, ``except BaseException`` (alone or in a tuple) — whose
body neither re-raises nor leaves any trace: no logging call
(``logger.debug``/``warning``/``exception``/…, ``warnings.warn``), no
``_suppress``-style helper, no ``COUNTERS.record_suppressed``.  Narrow
handlers (``except KeyError:``) are exempt: catching a specific
exception is a decision, catching everything silently is a trap.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule, register

_BROAD = frozenset({"Exception", "BaseException"})

#: Method names that count as leaving a trace.
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "log",
})


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for expr in types:
        name = expr.attr if isinstance(expr, ast.Attribute) else (
            expr.id if isinstance(expr, ast.Name) else "")
        if name in _BROAD:
            return True
    return False


def _leaves_trace(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if name in _LOG_METHODS:
                return True
            if "suppress" in name:  # _suppress / record_suppressed
                return True
    return False


@register
class SilentSuppressionRule(Rule):
    id = "GMS004"
    title = ("broad except handlers must re-raise or route through "
             "logged suppression")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _leaves_trace(node):
                continue
            yield ctx.finding(
                node, self.id,
                "broad except handler swallows the exception silently; "
                "re-raise, or log it (logger.debug(..., exc_info=True) "
                "/ a _suppress-style helper) so failures stay "
                "diagnosable",
            )

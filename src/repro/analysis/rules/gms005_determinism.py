"""GMS005 — determinism of artifact-feeding values.

The suite's determinism gates (``suite-diff``, the parallel-vs-
sequential CI checks) only work because every value that lands in an
artifact is a pure function of the inputs and declared seeds.  Three
classic leaks of nondeterminism are flagged:

* **global-state RNG draws** — ``random.random()`` /
  ``np.random.randint(...)`` etc. consume interpreter-global state that
  depends on call order across the whole process; the sanctioned
  pattern is an explicitly seeded generator
  (``np.random.default_rng(seed)`` / ``random.Random(seed)``), which
  every existing call site already uses;
* **wall-clock reads outside timing fields** — ``datetime.now()`` /
  ``utcnow()`` / ``date.today()`` baked into result values make
  artifacts machine-dependent (``time.time()`` is exempt: it feeds the
  timing fields that ``suite-diff`` strips by design);
* **builtin-set iteration feeding results** — ``for x in set(...)``
  iterates in hash order; reassembled outputs must iterate sorted
  arrays or the SetBase algebra (whose iteration is ascending by
  contract).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule, register

#: Global-state draws on the stdlib random module.
_RANDOM_DRAWS = frozenset(
    f"random.{name}" for name in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "getrandbits", "randbytes",
    )
)

#: Global-state draws on numpy's legacy random API.  The seeded
#: constructors (default_rng, Generator, SeedSequence, RandomState) are
#: deliberately absent.
_NP_RANDOM_DRAWS = frozenset(
    f"numpy.random.{name}" for name in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "bytes", "beta", "binomial", "poisson",
        "exponential", "geometric",
    )
)

_WALL_CLOCK = frozenset({
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "datetime.now", "datetime.utcnow",
})


@register
class DeterminismRule(Rule):
    id = "GMS005"
    title = ("artifact values must come from seeded RNGs and ordered "
             "iteration, not global state")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                yield from self._check_iteration(ctx, node)

    def _check_call(self, ctx: ModuleContext,
                    node: ast.Call) -> Iterable[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved in _RANDOM_DRAWS or resolved in _NP_RANDOM_DRAWS:
            yield ctx.finding(
                node, self.id,
                f"{resolved} draws from interpreter-global RNG state; "
                f"use an explicitly seeded generator "
                f"(np.random.default_rng(seed) / random.Random(seed)) "
                f"so artifacts replay deterministically",
            )
        elif resolved in _WALL_CLOCK:
            yield ctx.finding(
                node, self.id,
                f"{resolved} reads the wall clock into a value; artifact "
                f"fields must be machine-independent (timing fields go "
                f"through the metered time.time() paths suite-diff "
                f"strips)",
            )

    def _check_iteration(self, ctx: ModuleContext,
                         node) -> Iterable[Finding]:
        iterable = node.iter
        if not isinstance(iterable, ast.Call):
            return
        func = iterable.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            # `sorted(set(...))` normalizes and is fine — that wraps the
            # set() call in sorted(), so the For iterates sorted(), not
            # set(), and never reaches this branch.
            yield ctx.finding(
                iterable, self.id,
                "iterating a builtin set feeds hash order into the "
                "result; sort first (sorted(...)) or use a SetBase "
                "class, whose iteration is ascending by contract",
            )

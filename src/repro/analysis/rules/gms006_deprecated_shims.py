"""GMS006 — no internal callers of the deprecated shims.

PR 5 demoted ``run_suite(plan)`` and ``Args.resolve_set_class_for_graph``
to deprecation shims: the former spins up (and tears down) a throwaway
``MiningSession`` per call, the latter hides the graph-aware resolution
behind mutable parser state.  External users get a
``DeprecationWarning``; *internal* code has no excuse — a shim call
inside the repo re-introduces the per-call pool churn the session API
exists to eliminate, and keeps the shim load-bearing forever.

Flagged:

* calls resolving to ``repro.platform.run_suite`` /
  ``repro.platform.suite.run_suite`` (the replacement is
  ``MiningSession.run_plan`` — ``run_suite_parallel`` is fine);
* method-style ``<args>.resolve_set_class_for_graph(...)`` calls, i.e.
  an ``Attribute`` call whose receiver is not the
  ``repro.platform.cli`` module (the module-level function of the same
  name *is* the blessed replacement).

The defining modules themselves are exempt — a shim may implement
itself.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule, register

_RUN_SUITE_TARGETS = frozenset({
    "repro.platform.run_suite",
    "repro.platform.suite.run_suite",
})

#: Module prefixes the blessed function-form resolver lives in: a call
#: spelled ``cli.resolve_set_class_for_graph(...)`` through one of these
#: is the replacement, not the shim.
_RESOLVER_MODULES = frozenset({
    "repro.platform.cli", "repro.platform",
})

#: The shims' own homes (definitions and their doc examples).
_EXEMPT_PATHS = ("repro/platform/cli.py", "repro/platform/suite.py")


@register
class DeprecatedShimRule(Rule):
    id = "GMS006"
    title = ("internal code must not call the run_suite / "
             "Args.resolve_set_class_for_graph deprecation shims")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.relpath.endswith(_EXEMPT_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _RUN_SUITE_TARGETS:
                yield ctx.finding(
                    node, self.id,
                    "run_suite is a deprecation shim (throwaway session "
                    "+ pool per call); use MiningSession.run_plan on a "
                    "resident session",
                )
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "resolve_set_class_for_graph":
                receiver = ctx.resolve(node.func.value)
                if receiver in _RESOLVER_MODULES:
                    continue  # module-form call: the blessed replacement
                yield ctx.finding(
                    node, self.id,
                    "Args.resolve_set_class_for_graph is a deprecation "
                    "shim; call repro.platform.cli."
                    "resolve_set_class_for_graph(graph, ...) directly",
                )

"""Approximate set-algebra backends (ProbGraph-style probabilistic sets).

GraphMineSuite's modularity claim (paper §5.1) is that kernels written
against the :class:`~repro.core.interface.SetBase` interface accept *any*
set representation.  ProbGraph (Besta et al., 2022) pushes that to
probabilistic representations: Bloom filters and MinHash/KMV sketches whose
set-intersection **cardinality estimates** trade a bounded accuracy loss
for large speedups on intersection-heavy kernels (triangle counting,
k-clique counting, vertex similarity).  This package provides both
families, registered as ``"bloom"`` and ``"kmv"`` in the set-class
registry, so e.g. ``triangle_count_node_iterator(g, set_cls=BloomFilterSet)``
runs unmodified and returns an estimate.

Design: sketch-augmented sets
-----------------------------
Both classes keep the **exact sorted member array** next to the sketch
(exactly how ProbGraph augments the CSR neighborhoods with per-vertex
sketches).  Iteration, ``cardinality``, ``to_array`` and equality are
therefore exact, while probes and count estimators go through the sketch.
Guarantees, with ``A*``/``B*`` the true member sets:

=====================  =================================================
operation              guarantee
=====================  =================================================
``contains``           Bloom: no false negatives; KMV: exact
``intersect``          Bloom: ``A* ∩ B* ⊆ result ⊆ A*``; KMV: exact
``diff``               Bloom: ``result ⊆ A* \\ B*``; KMV: exact
``union``              exact (both)
``intersect_count``    estimate clamped to ``[0, min(|A|, |B|)]``
``union_count``        estimate clamped to ``[max(|A|, |B|), |A| + |B|]``
``diff_count``         ``|A| -`` intersection estimate, in ``[0, |A|]``
=====================  =================================================

Estimator math and error bounds
-------------------------------
See :mod:`repro.approx.estimators` for derivations.  In short:

* **Bloom** (``m`` bits, ``k`` hashes): cardinality from popcount ``t`` via
  the Swamidass–Baldi inversion ``n̂(t) = -(m/k)·ln(1 - t/m)``; intersection
  by inclusion–exclusion over the bitwise OR, with standard deviation
  ``≈ sqrt(|A|·|B|/m)`` in the sparse regime, and membership false-positive
  rate ``(1 - e^{-kn/m})^k``.
* **KMV** (bottom-``K`` signature): distinct count ``n̂ = (K-1)/u_K`` with
  relative standard error ``≈ 1/sqrt(K-2)``; intersection via the merged
  bottom-k Jaccard estimate ``ρ̂ · |A ∪ B|^`` (Beyer et al.).

Budgets are tunable per class: :func:`~repro.approx.bloom.bloom_set_class`
(bits per element, hash count) and :func:`~repro.approx.kmv.kmv_set_class`
(signature size) derive configured subclasses;
``benchmarks/bench_probgraph_accuracy.py`` sweeps them to reproduce the
ProbGraph speed-vs-accuracy tradeoff curve.
"""

from ..core.registry import register_set_class
from .bloom import BloomFilterSet, bloom_set_class, shared_bloom_set_class
from .estimators import (
    bloom_cardinality_estimate,
    bloom_false_positive_rate,
    bloom_intersection_estimate,
    bloom_intersection_stddev,
    kmv_cardinality_estimate,
    kmv_intersection_estimate,
    kmv_jaccard_estimate,
    kmv_merge,
    kmv_relative_stderr,
)
from .hashing import bloom_indices, kmv_hashes, splitmix64
from .kmv import KMVSketchSet, kmv_set_class

__all__ = [
    "BloomFilterSet",
    "bloom_set_class",
    "shared_bloom_set_class",
    "KMVSketchSet",
    "kmv_set_class",
    "splitmix64",
    "bloom_indices",
    "kmv_hashes",
    "bloom_cardinality_estimate",
    "bloom_intersection_estimate",
    "bloom_intersection_stddev",
    "bloom_false_positive_rate",
    "kmv_cardinality_estimate",
    "kmv_intersection_estimate",
    "kmv_jaccard_estimate",
    "kmv_merge",
    "kmv_relative_stderr",
]

# Self-registration: importing this package (directly, or lazily through
# repro.core.registry) exposes the approximate backends by name.
register_set_class("bloom", BloomFilterSet)
register_set_class("kmv", KMVSketchSet)

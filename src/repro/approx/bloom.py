"""BloomFilterSet — Bloom-filter-augmented set representation (ProbGraph BF).

Following ProbGraph, the representation is *sketch-augmented*: alongside a
Bloom filter (a power-of-two-sized bit array, stored as ``uint64`` words)
it keeps the exact sorted member array, so iteration, ``cardinality`` and
``to_array`` stay exact and every GMS kernel runs unmodified.  What is
approximate — and fast — are the probe-and-count paths that dominate
intersection-heavy mining kernels:

* ``contains`` probes the filter: **no false negatives**, false positives
  at the classic ``(1 - e^{-kn/m})^k`` rate.
* ``intersect`` / ``diff`` keep the members of ``self`` that pass / fail a
  vectorized probe of ``other``'s filter — the result is a superset of the
  true intersection (resp. subset of the true difference).
* ``intersect_count`` is the ProbGraph estimator: popcounts of the two
  filters and of their bitwise OR, corrected through the Swamidass–Baldi
  inversion and combined by inclusion–exclusion
  (see :mod:`repro.approx.estimators` for the math and error bounds).
  Estimates are clamped to the always-valid range ``[0, min(|A|, |B|)]``.

Filters are sized per set at ``BITS_PER_ELEMENT`` bits per element (the
ProbGraph storage budget *b*), rounded up to a power of two with a
``MIN_BITS`` floor.  Equal-sized filters use the pure popcount estimator;
when budgets differ (a hub neighborhood against a low-degree one) the
smaller member array probes the larger filter instead, which keeps the
error bounded by the larger filter's false-positive rate rather than
saturating a downsized filter.  Use :func:`bloom_set_class` to derive a
class with a different budget.

Alternatively, a *shared* budget fixes one filter size for every instance:
:func:`shared_bloom_set_class` (or :meth:`BloomFilterSet.with_shared_budget`)
splits a per-graph total of ``m_total`` bits evenly over ``n`` sets,
``m = m_total / n`` rounded down to a power of two.  With every filter the
same size, *every* pair of neighborhoods takes the pure popcount estimator
— the probe fallback for disparate budgets never triggers — which is the
ProbGraph deployment model (one storage budget chosen per graph, not per
vertex).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Type

import numpy as np

from ..core.counters import COUNTERS
from ..core.interface import SetBase
from .estimators import (
    bloom_cardinality_estimate,
    bloom_false_positive_rate,
    bloom_intersection_estimate,
)
from .hashing import bloom_indices

__all__ = ["BloomFilterSet", "bloom_set_class", "shared_bloom_set_class"]

_EMPTY = np.empty(0, dtype=np.int64)


def _pow2_ceil(x: int) -> int:
    return 1 << max(x - 1, 0).bit_length()


if hasattr(np, "bitwise_count"):

    def _popcount(words: np.ndarray) -> int:
        return int(np.bitwise_count(words).sum())

else:  # numpy < 2.0 has no vectorized popcount

    def _popcount(words: np.ndarray) -> int:
        return int(np.unpackbits(words.view(np.uint8)).sum())


class BloomFilterSet(SetBase):
    """A set backed by exact sorted members plus a Bloom filter sketch."""

    IS_EXACT = False
    BITS_PER_ELEMENT = 32
    NUM_HASHES = 4
    MIN_BITS = 1024
    #: Fixed filter size in bits for shared-budget classes; 0 = size per set.
    SHARED_BITS = 0

    __slots__ = ("_members", "_words", "_num_bits", "_ones")

    def __init__(self, data: Optional[np.ndarray] = None, *, _trusted: bool = False):
        if data is None:
            members = _EMPTY
        elif _trusted:
            members = np.asarray(data, dtype=np.int64)
        else:
            members = np.unique(np.asarray(data, dtype=np.int64))
        self._members = members
        self._rebuild_filter()

    # -- sketch maintenance ---------------------------------------------
    @classmethod
    def _sized_bits(cls, n: int) -> int:
        if cls.SHARED_BITS:
            return cls.SHARED_BITS
        return _pow2_ceil(max(cls.MIN_BITS, 64, cls.BITS_PER_ELEMENT * max(n, 1)))

    def _rebuild_filter(self) -> None:
        self._num_bits = type(self)._sized_bits(len(self._members))
        self._words = np.zeros(self._num_bits // 64, dtype=np.uint64)
        self._ones = None
        if len(self._members):
            self._set_bits(self._members)

    def _set_bits(self, elements: np.ndarray) -> None:
        idx = bloom_indices(elements, self.NUM_HASHES, self._num_bits)
        np.bitwise_or.at(
            self._words,
            idx >> 6,
            np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64)),
        )
        self._ones = None

    def _own_popcount(self) -> int:
        """Popcount of this filter, cached — intersect_count is called once
        per edge in the mining kernels but each filter's own bit count only
        changes on mutation."""
        if self._ones is None:
            self._ones = _popcount(self._words)
        return self._ones

    def _probe(self, elements: np.ndarray) -> np.ndarray:
        """Vectorized membership probe: bool mask, no false negatives."""
        if len(elements) == 0:
            return np.zeros(0, dtype=bool)
        idx = bloom_indices(elements, self.NUM_HASHES, self._num_bits)
        gathered = self._words[idx >> 6]
        bits = (gathered >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        return bits.astype(bool).all(axis=0)

    def _as_bloom(self, other: SetBase) -> "BloomFilterSet":
        if isinstance(other, BloomFilterSet) and other.NUM_HASHES == self.NUM_HASHES:
            return other
        return type(self).from_sorted_array(other.to_array())

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "BloomFilterSet":
        arr = np.fromiter(elements, dtype=np.int64)
        COUNTERS.record_sketch_build()
        return cls(np.unique(arr), _trusted=True)

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "BloomFilterSet":
        COUNTERS.record_sketch_build()
        return cls(np.asarray(array, dtype=np.int64), _trusted=True)

    # -- core algebra ---------------------------------------------------
    def intersect(self, other: SetBase) -> "BloomFilterSet":
        if isinstance(other, BloomFilterSet):
            mask = other._probe(self._members)
            out = self._members[mask]
            COUNTERS.record_bulk(len(self._members) + other._words.size, len(out))
        else:
            # Building a throwaway filter for a non-Bloom operand would be
            # strictly more work than an exact merge of the member arrays.
            b_members = other.to_array()
            out = np.intersect1d(self._members, b_members, assume_unique=True)
            COUNTERS.record_bulk(len(self._members) + len(b_members), len(out))
        return type(self)(out, _trusted=True)

    def union(self, other: SetBase) -> "BloomFilterSet":
        # Union only needs the other operand's member array — building a
        # throwaway filter for it (via _as_bloom) would be wasted hashing.
        b_members = (
            other._members
            if isinstance(other, BloomFilterSet)
            else other.to_array()
        )
        out = np.union1d(self._members, b_members)
        COUNTERS.record_bulk(len(self._members) + len(b_members), len(out))
        return type(self)(out, _trusted=True)

    def diff(self, other: SetBase) -> "BloomFilterSet":
        if isinstance(other, BloomFilterSet):
            mask = ~other._probe(self._members)
            out = self._members[mask]
            COUNTERS.record_bulk(len(self._members) + other._words.size, len(out))
        else:
            b_members = other.to_array()
            out = np.setdiff1d(self._members, b_members, assume_unique=True)
            COUNTERS.record_bulk(len(self._members) + len(b_members), len(out))
        return type(self)(out, _trusted=True)

    # -- sketch count estimators (the ProbGraph fast path) ---------------
    def intersect_count(self, other: SetBase) -> int:
        if not isinstance(other, BloomFilterSet):
            # No filter on the other side: an exact merge count is both
            # cheaper and exact — hashing a throwaway filter would lose on
            # all axes.
            b_members = other.to_array()
            COUNTERS.record_bulk(len(self._members) + len(b_members), 0)
            return len(np.intersect1d(self._members, b_members, assume_unique=True))
        b = other
        if b.NUM_HASHES == self.NUM_HASHES and b._num_bits == self._num_bits:
            wa, wb = self._words, b._words
            COUNTERS.record_bulk(wa.size + wb.size, 0)
            raw = bloom_intersection_estimate(
                self._own_popcount(), b._own_popcount(), _popcount(wa | wb),
                self._num_bits, self.NUM_HASHES,
            )
        else:
            # Disparate budgets (e.g. a hub against a low-degree vertex):
            # OR-folding the larger filter down would saturate it, so one
            # side's members probe the other's filter instead.  The
            # expected overestimate is FPR(target) × n(probed); pick the
            # direction that minimizes it, which handles both the
            # hub-vs-leaf case (probe the few leaf members into the hub's
            # filter) and the lean-vs-rich budget case (probe the lean
            # set's many members into the rich, clean filter).
            fpr_self = bloom_false_positive_rate(
                len(self._members), self._num_bits, self.NUM_HASHES
            )
            fpr_b = bloom_false_positive_rate(
                len(b._members), b._num_bits, b.NUM_HASHES
            )
            if fpr_self * len(b._members) <= fpr_b * len(self._members):
                probed, target = b, self
            else:
                probed, target = self, b
            COUNTERS.record_bulk(len(probed._members) + target._words.size, 0)
            raw = float(target._probe(probed._members).sum())
        bound = min(len(self._members), len(b._members))
        return int(round(min(max(raw, 0.0), bound)))

    def union_count(self, other: SetBase) -> int:
        if not isinstance(other, BloomFilterSet):
            b_members = other.to_array()
            COUNTERS.record_bulk(len(self._members) + len(b_members), 0)
            return len(np.union1d(self._members, b_members))
        b = other
        n_a, n_b = len(self._members), len(b._members)
        if b.NUM_HASHES == self.NUM_HASHES and b._num_bits == self._num_bits:
            COUNTERS.record_bulk(self._words.size + b._words.size, 0)
            raw = bloom_cardinality_estimate(
                _popcount(self._words | b._words), self._num_bits, self.NUM_HASHES
            )
        else:
            raw = float(n_a + n_b - self.intersect_count(b))
        return int(round(min(max(raw, max(n_a, n_b)), n_a + n_b)))

    def diff_count(self, other: SetBase) -> int:
        return len(self._members) - self.intersect_count(other)

    # -- point operations -------------------------------------------------
    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        return bool(self._probe(np.asarray([element], dtype=np.int64))[0])

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        idx = int(np.searchsorted(self._members, element))
        if idx < len(self._members) and self._members[idx] == element:
            return
        self._members = np.insert(self._members, idx, element)
        COUNTERS.elements_written += 1
        if (not self.SHARED_BITS
                and len(self._members) * self.BITS_PER_ELEMENT > self._num_bits):
            self._rebuild_filter()  # grow: keeps the false-positive rate bounded
        else:
            self._set_bits(np.asarray([element], dtype=np.int64))

    def remove(self, element: int) -> None:
        # Bloom filters do not support bit deletion; the member array is
        # updated exactly but the filter keeps the stale bits (a removed
        # element may still probe as present — one-sided error only grows).
        COUNTERS.record_point()
        idx = int(np.searchsorted(self._members, element))
        if idx < len(self._members) and self._members[idx] == element:
            self._members = np.delete(self._members, idx)
            COUNTERS.elements_written += 1

    def cardinality(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[int]:
        return iter(self._members.tolist())

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        return self._members.copy()

    def clone(self) -> "BloomFilterSet":
        new = object.__new__(type(self))
        new._members = self._members.copy()
        new._words = self._words.copy()
        new._num_bits = self._num_bits
        new._ones = self._ones
        return new

    def _replace_with(self, other: SetBase) -> None:
        b = self._as_bloom(other)
        self._members = b._members.copy()
        self._words = b._words.copy()
        self._num_bits = b._num_bits
        self._ones = b._ones

    # -- storage accounting (memory-consumption analysis) -----------------
    def sketch_bits(self) -> int:
        """Size of the Bloom filter in bits (the ProbGraph budget ``m``)."""
        return self._num_bits

    # -- budget configuration ---------------------------------------------
    @classmethod
    def with_budget(
        cls,
        bits_per_element: Optional[int] = None,
        num_hashes: Optional[int] = None,
        min_bits: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Type["BloomFilterSet"]:
        """Derive a subclass of *cls* with a different storage budget.

        Deriving from ``cls`` (not the base class) preserves any method
        overrides of user subclasses; omitted parameters keep ``cls``'s
        values.
        """
        bpe = cls.BITS_PER_ELEMENT if bits_per_element is None else bits_per_element
        hashes = cls.NUM_HASHES if num_hashes is None else num_hashes
        floor = cls.MIN_BITS if min_bits is None else min_bits
        if bpe < 1 or hashes < 1 or floor < 64:
            raise ValueError("bloom budget parameters out of range")
        return type(
            name or f"{cls.__name__.split('_b')[0]}_b{bpe}_k{hashes}",
            (cls,),
            {
                "__slots__": (),
                "BITS_PER_ELEMENT": bpe,
                "NUM_HASHES": hashes,
                "MIN_BITS": floor,
            },
        )

    @classmethod
    def with_shared_budget(
        cls,
        total_bits: int,
        num_sets: int,
        num_hashes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Type["BloomFilterSet"]:
        """Derive a subclass whose every instance uses one fixed filter size.

        The per-graph total of *total_bits* is split evenly over *num_sets*
        sets: ``m = total_bits / num_sets``, rounded *down* to a power of
        two so the rounding itself never exceeds the global budget — but
        each filter is floored at 64 bits (one word), so totals leaner
        than ``64 * num_sets`` are promoted to that floor (with an explicit
        ``UserWarning``, since the promotion overruns the requested global
        budget) and every such total yields the same class.  With all
        filters equal-sized, every ``intersect_count`` pair takes the pure
        popcount estimator — the disparate-budget probe fallback never
        triggers.
        """
        if total_bits < 64 or num_sets < 1:
            raise ValueError("shared bloom budget parameters out of range")
        if total_bits // num_sets < 64:
            import warnings

            warnings.warn(
                f"shared Bloom budget of {total_bits} bits over {num_sets} "
                f"sets is below the 64-bit/filter floor; promoting every "
                f"filter to 64 bits (actual total {64 * num_sets} bits)",
                UserWarning,
                stacklevel=2,
            )
        per_set = max(64, total_bits // num_sets)
        m = 1 << (per_set.bit_length() - 1)
        hashes = cls.NUM_HASHES if num_hashes is None else num_hashes
        if hashes < 1:
            raise ValueError("bloom budget parameters out of range")
        return type(
            name or f"{cls.__name__.split('_m')[0].split('_b')[0]}_m{m}",
            (cls,),
            {"__slots__": (), "SHARED_BITS": m, "NUM_HASHES": hashes},
        )


def bloom_set_class(
    bits_per_element: int = 32,
    num_hashes: int = 4,
    min_bits: int = 1024,
    name: Optional[str] = None,
) -> Type[BloomFilterSet]:
    """Derive a :class:`BloomFilterSet` subclass with a custom storage budget.

    ``bits_per_element`` is ProbGraph's per-element budget *b*; smaller
    budgets trade accuracy for space and speed.  The returned class can be
    passed anywhere a set class is accepted, including
    :func:`repro.core.registry.register_set_class`.
    """
    return BloomFilterSet.with_budget(bits_per_element, num_hashes, min_bits, name)


def shared_bloom_set_class(
    total_bits: int,
    num_sets: int,
    num_hashes: int = 4,
    name: Optional[str] = None,
) -> Type[BloomFilterSet]:
    """Derive a :class:`BloomFilterSet` subclass with a per-graph shared budget.

    Splits *total_bits* evenly over *num_sets* neighborhoods (``m =
    total_bits / num_sets``, power-of-two floored), so every instance's
    filter has the same size and every pair is eligible for the popcount
    estimator.  This is the ProbGraph deployment model: one storage budget
    chosen per graph in a single factory call.
    """
    return BloomFilterSet.with_shared_budget(total_bits, num_sets, num_hashes, name)

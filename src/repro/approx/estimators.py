"""ProbGraph-style cardinality estimators and their error bounds.

Bloom filter estimators
-----------------------
A Bloom filter with ``m`` bits and ``k`` hash functions holding ``n``
distinct elements has an expected number of set bits of
``E[t] = m (1 - (1 - 1/m)^{kn}) ≈ m (1 - e^{-kn/m})``.  Inverting gives the
classic Swamidass–Baldi cardinality estimator from an observed popcount
``t``::

    n̂(t) = -(m / k) · ln(1 - t / m)

The union of two filters (same ``m``, ``k``) is exactly the filter of the
union, so ``|A ∪ B|`` is estimated from the popcount of the bitwise OR, and
the intersection follows by inclusion–exclusion::

    |A ∩ B|^ = n̂(t_A) + n̂(t_B) - n̂(t_{A∨B})

For sparse fill (``kn ≪ m``) the estimator error is dominated by cross
collisions between the bits of ``A \\ B`` and ``B \\ A``; their count is
Binomial with mean ``≈ k²·|A\\B|·|B\\A| / m``, so the standard deviation of
the intersection estimate is approximately::

    σ ≈ sqrt(|A| · |B| / m)

(:func:`bloom_intersection_stddev`).  The false-positive rate of a
membership probe is the usual ``(1 - e^{-kn/m})^k``
(:func:`bloom_false_positive_rate`); there are **no false negatives**.

KMV (k-minimum-values / bottom-k MinHash) estimators
----------------------------------------------------
A KMV sketch keeps the ``K`` smallest 64-bit hash values of a set.  With
hashes normalized to ``U(0, 1]``, the ``K``-th minimum ``u_K`` of ``n``
distinct values concentrates around ``K / n``, giving the unbiased
distinct-value estimator of Beyer et al.::

    n̂ = (K - 1) / u_K        (exact count when fewer than K hashes exist)

with relative standard error ``≈ 1 / sqrt(K - 2)``
(:func:`kmv_relative_stderr`).  Sketches are mergeable: the ``K`` smallest
of the union of two signatures is the signature of the union.  The Jaccard
similarity is estimated from the merged signature ``X``::

    ρ̂ = |X ∩ sig(A) ∩ sig(B)| / |X|,    |A ∩ B|^ = ρ̂ · n̂(A ∪ B)

``ρ̂`` is a hypergeometric proportion, so its standard error is
``sqrt(ρ(1-ρ)/K)``; the intersection estimate inherits this plus the union
cardinality error.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "bloom_cardinality_estimate",
    "bloom_intersection_estimate",
    "bloom_intersection_stddev",
    "bloom_false_positive_rate",
    "bloom_bits_for_fpr",
    "kmv_cardinality_estimate",
    "kmv_merge",
    "kmv_jaccard_estimate",
    "kmv_intersection_estimate",
    "kmv_relative_stderr",
]

_UINT64_SPAN = float(2**64)


# ----------------------------------------------------------------------
# Bloom filter estimators
# ----------------------------------------------------------------------
def bloom_cardinality_estimate(num_set_bits: int, num_bits: int, num_hashes: int) -> float:
    """Swamidass–Baldi estimate of ``n`` from a filter's popcount."""
    # A saturated filter carries no information; clamp one bit below so the
    # logarithm stays finite (the caller clamps to exact bounds anyway).
    t = min(int(num_set_bits), num_bits - 1)
    if t <= 0:
        return 0.0
    return -(num_bits / num_hashes) * math.log1p(-t / num_bits)


def bloom_intersection_estimate(
    t_a: int, t_b: int, t_or: int, num_bits: int, num_hashes: int
) -> float:
    """Inclusion–exclusion estimate of ``|A ∩ B|`` from three popcounts."""
    return (
        bloom_cardinality_estimate(t_a, num_bits, num_hashes)
        + bloom_cardinality_estimate(t_b, num_bits, num_hashes)
        - bloom_cardinality_estimate(t_or, num_bits, num_hashes)
    )


def bloom_intersection_stddev(n_a: int, n_b: int, num_bits: int) -> float:
    """Approximate std-dev of the intersection estimate (sparse regime)."""
    return math.sqrt(max(n_a * n_b, 1) / num_bits)


def bloom_false_positive_rate(n: int, num_bits: int, num_hashes: int) -> float:
    """Probability that a ``contains`` probe of a non-member answers True."""
    fill = 1.0 - math.exp(-num_hashes * n / num_bits)
    return fill**num_hashes


def bloom_bits_for_fpr(n: int, fpr: float, num_hashes: int) -> int:
    """Minimum filter bits so ``n`` elements probe below a target FPR.

    Inverts the Swamidass–Baldi fill model behind
    :func:`bloom_false_positive_rate`: solving
    ``(1 - e^{-kn/m})^k ≤ p`` for the filter size gives ::

        m ≥ -k·n / ln(1 - p^{1/k})

    This is the auto-sizing rule for the ``--bloom-fpr`` budget flag — the
    operator states an accuracy target and the platform derives the
    storage budget, instead of the other way around.
    """
    if not (0.0 < fpr < 1.0):
        raise ValueError("target false-positive rate must be in (0, 1)")
    if n < 1 or num_hashes < 1:
        raise ValueError("n and num_hashes must be >= 1")
    fill = fpr ** (1.0 / num_hashes)
    return int(math.ceil(-num_hashes * n / math.log1p(-fill)))


# ----------------------------------------------------------------------
# KMV estimators
# ----------------------------------------------------------------------
def kmv_cardinality_estimate(signature: np.ndarray, k: int) -> float:
    """Beyer et al. distinct-count estimate from a bottom-k signature."""
    if len(signature) < k:
        # The sketch holds every hash — the count is exact.
        return float(len(signature))
    u_k = float(signature[k - 1]) / _UINT64_SPAN
    if u_k <= 0.0:
        return 0.0
    return (k - 1) / u_k


def kmv_merge(sig_a: np.ndarray, sig_b: np.ndarray, k: int) -> np.ndarray:
    """Signature of ``A ∪ B``: the ``k`` smallest of the merged signatures."""
    return np.union1d(sig_a, sig_b)[:k]


def _jaccard_from_merged(
    sig_a: np.ndarray, sig_b: np.ndarray, merged: np.ndarray
) -> float:
    """Fraction of the merged bottom-k present in both signatures (``ρ̂``)."""
    shared = np.intersect1d(sig_a, sig_b, assume_unique=True)
    hits = int(np.isin(merged, shared, assume_unique=True).sum())
    return hits / len(merged)


def kmv_jaccard_estimate(sig_a: np.ndarray, sig_b: np.ndarray, k: int) -> float:
    """Estimate the Jaccard similarity from two bottom-k signatures."""
    merged = kmv_merge(sig_a, sig_b, k)
    if len(merged) == 0:
        return 0.0
    return _jaccard_from_merged(sig_a, sig_b, merged)


def kmv_intersection_estimate(sig_a: np.ndarray, sig_b: np.ndarray, k: int) -> float:
    """Estimate ``|A ∩ B|`` as ``ρ̂ · n̂(A ∪ B)``."""
    merged = kmv_merge(sig_a, sig_b, k)
    if len(merged) == 0:
        return 0.0
    return _jaccard_from_merged(sig_a, sig_b, merged) * kmv_cardinality_estimate(
        merged, k
    )


def kmv_relative_stderr(k: int) -> float:
    """Relative standard error of the KMV cardinality estimator."""
    return 1.0 / math.sqrt(max(k - 2, 1))

"""Vectorized 64-bit hashing for the probabilistic set sketches.

Both sketch families hash vertex IDs with *splitmix64*, the finalizer of
the SplitMix PRNG: a short sequence of xor-shift/multiply rounds with full
avalanche behaviour.  All routines operate on numpy ``uint64`` arrays so a
whole neighborhood is hashed in a handful of SIMD-friendly passes — the
Python stand-in for the per-cache-line hashing loops of ProbGraph.

Bloom filters need ``k`` hash functions per element; we derive them from
two independent splitmix streams with the Kirsch–Mitzenmacher double
hashing scheme ``h_i(x) = h1(x) + i · h2(x)``, which preserves the
asymptotic false-positive rate of ``k`` independent functions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "bloom_indices", "kmv_hashes"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

# Fixed stream seeds: h1/h2 feed the Bloom double-hashing scheme, the KMV
# stream is independent of both so sketches never alias filter bits.
_SEED_BLOOM_1 = np.uint64(0x243F6A8885A308D3)
_SEED_BLOOM_2 = np.uint64(0x13198A2E03707344)
_SEED_KMV = np.uint64(0xA4093822299F31D0)


def splitmix64(values: np.ndarray, seed: np.uint64 = _GOLDEN) -> np.ndarray:
    """Hash an integer array to ``uint64`` with the splitmix64 finalizer."""
    x = np.asarray(values).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += seed * _GOLDEN
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


def bloom_indices(elements: np.ndarray, num_hashes: int, num_bits: int) -> np.ndarray:
    """Return a ``(num_hashes, n)`` array of bit indices in ``[0, num_bits)``.

    ``num_bits`` must be a power of two so the modulo reduction is a mask.
    """
    h1 = splitmix64(elements, _SEED_BLOOM_1)
    h2 = splitmix64(elements, _SEED_BLOOM_2) | np.uint64(1)  # odd → full cycle
    rounds = np.arange(num_hashes, dtype=np.uint64)[:, None]
    with np.errstate(over="ignore"):
        idx = h1[None, :] + rounds * h2[None, :]
    return (idx & np.uint64(num_bits - 1)).astype(np.int64)


def kmv_hashes(elements: np.ndarray) -> np.ndarray:
    """Hash elements into the KMV stream (uniform over the uint64 range)."""
    return splitmix64(elements, _SEED_KMV)

"""KMVSketchSet — k-minimum-values (bottom-k MinHash) set representation.

Like :class:`~repro.approx.bloom.BloomFilterSet` this is ProbGraph-style
sketch-augmented: the exact sorted member array travels with a KMV
signature (the ``K`` smallest 64-bit hashes of the members).  Materialized
set algebra (``intersect`` / ``union`` / ``diff``) and membership are exact
— what the sketch buys is *O(K)* cardinality estimation independent of set
size:

* ``intersect_count`` estimates ``|A ∩ B| = ρ̂ · |A ∪ B|^`` from the merged
  bottom-k signature (Beyer et al.; ProbGraph's MinHash estimator) —
  clamped to the always-valid ``[0, min(|A|, |B|)]``.
* ``union_count`` estimates ``|A ∪ B|`` from the merged signature, clamped
  to ``[max(|A|, |B|), |A| + |B|]``.
* ``cardinality_estimate`` is the pure-sketch distinct count with relative
  standard error ``≈ 1/sqrt(K - 2)``.

When a set holds fewer than ``K`` elements its signature is the complete
hash set and every estimate degenerates to the exact answer.  Use
:func:`kmv_set_class` to derive a class with a different ``K``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Type

import numpy as np

from ..core.counters import COUNTERS
from ..core.interface import SetBase
from .estimators import (
    kmv_cardinality_estimate,
    kmv_intersection_estimate,
    kmv_jaccard_estimate,
    kmv_merge,
)
from .hashing import kmv_hashes

__all__ = ["KMVSketchSet", "kmv_set_class"]

_EMPTY = np.empty(0, dtype=np.int64)


class KMVSketchSet(SetBase):
    """A set backed by exact sorted members plus a bottom-k hash signature."""

    IS_EXACT = False
    K = 128

    __slots__ = ("_members", "_sig")

    def __init__(self, data: Optional[np.ndarray] = None, *, _trusted: bool = False):
        if data is None:
            members = _EMPTY
        elif _trusted:
            members = np.asarray(data, dtype=np.int64)
        else:
            members = np.unique(np.asarray(data, dtype=np.int64))
        self._members = members
        self._rebuild_signature()

    def _rebuild_signature(self) -> None:
        if len(self._members) == 0:
            self._sig = np.empty(0, dtype=np.uint64)
        else:
            self._sig = np.unique(kmv_hashes(self._members))[: self.K]

    def _paired_signatures(self, other: "KMVSketchSet"):
        """Align two signatures on a common (possibly smaller) ``k``."""
        k = min(self.K, other.K)
        return self._sig[:k], other._sig[:k], k

    def _as_kmv(self, other: SetBase) -> "KMVSketchSet":
        if isinstance(other, KMVSketchSet):
            return other
        return type(self).from_sorted_array(other.to_array())

    @staticmethod
    def _members_of(other: SetBase) -> np.ndarray:
        # Materialized ops only need the other operand's member array;
        # hashing a throwaway signature for it would be wasted work.
        if isinstance(other, KMVSketchSet):
            return other._members
        return other.to_array()

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "KMVSketchSet":
        arr = np.fromiter(elements, dtype=np.int64)
        COUNTERS.record_sketch_build()
        return cls(np.unique(arr), _trusted=True)

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "KMVSketchSet":
        COUNTERS.record_sketch_build()
        return cls(np.asarray(array, dtype=np.int64), _trusted=True)

    # -- core algebra (exact on the member store) --------------------------
    def intersect(self, other: SetBase) -> "KMVSketchSet":
        b = self._members_of(other)
        out = np.intersect1d(self._members, b, assume_unique=True)
        COUNTERS.record_bulk(len(self._members) + len(b), len(out))
        return type(self)(out, _trusted=True)

    def union(self, other: SetBase) -> "KMVSketchSet":
        b = self._members_of(other)
        out = np.union1d(self._members, b)
        COUNTERS.record_bulk(len(self._members) + len(b), len(out))
        return type(self)(out, _trusted=True)

    def diff(self, other: SetBase) -> "KMVSketchSet":
        b = self._members_of(other)
        out = np.setdiff1d(self._members, b, assume_unique=True)
        COUNTERS.record_bulk(len(self._members) + len(b), len(out))
        return type(self)(out, _trusted=True)

    # -- sketch count estimators -------------------------------------------
    def intersect_count(self, other: SetBase) -> int:
        if not isinstance(other, KMVSketchSet):
            # No signature on the other side: the exact merge count beats
            # hashing a throwaway sketch on both cost and accuracy.
            b_members = other.to_array()
            COUNTERS.record_bulk(len(self._members) + len(b_members), 0)
            return len(np.intersect1d(self._members, b_members, assume_unique=True))
        sig_a, sig_b, k = self._paired_signatures(other)
        COUNTERS.record_bulk(len(sig_a) + len(sig_b), 0)
        raw = kmv_intersection_estimate(sig_a, sig_b, k)
        bound = min(len(self._members), len(other._members))
        return int(round(min(max(raw, 0.0), bound)))

    def union_count(self, other: SetBase) -> int:
        if not isinstance(other, KMVSketchSet):
            b_members = other.to_array()
            COUNTERS.record_bulk(len(self._members) + len(b_members), 0)
            return len(np.union1d(self._members, b_members))
        sig_a, sig_b, k = self._paired_signatures(other)
        COUNTERS.record_bulk(len(sig_a) + len(sig_b), 0)
        raw = kmv_cardinality_estimate(kmv_merge(sig_a, sig_b, k), k)
        n_a, n_b = len(self._members), len(other._members)
        return int(round(min(max(raw, max(n_a, n_b)), n_a + n_b)))

    def diff_count(self, other: SetBase) -> int:
        return len(self._members) - self.intersect_count(other)

    def jaccard_estimate(self, other: SetBase) -> float:
        """Sketch-only Jaccard similarity (vertex-similarity workloads)."""
        b = self._as_kmv(other)
        sig_a, sig_b, k = self._paired_signatures(b)
        return kmv_jaccard_estimate(sig_a, sig_b, k)

    def cardinality_estimate(self) -> float:
        """Pure-sketch distinct count (rel. std-err ``≈ 1/sqrt(K-2)``)."""
        return kmv_cardinality_estimate(self._sig, self.K)

    # -- point operations --------------------------------------------------
    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        idx = np.searchsorted(self._members, element)
        return bool(idx < len(self._members) and self._members[idx] == element)

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        idx = int(np.searchsorted(self._members, element))
        if idx < len(self._members) and self._members[idx] == element:
            return
        self._members = np.insert(self._members, idx, element)
        COUNTERS.elements_written += 1
        h = kmv_hashes(np.asarray([element], dtype=np.int64))[0]
        pos = int(np.searchsorted(self._sig, h))
        if pos < len(self._sig) and self._sig[pos] == h:
            return
        if len(self._sig) < self.K:
            self._sig = np.insert(self._sig, pos, h)
        elif pos < self.K:
            self._sig = np.insert(self._sig, pos, h)[: self.K]

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        idx = int(np.searchsorted(self._members, element))
        if idx < len(self._members) and self._members[idx] == element:
            self._members = np.delete(self._members, idx)
            COUNTERS.elements_written += 1
            # The removed element's hash may sit in the signature; a KMV
            # sketch cannot delete lazily, so rebuild from the member store.
            self._rebuild_signature()

    def cardinality(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[int]:
        return iter(self._members.tolist())

    # -- fast-path overrides ------------------------------------------------
    def to_array(self) -> np.ndarray:
        return self._members.copy()

    def clone(self) -> "KMVSketchSet":
        new = object.__new__(type(self))
        new._members = self._members.copy()
        new._sig = self._sig.copy()
        return new

    def _replace_with(self, other: SetBase) -> None:
        if isinstance(other, KMVSketchSet) and other.K == self.K:
            # Same signature size: the other set's sketch is already valid
            # for this one, so copy it instead of rehashing every member.
            self._members = other._members.copy()
            self._sig = other._sig.copy()
        else:
            self._members = self._members_of(other).copy()
            self._rebuild_signature()

    # -- storage accounting ---------------------------------------------------
    def sketch_bits(self) -> int:
        """Size of the KMV signature in bits."""
        return 64 * len(self._sig)

    # -- budget configuration --------------------------------------------------
    @classmethod
    def with_k(cls, k: int, name: Optional[str] = None) -> Type["KMVSketchSet"]:
        """Derive a subclass of *cls* with signature size *k*.

        Deriving from ``cls`` preserves any method overrides of user
        subclasses.
        """
        if k < 4:
            raise ValueError("KMV signatures need k >= 4")
        return type(
            name or f"{cls.__name__.split('_k')[0]}_k{k}",
            (cls,),
            {"__slots__": (), "K": k},
        )


def kmv_set_class(k: int = 128, name: Optional[str] = None) -> Type[KMVSketchSet]:
    """Derive a :class:`KMVSketchSet` subclass with signature size *k*."""
    return KMVSketchSet.with_k(k, name)

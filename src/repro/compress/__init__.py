"""Graph compression schemes (paper section 6.8, Figure 3, appendix B)."""

from .bitpack import bits_needed, pack_bits, unpack_bits
from .gap import gap_decode, gap_encode
from .k2tree import K2Tree
from .loggraph import LogGraph
from .offsets import CompactOffsets, SelectBitvector
from .relabel import bfs_relabel, degree_minimizing_relabel, shingle_relabel
from .rle import (
    ReferenceEncodedNeighborhood,
    reference_decode,
    reference_encode,
    rle_decode,
    rle_encode,
)
from .varint import decode_array, decode_varint, encode_array, encode_varint

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_array",
    "decode_array",
    "gap_encode",
    "gap_decode",
    "pack_bits",
    "unpack_bits",
    "bits_needed",
    "SelectBitvector",
    "CompactOffsets",
    "LogGraph",
    "K2Tree",
    "rle_encode",
    "rle_decode",
    "ReferenceEncodedNeighborhood",
    "reference_encode",
    "reference_decode",
    "degree_minimizing_relabel",
    "bfs_relabel",
    "shingle_relabel",
]

"""Fixed-width bit packing of fine-grained elements (Log(Graph), section 6.8).

Log(Graph)'s core idea: a vertex ID needs only ``⌈log₂ n⌉`` bits, not a
64-bit word, so adjacency arrays shrink by "removing the leading bits"
(Figure 10) — 20–35% space reduction with trivial decompression, sometimes
a net *speedup* from reduced memory traffic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "bits_needed"]


def bits_needed(max_value: int) -> int:
    """Bits per element to store values in ``[0, max_value]``."""
    return max(int(max_value).bit_length(), 1)


def pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack each value into *width* bits, little-endian bit order."""
    arr = np.asarray(values, dtype=np.int64)
    if len(arr) and (arr.min() < 0 or int(arr.max()).bit_length() > width):
        raise ValueError(f"values do not fit in {width} bits")
    total_bits = width * len(arr)
    bits = np.zeros(total_bits, dtype=np.uint8)
    for b in range(width):
        bits[b::width] = (arr >> b) & 1
    return np.packbits(bits, bitorder="little").tobytes()


def unpack_bits(data: bytes, width: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits` for *count* elements."""
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    if len(bits) < width * count:
        raise ValueError("buffer too small for requested elements")
    out = np.zeros(count, dtype=np.int64)
    for b in range(width):
        out |= bits[b : width * count : width].astype(np.int64) << b
    return out

"""Gap (difference) encoding of sorted adjacency data (Figure 3 / appendix B).

A sorted neighborhood ``[3, 7, 8, 21]`` becomes ``[3, 4, 1, 13]`` — the
first element plus successive differences.  Gaps are small when neighbor
IDs are close, which vertex relabelings actively optimize for; combined
with varint this is the workhorse web-graph compression scheme.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gap_encode", "gap_decode"]


def gap_encode(sorted_values: np.ndarray) -> np.ndarray:
    """Differences of a sorted array (first element kept verbatim)."""
    arr = np.asarray(sorted_values, dtype=np.int64)
    if len(arr) == 0:
        return arr.copy()
    if np.any(np.diff(arr) < 0):
        raise ValueError("gap encoding requires sorted input")
    out = arr.copy()
    out[1:] = np.diff(arr)
    return out


def gap_decode(gaps: np.ndarray) -> np.ndarray:
    """Invert :func:`gap_encode`."""
    arr = np.asarray(gaps, dtype=np.int64)
    if len(arr) == 0:
        return arr.copy()
    return np.cumsum(arr)

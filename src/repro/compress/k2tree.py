"""k²-tree adjacency-matrix compression (paper Figure 3 / appendix B).

The k²-tree recursively partitions the (padded) n×n adjacency matrix into
``k × k`` submatrices; a node stores one bit per submatrix — ``1`` if it
contains any edge — and only non-empty submatrices are expanded at the
next level.  Sparse, clustered matrices compress extremely well, and
single-edge queries cost one root-to-leaf walk (O(log_k n)).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["K2Tree"]


class K2Tree:
    """A k²-tree over a graph's adjacency matrix."""

    def __init__(self, graph: CSRGraph, k: int = 2):
        if k < 2:
            raise ValueError("k must be >= 2")
        self.k = k
        n = max(graph.num_nodes, 1)
        size = 1
        while size < n:
            size *= k
        self._size = size
        self._n = graph.num_nodes
        self._directed = graph.directed
        edges = set()
        for u in graph.vertices():
            for v in graph.out_neigh(u).tolist():
                edges.add((u, v))
        # Build levels breadth-first: each level is a bit array; children
        # of the i-th set bit occupy slot rank1(i) at the next level.
        self._levels: List[np.ndarray] = []
        cells = [(0, 0, size, tuple(sorted(edges)))]
        while cells and cells[0][2] > 1:
            bits = []
            next_cells = []
            sub = cells[0][2] // self.k
            for (r0, c0, size_, cell_edges) in cells:
                buckets = {}
                for (r, c) in cell_edges:
                    br = (r - r0) // sub
                    bc = (c - c0) // sub
                    buckets.setdefault((br, bc), []).append((r, c))
                for br in range(self.k):
                    for bc in range(self.k):
                        child = buckets.get((br, bc))
                        bits.append(1 if child else 0)
                        if child and sub >= 1:
                            next_cells.append(
                                (
                                    r0 + br * sub,
                                    c0 + bc * sub,
                                    sub,
                                    tuple(child),
                                )
                            )
            self._levels.append(np.asarray(bits, dtype=np.uint8))
            if sub == 1:
                # next_cells are single cells; leaves already encoded.
                cells = []
            else:
                cells = next_cells
        # Precompute child offsets (rank prefix sums) per level.
        self._ranks = [np.concatenate(([0], np.cumsum(lvl))) for lvl in self._levels]

    def has_edge(self, u: int, v: int) -> bool:
        """Root-to-leaf walk: O(log_k n) bit probes."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        size = self._size
        node = 0  # index of the current cell's first child bit / k^2
        r, c = u, v
        for depth, level in enumerate(self._levels):
            sub = size // self.k
            child = (r // sub) * self.k + (c // sub)
            bit_index = node * self.k * self.k + child
            if not level[bit_index]:
                return False
            if depth + 1 == len(self._levels):
                return True
            node = int(self._ranks[depth][bit_index + 1] - 1)
            r %= sub
            c %= sub
            size = sub
        return True

    def out_neigh(self, u: int) -> np.ndarray:
        """Recover row *u* (used by the round-trip tests)."""
        found = [v for v in range(self._n) if self.has_edge(u, v)]
        return np.asarray(found, dtype=np.int64)

    def storage_bits(self) -> int:
        """Total bits across all levels (plus rank samples ignored)."""
        return int(sum(len(lvl) for lvl in self._levels))

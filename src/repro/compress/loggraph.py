"""Log(Graph) compressed graph representation (paper section 6.8).

Log(Graph) compresses each CSR component toward its logarithmic storage
lower bound while keeping O(1)-ish accesses:

* the **adjacency data** is bit-packed at ``⌈log₂ n⌉`` bits per vertex ID
  (optionally gap+varint encoded per neighborhood instead);
* the **offsets** are stored in a compact select-capable bitvector.

The class implements the standard graph-access interface (degree,
neighbors, has_edge), so it can be dropped into any pipeline stage ``1``
slot: mining algorithms run unchanged on top of it — the whole point of
the representation modularity.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .bitpack import bits_needed, pack_bits, unpack_bits
from .gap import gap_decode, gap_encode
from .offsets import CompactOffsets
from .varint import decode_array, encode_array

__all__ = ["LogGraph"]


class LogGraph:
    """A Log(Graph)-compressed immutable graph.

    Parameters
    ----------
    graph:
        Source CSR graph.
    adjacency_encoding:
        ``"bitpack"`` — fixed ``⌈log₂ n⌉``-bit IDs (O(1) random access);
        ``"varint-gap"`` — per-neighborhood gap encoding + varint bytes
        (smaller, sequential decode per neighborhood).
    """

    def __init__(self, graph: CSRGraph, adjacency_encoding: str = "bitpack"):
        if adjacency_encoding not in ("bitpack", "varint-gap"):
            raise ValueError("encoding must be 'bitpack' or 'varint-gap'")
        self._n = graph.num_nodes
        self._m = graph.num_edges
        self._directed = graph.directed
        self._encoding = adjacency_encoding
        self._offsets = CompactOffsets(graph.offsets)
        self._width = bits_needed(max(self._n - 1, 1))
        if adjacency_encoding == "bitpack":
            self._adjacency = pack_bits(graph.adjacency, self._width)
            self._degrees = None
        else:
            # Per-neighborhood gap+varint blobs, with a byte-offset array.
            blobs = []
            byte_offsets = [0]
            for v in graph.vertices():
                blob = encode_array(gap_encode(graph.out_neigh(v)))
                blobs.append(blob)
                byte_offsets.append(byte_offsets[-1] + len(blob))
            self._adjacency = b"".join(blobs)
            self._byte_offsets = np.asarray(byte_offsets, dtype=np.int64)
            self._degrees = np.diff(graph.offsets)

    # -- graph-access interface (stage 2) --------------------------------
    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def directed(self) -> bool:
        return self._directed

    def out_degree(self, v: int) -> int:
        if self._encoding == "bitpack":
            return self._offsets.degree(v)
        return int(self._degrees[v])

    def out_neigh(self, v: int) -> np.ndarray:
        """Decode and return ``N(v)`` as a sorted array."""
        if self._encoding == "bitpack":
            start = self._offsets.offset(v)
            deg = self._offsets.degree(v)
            if deg == 0:
                return np.empty(0, dtype=np.int64)
            # Slice the packed buffer around the needed bit range.
            bit_lo = start * self._width
            bit_hi = (start + deg) * self._width
            byte_lo, byte_hi = bit_lo // 8, (bit_hi + 7) // 8
            chunk = self._adjacency[byte_lo:byte_hi]
            bits = np.unpackbits(
                np.frombuffer(chunk, dtype=np.uint8), bitorder="little"
            )
            local = bits[bit_lo - 8 * byte_lo : bit_lo - 8 * byte_lo
                         + deg * self._width]
            out = np.zeros(deg, dtype=np.int64)
            for b in range(self._width):
                out |= local[b :: self._width].astype(np.int64) << b
            return out
        blob = self._adjacency[
            self._byte_offsets[v] : self._byte_offsets[v + 1]
        ]
        deg = self.out_degree(v)
        if deg == 0:
            return np.empty(0, dtype=np.int64)
        return gap_decode(decode_array(blob, deg))

    def has_edge(self, u: int, v: int) -> bool:
        neigh = self.out_neigh(u)
        idx = int(np.searchsorted(neigh, v))
        return idx < len(neigh) and neigh[idx] == v

    def vertices(self) -> range:
        return range(self._n)

    def neighborhood_set(self, v: int, set_cls):
        """Materialize ``N(v)`` as a set (same bridge as CSR)."""
        return set_cls.from_sorted_array(self.out_neigh(v))

    # -- storage accounting ------------------------------------------------
    def storage_bytes(self) -> int:
        """Compressed size: adjacency payload + offset structure."""
        total = len(self._adjacency) + self._offsets.storage_bits() // 8 + 1
        if self._encoding == "varint-gap":
            total += self._byte_offsets.nbytes + self._degrees.nbytes
        return total

    def to_csr(self) -> CSRGraph:
        """Decompress back to CSR (round-trip check / interop)."""
        offsets = np.zeros(self._n + 1, dtype=np.int64)
        chunks = []
        for v in range(self._n):
            neigh = self.out_neigh(v)
            chunks.append(neigh)
            offsets[v + 1] = offsets[v] + len(neigh)
        adjacency = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        return CSRGraph(offsets, adjacency, directed=self._directed)

"""Succinct and compact offset structures (Log(Graph), Figure 10).

CSR's offset array costs ``n`` words.  Log(Graph) replaces it with a *bit
vector* of length ``2m`` in which the ``i``-th set bit marks where vertex
``i``'s neighborhood starts; a rank/select index then answers
``offset(v)`` queries near the information-theoretic lower bound.

This module provides that select-capable bitvector with the standard
block-based index: O(1)-ish select with o(n) extra space.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SelectBitvector", "CompactOffsets"]


class SelectBitvector:
    """Bitvector with rank/select support via sampled block counts."""

    def __init__(self, bits: np.ndarray, sample_rate: int = 64):
        self._bits = np.asarray(bits, dtype=np.uint8)
        self._sample_rate = sample_rate
        positions = np.nonzero(self._bits)[0]
        self._positions_of_ones = positions  # exact select table (compact)
        # Rank samples: number of ones before each block.
        self._rank_samples = np.concatenate(
            ([0], np.cumsum(self._bits)[sample_rate - 1 :: sample_rate])
        ).astype(np.int64)

    def __len__(self) -> int:
        return len(self._bits)

    def rank1(self, pos: int) -> int:
        """Number of set bits strictly before *pos*."""
        if pos <= 0:
            return 0
        pos = min(pos, len(self._bits))
        block = pos // self._sample_rate
        base = int(self._rank_samples[block]) if block < len(self._rank_samples) else int(self._bits.sum())
        start = block * self._sample_rate
        return base + int(self._bits[start:pos].sum())

    def select1(self, k: int) -> int:
        """Position of the k-th (0-based) set bit."""
        return int(self._positions_of_ones[k])

    def storage_bits(self) -> int:
        """Bitvector plus index size in bits."""
        return len(self._bits) + 64 * len(self._rank_samples)


class CompactOffsets:
    """Offset structure over a concatenated adjacency array.

    Encodes the CSR offsets of a graph with ``n`` vertices and ``k`` stored
    arcs as a length-``k + n`` bitvector: writing, for each vertex in
    order, a ``1`` followed by ``degree`` zeros.  ``offset(v)`` =
    ``select1(v) - v``; storage ≈ ``k + n`` bits versus ``64(n+1)`` for the
    plain array.
    """

    def __init__(self, offsets: np.ndarray):
        offsets = np.asarray(offsets, dtype=np.int64)
        n = len(offsets) - 1
        k = int(offsets[-1])
        bits = np.zeros(n + k, dtype=np.uint8)
        bits[offsets[:-1] + np.arange(n)] = 1
        self._n = n
        self._k = k
        self._bv = SelectBitvector(bits)

    def offset(self, v: int) -> int:
        """Start of vertex *v*'s neighborhood in the adjacency array."""
        if not 0 <= v < self._n:
            raise IndexError(f"vertex {v} out of range")
        return self._bv.select1(v) - v

    def degree(self, v: int) -> int:
        """Degree of vertex *v* (distance to the next marker)."""
        start = self.offset(v)
        end = self._k if v + 1 == self._n else self.offset(v + 1)
        return end - start

    def storage_bits(self) -> int:
        return self._bv.storage_bits()

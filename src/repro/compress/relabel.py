"""Vertex relabelings (permutations) for compression (Figure 3 / appendix B).

Relabelings permute vertex IDs so that subsequent transformations (gap +
varint, RLE, bit packing) compress better:

* **degree-minimizing** — IDs by descending degree, so the highest-degree
  vertices (which appear most often in adjacency data) get the *smallest*
  IDs and hence the fewest varint bytes (the "Huffman degree" idea);
* **BFS relabeling** — IDs in BFS order, giving neighbors nearby IDs and
  hence small gaps;
* **shingle-like relabeling** — groups vertices with similar neighborhoods
  (here: by sorted first-neighbors) to help reference encoding.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["degree_minimizing_relabel", "bfs_relabel", "shingle_relabel"]


def degree_minimizing_relabel(graph: CSRGraph) -> np.ndarray:
    """Permutation: new ID of v = rank of v by descending degree."""
    degrees = graph.degrees()
    order = np.lexsort((np.arange(graph.num_nodes), -degrees))
    perm = np.empty(graph.num_nodes, dtype=np.int64)
    perm[order] = np.arange(graph.num_nodes)
    return perm


def bfs_relabel(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Permutation assigning IDs in BFS visiting order (all components)."""
    n = graph.num_nodes
    perm = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for start in list(range(n)):
        if n == 0:
            break
        s = source if next_id == 0 else start
        if perm[s] >= 0:
            continue
        queue = [s]
        perm[s] = next_id
        next_id += 1
        while queue:
            u = queue.pop(0)
            for v in graph.out_neigh(u).tolist():
                if perm[v] < 0:
                    perm[v] = next_id
                    next_id += 1
                    queue.append(v)
    return perm


def shingle_relabel(graph: CSRGraph) -> np.ndarray:
    """Permutation clustering vertices by their smallest neighbor (shingle).

    Vertices sharing their minimum neighbor ID tend to have overlapping
    neighborhoods (co-citation), which reference encoding exploits.
    """
    n = graph.num_nodes
    shingles = np.empty(n, dtype=np.int64)
    for v in range(n):
        neigh = graph.out_neigh(v)
        shingles[v] = int(neigh[0]) if len(neigh) else n
    order = np.lexsort((np.arange(n), shingles))
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n)
    return perm

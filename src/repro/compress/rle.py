"""Run-length and reference encodings of adjacency data (Figure 3 / app. B).

* **Run-length encoding (RLE)** — consecutive-ID runs in a sorted
  neighborhood collapse to ``(start, length)`` pairs; effective after
  locality-improving relabelings.
* **Reference encoding** — a neighborhood that closely resembles another
  one (common in web graphs: "almost identical neighborhoods", Figure 10)
  stores a reference to that list plus a small add/remove patch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["rle_encode", "rle_decode", "ReferenceEncodedNeighborhood",
           "reference_encode", "reference_decode"]


def rle_encode(sorted_values: np.ndarray) -> List[Tuple[int, int]]:
    """Encode a sorted unique array as ``(start, run_length)`` pairs."""
    arr = np.asarray(sorted_values, dtype=np.int64)
    if len(arr) == 0:
        return []
    breaks = np.nonzero(np.diff(arr) != 1)[0] + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [len(arr)]))
    return [(int(arr[s]), int(e - s)) for s, e in zip(starts, ends)]


def rle_decode(runs: List[Tuple[int, int]]) -> np.ndarray:
    """Invert :func:`rle_encode`."""
    if not runs:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.arange(s, s + l, dtype=np.int64) for s, l in runs]
    )


@dataclass
class ReferenceEncodedNeighborhood:
    """``N(v)`` stored as a patch against a reference neighborhood."""

    reference_vertex: Optional[int]  # None → stored verbatim
    additions: np.ndarray  # elements not in the reference
    removals: np.ndarray  # reference elements not in N(v)


def reference_encode(
    neighborhood: np.ndarray,
    reference: np.ndarray,
    reference_vertex: int,
    max_patch_fraction: float = 0.5,
) -> ReferenceEncodedNeighborhood:
    """Encode against *reference* when the patch is small enough.

    Falls back to verbatim storage (``reference_vertex=None``) when the
    add+remove patch would exceed ``max_patch_fraction`` of the plain size.
    """
    neigh = np.asarray(neighborhood, dtype=np.int64)
    ref = np.asarray(reference, dtype=np.int64)
    additions = np.setdiff1d(neigh, ref, assume_unique=True)
    removals = np.setdiff1d(ref, neigh, assume_unique=True)
    if len(additions) + len(removals) <= max_patch_fraction * max(len(neigh), 1):
        return ReferenceEncodedNeighborhood(reference_vertex, additions, removals)
    return ReferenceEncodedNeighborhood(
        None, neigh.copy(), np.empty(0, dtype=np.int64)
    )


def reference_decode(
    encoded: ReferenceEncodedNeighborhood, reference: Optional[np.ndarray]
) -> np.ndarray:
    """Invert :func:`reference_encode` given the reference's plain data."""
    if encoded.reference_vertex is None:
        return encoded.additions.copy()
    if reference is None:
        raise ValueError("reference data required for referenced encoding")
    base = np.setdiff1d(
        np.asarray(reference, dtype=np.int64), encoded.removals, assume_unique=True
    )
    return np.union1d(base, encoded.additions)

"""Varint (variable-length integer) encoding (paper Figure 3 / appendix B).

The classic 7-bit-per-byte encoding: each byte carries 7 payload bits and a
continuation flag ("1 says there is a next part, 0 says it is the last
part" — Figure 10).  Used to compress adjacency data, usually after gap
encoding and a relabeling that shrinks the gaps.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["encode_varint", "decode_varint", "encode_array", "decode_array"]


def encode_varint(value: int) -> bytes:
    """Encode one non-negative integer."""
    if value < 0:
        raise ValueError("varint encodes non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one integer; return ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def encode_array(values: np.ndarray | List[int]) -> bytes:
    """Encode a sequence of non-negative integers back to back."""
    out = bytearray()
    for v in np.asarray(values, dtype=np.int64).tolist():
        out.extend(encode_varint(int(v)))
    return bytes(out)


def decode_array(data: bytes, count: int) -> np.ndarray:
    """Decode *count* integers from *data*."""
    out = np.empty(count, dtype=np.int64)
    offset = 0
    for i in range(count):
        out[i], offset = decode_varint(data, offset)
    if offset != len(data):
        raise ValueError(f"trailing bytes after {count} varints")
    return out

"""Set-algebra core of the GMS platform (paper section 5).

Exports the abstract :class:`~repro.core.interface.SetBase` interface, the
four concrete set representations, the merge/galloping kernels, the
set-class registry, and the software performance counters.
"""

from .bit_set import BitSet
from .compressed_set import CompressedSortedSet
from .counters import COUNTERS, Snapshot, merge_snapshots, reset, snapshot
from .hash_set import HashSet
from .interface import SetBase
from .ops import (
    diff_merge,
    intersect_count_galloping,
    intersect_count_merge,
    intersect_galloping,
    intersect_merge,
    union_merge,
)
from .registry import (
    SET_CLASSES,
    get_set_class,
    register_set_class,
    registered_set_classes,
    set_class_names,
)
from .roaring import ARRAY_CONTAINER_MAX, RoaringSet
from .sorted_set import SortedSet

__all__ = [
    "SetBase",
    "SortedSet",
    "BitSet",
    "RoaringSet",
    "HashSet",
    "CompressedSortedSet",
    "ARRAY_CONTAINER_MAX",
    "SET_CLASSES",
    "get_set_class",
    "register_set_class",
    "registered_set_classes",
    "set_class_names",
    "COUNTERS",
    "Snapshot",
    "merge_snapshots",
    "snapshot",
    "reset",
    "intersect_merge",
    "intersect_galloping",
    "intersect_count_merge",
    "intersect_count_galloping",
    "union_merge",
    "diff_merge",
]

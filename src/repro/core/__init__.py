"""Set-algebra core of the GMS platform (paper section 5).

Exports the abstract :class:`~repro.core.interface.SetBase` interface, the
concrete set representations (including the density-adaptive dispatch
backend), the merge/galloping/packed-bitmap kernels, the set-class
registry, and the software performance counters.
"""

from .bit_set import BitSet
from .compressed_set import CompressedSortedSet
from .counters import COUNTERS, Snapshot, merge_snapshots, reset, snapshot
from .dispatch import (
    DISPATCH_MODES,
    AdaptiveSet,
    choose_intersect_algorithm,
    choose_representation,
)
from .hash_set import HashSet
from .interface import SetBase
from .ops import (
    as_sorted_unique,
    diff_merge,
    intersect_count_galloping,
    intersect_count_merge,
    intersect_galloping,
    intersect_merge,
    member_mask_galloping,
    member_mask_merge,
    union_merge,
)
from .registry import (
    SET_CLASSES,
    get_set_class,
    register_set_class,
    registered_set_classes,
    set_class_names,
)
from .roaring import ARRAY_CONTAINER_MAX, RoaringSet
from .sorted_set import SortedSet

__all__ = [
    "SetBase",
    "SortedSet",
    "BitSet",
    "RoaringSet",
    "HashSet",
    "CompressedSortedSet",
    "AdaptiveSet",
    "DISPATCH_MODES",
    "choose_intersect_algorithm",
    "choose_representation",
    "ARRAY_CONTAINER_MAX",
    "SET_CLASSES",
    "get_set_class",
    "register_set_class",
    "registered_set_classes",
    "set_class_names",
    "COUNTERS",
    "Snapshot",
    "merge_snapshots",
    "snapshot",
    "reset",
    "as_sorted_unique",
    "intersect_merge",
    "intersect_galloping",
    "intersect_count_merge",
    "intersect_count_galloping",
    "union_merge",
    "diff_merge",
    "member_mask_merge",
    "member_mask_galloping",
]

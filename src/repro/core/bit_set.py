"""BitSet — dense bitvector set representation (paper section 5.2).

A dense bitvector of size ``n`` bits stores a set over ``{0, ..., n-1}``;
the ``i``-th set bit means vertex ``i`` is a member.  It is larger than a
sparse array for small sets but more space-efficient for very large ones,
and it supports O(1) insert/delete — which the paper highlights as useful
for the dynamic ``P``/``X``/``R`` sets of Bron–Kerbosch.

The implementation stores the bits in a single Python arbitrary-precision
integer: CPython big-int bitwise operations run over 30-bit limbs in C, so
``&``/``|``/``&~`` here play the role of the word-parallel SIMD loops of the
C++ platform.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .counters import COUNTERS
from .interface import SetBase
from .ops import as_sorted_unique

__all__ = ["BitSet"]

_WORD_BITS = 64


class BitSet(SetBase):
    """A set stored as a dense bitvector backed by one Python integer."""

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0):
        self._bits = bits

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "BitSet":
        bits = 0
        for e in elements:
            bits |= 1 << e
        return cls(bits)

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "BitSet":
        # Validate-or-sort first: the byte-buffer size below is read off
        # ``arr[-1]``, which is only the maximum when the array is sorted —
        # an unsorted input used to index past the buffer (or, with a large
        # element last, silently allocate for the wrong universe).
        arr = as_sorted_unique(array)
        if len(arr) == 0:
            return cls(0)
        # Pack via numpy: build a byte buffer with the relevant bits set.
        nbytes = (int(arr[-1]) >> 3) + 1
        buf = np.zeros(nbytes, dtype=np.uint8)
        np.bitwise_or.at(buf, arr >> 3, np.left_shift(1, arr & 7).astype(np.uint8))
        return cls(int.from_bytes(buf.tobytes(), "little"))

    @classmethod
    def range(cls, bound: int) -> "BitSet":
        return cls((1 << bound) - 1 if bound > 0 else 0)

    # -- core algebra ---------------------------------------------------
    def _words(self) -> int:
        return (self._bits.bit_length() + _WORD_BITS - 1) // _WORD_BITS

    def _record(self, b: "BitSet", written: int) -> None:
        # Normalized units: elements (cardinalities), like every other
        # backend — the old word-based recording made BitSet cells
        # incomparable.  The word-level cost moves to the scan attribution.
        COUNTERS.record_bulk(self.cardinality() + b.cardinality(), written)
        COUNTERS.record_scan("bitset", self._words() + b._words())

    def intersect(self, other: SetBase) -> "BitSet":
        b = self._coerce(other)
        out = self._bits & b._bits
        self._record(b, out.bit_count())
        return BitSet(out)

    def intersect_count(self, other: SetBase) -> int:
        b = self._coerce(other)
        self._record(b, 0)
        return (self._bits & b._bits).bit_count()

    def intersect_inplace(self, other: SetBase) -> None:
        # Genuinely in-place (no intermediate BitSet as in the generic
        # default): one big-int AND, rebound onto this set's payload.
        b = self._coerce(other)
        out = self._bits & b._bits
        self._record(b, out.bit_count())
        self._bits = out

    def intersect_assign(self, a: SetBase, b: SetBase) -> None:
        # Fused A = a ∩ b: one big-int AND straight into this payload.
        ca, cb = self._coerce(a), self._coerce(b)
        out = ca._bits & cb._bits
        ca._record(cb, out.bit_count())
        self._bits = out

    def union(self, other: SetBase) -> "BitSet":
        b = self._coerce(other)
        out = self._bits | b._bits
        self._record(b, out.bit_count())
        return BitSet(out)

    def diff(self, other: SetBase) -> "BitSet":
        b = self._coerce(other)
        out = self._bits & ~b._bits
        self._record(b, out.bit_count())
        return BitSet(out)

    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        return bool((self._bits >> element) & 1)

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        bit = 1 << element
        if not self._bits & bit:
            self._bits |= bit
            COUNTERS.elements_written += 1

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        bit = 1 << element
        if self._bits & bit:
            self._bits &= ~bit
            COUNTERS.elements_written += 1

    def cardinality(self) -> int:
        return self._bits.bit_count()

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        if self._bits == 0:
            return np.empty(0, dtype=np.int64)
        nbytes = (self._bits.bit_length() + 7) // 8
        buf = np.frombuffer(self._bits.to_bytes(nbytes, "little"), dtype=np.uint8)
        bits = np.unpackbits(buf, bitorder="little")
        return np.nonzero(bits)[0].astype(np.int64)

    def clone(self) -> "BitSet":
        return BitSet(self._bits)

    def _replace_with(self, other: SetBase) -> None:
        self._bits = self._coerce(other)._bits

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self._bits == other._bits
        return super().__eq__(other)

    __hash__ = SetBase.__hash__

    # -- storage accounting (for the memory-consumption analysis) --------
    def storage_bits(self) -> int:
        """Size of the dense bitvector in bits (``n`` in the paper)."""
        return max(self._bits.bit_length(), 1)


def _word_count(bits: int) -> int:
    return (bits.bit_length() + _WORD_BITS - 1) // _WORD_BITS

"""CompressedSortedSet — gap+varint compressed set representation.

The paper lists *compressed variants* of integer arrays among the set
layouts GMS offers (§5.2: "different set layouts based on integer arrays,
bit vectors, and compressed variants of these two").  This class stores
the sorted elements as a gap-encoded varint byte string — the Log(Graph)
adjacency encoding applied to a single set — and decompresses lazily,
caching the decoded array between mutations.

Storage is typically 4–8× below SortedSet for clustered IDs; every bulk
operation pays one decode of each operand, making the representation a
pure storage/performance trade-off point for the ablation studies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from ..compress.gap import gap_decode, gap_encode
from ..compress.varint import decode_array, encode_array
from .counters import COUNTERS
from .interface import SetBase
from .ops import as_sorted_unique

__all__ = ["CompressedSortedSet"]


class CompressedSortedSet(SetBase):
    """A set stored as gap-encoded varint bytes with a lazy decode cache."""

    __slots__ = ("_blob", "_count", "_cache")

    def __init__(self, blob: bytes = b"", count: int = 0):
        self._blob = blob
        self._count = count
        self._cache: Optional[np.ndarray] = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "CompressedSortedSet":
        arr = np.unique(np.fromiter(elements, dtype=np.int64))
        return cls.from_sorted_array(arr)

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "CompressedSortedSet":
        # Validate-or-sort: gap encoding silently assumes sortedness, so an
        # unsorted or duplicated input must be normalized first.
        arr = as_sorted_unique(array)
        out = cls(encode_array(gap_encode(arr)), len(arr))
        out._cache = arr.copy()
        return out

    # -- decode ----------------------------------------------------------
    def _decoded(self) -> np.ndarray:
        if self._cache is None:
            if self._count == 0:
                self._cache = np.empty(0, dtype=np.int64)
            else:
                self._cache = gap_decode(decode_array(self._blob, self._count))
        return self._cache

    def _recompress(self, arr: np.ndarray) -> None:
        self._blob = encode_array(gap_encode(arr))
        self._count = len(arr)
        self._cache = arr

    # -- core algebra ---------------------------------------------------
    def intersect(self, other: SetBase) -> "CompressedSortedSet":
        b = self._coerce(other)
        COUNTERS.record_bulk(self._count + b._count, 0)
        out = np.intersect1d(self._decoded(), b._decoded(), assume_unique=True)
        COUNTERS.elements_written += len(out)
        return CompressedSortedSet.from_sorted_array(out)

    def intersect_count(self, other: SetBase) -> int:
        b = self._coerce(other)
        COUNTERS.record_bulk(self._count + b._count, 0)
        return len(
            np.intersect1d(self._decoded(), b._decoded(), assume_unique=True)
        )

    def union(self, other: SetBase) -> "CompressedSortedSet":
        b = self._coerce(other)
        out = np.union1d(self._decoded(), b._decoded())
        COUNTERS.record_bulk(self._count + b._count, len(out))
        return CompressedSortedSet.from_sorted_array(out)

    def diff(self, other: SetBase) -> "CompressedSortedSet":
        b = self._coerce(other)
        out = np.setdiff1d(self._decoded(), b._decoded(), assume_unique=True)
        COUNTERS.record_bulk(self._count + b._count, len(out))
        return CompressedSortedSet.from_sorted_array(out)

    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        arr = self._decoded()
        idx = int(np.searchsorted(arr, element))
        return idx < len(arr) and arr[idx] == element

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        arr = self._decoded()
        idx = int(np.searchsorted(arr, element))
        if idx < len(arr) and arr[idx] == element:
            return
        self._recompress(np.insert(arr, idx, element))
        COUNTERS.elements_written += 1

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        arr = self._decoded()
        idx = int(np.searchsorted(arr, element))
        if idx < len(arr) and arr[idx] == element:
            self._recompress(np.delete(arr, idx))
            COUNTERS.elements_written += 1

    def cardinality(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        return iter(self._decoded().tolist())

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        return self._decoded().copy()

    def clone(self) -> "CompressedSortedSet":
        out = CompressedSortedSet(self._blob, self._count)
        if self._cache is not None:
            out._cache = self._cache.copy()
        return out

    def _replace_with(self, other: SetBase) -> None:
        o = self._coerce(other)
        self._blob, self._count = o._blob, o._count
        self._cache = None if o._cache is None else o._cache.copy()

    # -- storage accounting ------------------------------------------------
    def storage_bytes(self) -> int:
        """Compressed payload size (excludes the transient decode cache)."""
        return len(self._blob) + 8

    def drop_cache(self) -> None:
        """Release the decode cache (storage-only resident state)."""
        self._cache = None

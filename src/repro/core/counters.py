"""Software performance counters for the set-algebra layer.

GMS integrates with PAPI to read hardware counters (paper, Listing 4 and
section 4.3).  A pure-Python reproduction has no portable access to hardware
counters, so the set-algebra layer maintains *software* counters instead:
every set operation records how many elements it touched (a proxy for memory
words read) and how many it produced (a proxy for words written).  The
:mod:`repro.runtime.papi` facade converts these counters into the
PAPI-flavoured quantities used by the paper's machine-efficiency analysis
(section 8.8), e.g. simulated stalled CPU cycles.

Counter units (normative)
-------------------------
``elements_read``/``elements_written`` count **elements** (set members), a
representation-independent unit: every backend records ``|A| + |B|`` reads
per bulk operation and ``|result|`` writes for materializing operations
(``*_count`` operations write nothing); a point operation records one
read, plus one write when it actually modifies the set (``add`` of an
absent element, ``remove`` of a present one).  Identical operation sequences on
identical inputs therefore produce identical deltas across all exact
backends — the property the cross-backend regression tests pin.
Representation-specific cost (how many machine words a kernel actually
scanned) is attributed separately, per organization/algorithm, in
``words_scanned`` — e.g. a dense-bitmap intersection over a sparse set
scans many words per element, a galloping probe scans ``log`` many.

The counters are global on purpose: they mirror how PAPI instruments a whole
parallel region rather than a single data structure.  Use
:func:`snapshot` / :func:`Snapshot.delta` to meter a region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


class Counters:
    """Mutable global counter block.

    Attributes
    ----------
    set_ops:
        Number of bulk set operations (intersections, unions, differences).
    point_ops:
        Number of fine-grained operations (``contains``, ``add``, ``remove``).
    elements_read:
        Elements touched as operation inputs — the memory-read proxy.
        Always cardinalities (see the module docstring), never words.
    elements_written:
        Elements materialized as operation outputs — the memory-write proxy.
    sketch_builds:
        Sketch constructions from raw member arrays (Bloom filter fills,
        KMV signature hashes) — the metric behind the incremental-pivot
        regression tests: maintaining a sketch incrementally must not
        rebuild it from scratch once per recursive call.
    words_scanned:
        Machine words (8-byte units) scanned per set organization /
        algorithm, e.g. ``{"sorted/merge": 812, "adaptive/bitmap": 96}``.
        This is where representation-specific cost lives, so the ablation
        benchmark can attribute cycles to organizations while
        ``elements_read`` stays comparable across backends.
    payload_bytes_shipped:
        Bytes the parallel runtime shipped *to* pool workers: the
        pre-warm seed payload (counted once per worker it initializes)
        plus the pickled arguments of every pool task.  This is the
        serialization cost the shared-memory transport exists to
        eliminate — shm runs ship array *descriptors* instead of array
        contents, and this counter is what makes the reduction
        attributable rather than anecdotal.  Recorded parent-side only
        (workers never ship payloads), so worker counter deltas carry 0.
    payload_tasks:
        Number of pool tasks shipped; ``payload_bytes_shipped /
        payload_tasks`` is the bench's payload-bytes-per-task metric
        (seed payloads count bytes but not tasks, so they amortize over
        the tasks they warm).
    shm_suppressed:
        Cleanup failures the shared-memory transport swallowed on
        purpose (segment close/unlink errors during teardown, where
        raising would mask the original failure or break idempotent
        close).  Each suppression is also logged at DEBUG by
        :mod:`repro.platform.shm`; this counter is the cheap always-on
        signal that leaked-segment diagnostics should go look there.
        Process-local (not part of :class:`Snapshot` deltas).
    """

    __slots__ = ("set_ops", "point_ops", "elements_read", "elements_written",
                 "sketch_builds", "words_scanned", "payload_bytes_shipped",
                 "payload_tasks", "shm_suppressed")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        self.set_ops = 0
        self.point_ops = 0
        self.elements_read = 0
        self.elements_written = 0
        self.sketch_builds = 0
        self.words_scanned: Dict[str, int] = {}
        self.payload_bytes_shipped = 0
        self.payload_tasks = 0
        self.shm_suppressed = 0

    # The record methods are deliberately tiny: they sit on the hot path
    # of every set operation.
    def record_bulk(self, read: int, written: int) -> None:
        """Record one bulk set operation touching *read* inputs."""
        self.set_ops += 1
        self.elements_read += read
        self.elements_written += written

    def record_point(self, read: int = 1) -> None:
        """Record one point operation (membership test, add, remove)."""
        self.point_ops += 1
        self.elements_read += read

    def record_sketch_build(self) -> None:
        """Record one from-scratch sketch construction (full member hash)."""
        self.sketch_builds += 1

    def record_scan(self, organization: str, words: int) -> None:
        """Attribute *words* machine words scanned to *organization*."""
        scans = self.words_scanned
        scans[organization] = scans.get(organization, 0) + words

    def record_payload(self, nbytes: int, tasks: int = 0) -> None:
        """Record *nbytes* shipped to pool workers (*tasks* pool tasks).

        Pool-seed payloads record bytes only (``tasks=0``); per-task
        submissions record ``tasks=1`` so bytes-per-task stays computable.
        """
        self.payload_bytes_shipped += nbytes
        self.payload_tasks += tasks

    def record_suppressed(self) -> None:
        """Record one deliberately-swallowed shm cleanup failure."""
        self.shm_suppressed += 1

    def absorb(self, delta: "Snapshot") -> None:
        """Fold a :class:`Snapshot` delta into this block.

        The parallel suite runner uses this to merge per-worker counter
        deltas back into the parent process's global block, so process-wide
        totals stay meaningful whether the cells ran in-process or in a
        worker pool.
        """
        self.set_ops += delta.set_ops
        self.point_ops += delta.point_ops
        self.elements_read += delta.elements_read
        self.elements_written += delta.elements_written
        self.sketch_builds += delta.sketch_builds
        for organization, words in delta.words_scanned.items():
            self.record_scan(organization, words)
        self.payload_bytes_shipped += delta.payload_bytes_shipped
        self.payload_tasks += delta.payload_tasks

    @property
    def memory_traffic(self) -> int:
        """Total element traffic — the quantity the stall model consumes."""
        return self.elements_read + self.elements_written


def _merge_scans(a: Mapping[str, int], b: Mapping[str, int]) -> Dict[str, int]:
    merged = dict(a)
    for organization, words in b.items():
        merged[organization] = merged.get(organization, 0) + words
    return merged


@dataclass(frozen=True)
class Snapshot:
    """Immutable copy of the counter block at one instant.

    ``words_scanned`` deltas/merges are per-key integer arithmetic, so the
    associativity and commutativity laws the parallel runner relies on
    extend to the attribution dict unchanged.
    """

    set_ops: int
    point_ops: int
    elements_read: int
    elements_written: int
    sketch_builds: int = 0
    words_scanned: Mapping[str, int] = field(default_factory=dict)
    payload_bytes_shipped: int = 0
    payload_tasks: int = 0

    def delta(self, later: "Snapshot") -> "Snapshot":
        """Return the counter increments between ``self`` and *later*."""
        scans = {
            organization: words - self.words_scanned.get(organization, 0)
            for organization, words in later.words_scanned.items()
            if words != self.words_scanned.get(organization, 0)
        }
        return Snapshot(
            set_ops=later.set_ops - self.set_ops,
            point_ops=later.point_ops - self.point_ops,
            elements_read=later.elements_read - self.elements_read,
            elements_written=later.elements_written - self.elements_written,
            sketch_builds=later.sketch_builds - self.sketch_builds,
            words_scanned=scans,
            payload_bytes_shipped=(later.payload_bytes_shipped
                                   - self.payload_bytes_shipped),
            payload_tasks=later.payload_tasks - self.payload_tasks,
        )

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Elementwise sum of two deltas.

        Merging is associative and commutative (it is integer addition per
        field, and per key for ``words_scanned``), which is what makes
        sharded execution safe: the merge of per-worker deltas equals the
        sequential totals regardless of how the cells were chunked or in
        which order the shards complete.
        """
        return Snapshot(
            set_ops=self.set_ops + other.set_ops,
            point_ops=self.point_ops + other.point_ops,
            elements_read=self.elements_read + other.elements_read,
            elements_written=self.elements_written + other.elements_written,
            sketch_builds=self.sketch_builds + other.sketch_builds,
            words_scanned=_merge_scans(self.words_scanned,
                                       other.words_scanned),
            payload_bytes_shipped=(self.payload_bytes_shipped
                                   + other.payload_bytes_shipped),
            payload_tasks=self.payload_tasks + other.payload_tasks,
        )

    __add__ = merge

    @classmethod
    def zero(cls) -> "Snapshot":
        """The merge identity."""
        return cls(0, 0, 0, 0, 0)

    @property
    def memory_traffic(self) -> int:
        return self.elements_read + self.elements_written


#: The process-wide counter block used by every set implementation.
COUNTERS = Counters()


def snapshot() -> Snapshot:
    """Capture the current global counter values."""
    return Snapshot(
        set_ops=COUNTERS.set_ops,
        point_ops=COUNTERS.point_ops,
        elements_read=COUNTERS.elements_read,
        elements_written=COUNTERS.elements_written,
        sketch_builds=COUNTERS.sketch_builds,
        words_scanned=dict(COUNTERS.words_scanned),
        payload_bytes_shipped=COUNTERS.payload_bytes_shipped,
        payload_tasks=COUNTERS.payload_tasks,
    )


def merge_snapshots(snapshots) -> Snapshot:
    """Merge an iterable of :class:`Snapshot` deltas into one total."""
    total = Snapshot.zero()
    for snap in snapshots:
        total = total.merge(snap)
    return total


def reset() -> None:
    """Zero the global counters (start of a measured region)."""
    COUNTERS.reset()

"""Density-adaptive set dispatch (SISA's organization/algorithm choice).

The static platform picks **one** set class per graph (``set_cls``) and
**one** algorithm per method.  SISA's observation — and this module's job —
is that both choices are better made later and finer:

* **organization, per neighborhood**: a dense neighborhood packs into a
  ``np.uint64`` bitmap (:mod:`repro.core.packed`) whose intersections are
  word-parallel ``AND`` + popcount; a sparse one stays a sorted array.
  :func:`choose_representation` makes the call from the density
  ``|S| / words(universe)`` — the bitmap is chosen exactly when it is no
  larger than the array it replaces (``words ≤ |S|``), which also bounds
  its scan cost by the array's.
* **algorithm, per operation**: a skewed array × array pair
  (``|large| > ratio · |small|``) is intersected by galloping binary
  probes, a balanced pair by the vectorized merge-path scan
  (:mod:`repro.core.ops`); an array × bitmap pair by ``O(|array|)``
  bitmap probes.  :func:`choose_intersect_algorithm` owns the ratio.

:class:`AdaptiveSet` packages the policy as a drop-in
:class:`~repro.core.interface.SetBase` backend (registry name
``"adaptive"``): it always keeps the canonical sorted array — so
iteration order, ``to_array``, equality, and every result are
**bit-identical** to :class:`~repro.core.sorted_set.SortedSet` — and
additionally carries the packed bitmap when the density policy says the
neighborhood is dense.  ``--dispatch adaptive`` (threaded through
``Args``/``ExperimentPlan``/``Query``) swaps any *exact* backend for this
class; sketched backends (``bloom``/``kmv``) are never swapped — their
accuracy contract is budget-tuned per graph, ProbGraph-style, and adaptive
repacking would silently change it.

Every operation records the normalized element counters plus a
``words_scanned`` attribution under the ``adaptive/<algorithm>`` keys, so
the ablation artifact can show where the cycles went.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from . import packed
from .counters import COUNTERS
from .interface import SetBase
from .ops import (
    as_sorted_unique,
    diff_merge,
    intersect_count_merge,
    intersect_merge,
    union_merge,
)
from .packed import member_mask_words

__all__ = [
    "DISPATCH_MODES",
    "GALLOP_RATIO",
    "AdaptiveSet",
    "choose_intersect_algorithm",
    "choose_representation",
]

#: The dispatch knob's values: ``static`` keeps the per-graph ``set_cls``
#: choice, ``adaptive`` swaps exact backends for :class:`AdaptiveSet`.
DISPATCH_MODES = ("static", "adaptive")

#: Gallop when ``|large| > GALLOP_RATIO * |small|`` — the probe does
#: ``|small| * log|large|`` work versus the merge's ``|small| + |large|``,
#: so the break-even ratio is ~``log|large|``; 16 is a robust static
#: stand-in for the sizes mining kernels see.
GALLOP_RATIO = 16

#: Probe small arrays regardless of skew: below this size the merge-path
#: partitioning overhead exceeds the probes.
_SMALL_PROBE_MAX = 16

#: When the probing side is this small, hashed membership (the cached
#: hash-layout organization) beats even vectorized binary search — the
#: fixed per-call cost of a numpy kernel exceeds a handful of hash probes.
_HASH_PROBE_MAX = 24

_EMPTY = np.empty(0, dtype=np.int64)


def choose_representation(cardinality: int, max_element: int) -> str:
    """``"bitmap"`` when the packed words fit within the array footprint.

    ``words(max_element) ≤ cardinality`` means the bitmap is no larger
    (one ``uint64`` word per ``int64`` element displaced) *and* a full
    bitmap scan touches no more words than an array scan — the density
    threshold at which the organization switch is a pure win.
    """
    if cardinality == 0:
        return "array"
    return ("bitmap" if packed.words_needed(max_element) <= cardinality
            else "array")


def choose_intersect_algorithm(len_a: int, len_b: int) -> str:
    """``"gallop"`` for skewed (or tiny) array pairs, ``"merge"`` else."""
    small, large = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
    if small <= _SMALL_PROBE_MAX or large > GALLOP_RATIO * small:
        return "gallop"
    return "merge"


class AdaptiveSet(SetBase):
    """Sorted array + optional packed bitmap, dispatched per operation.

    The sorted unique ``int64`` array is canonical (semantics identical to
    :class:`~repro.core.sorted_set.SortedSet`); the ``np.uint64`` bitmap
    is carried *in addition* when :func:`choose_representation` picks it,
    and operations dispatch on what both operands have:

    ========================  =============================================
    operand layouts           kernel
    ========================  =============================================
    bitmap × bitmap           word-parallel ``AND``/``OR``/``ANDNOT``
                              (+ fused popcount for ``intersect_count``)
    array × bitmap            ``O(|array|)`` bitmap probes (``diff``,
                              ``contains``; intersections gallop on the
                              always-present arrays instead)
    array × array (skewed)    galloping binary-search probes
    array × array (balanced)  vectorized merge-path scan
    ========================  =============================================

    Mutations keep both layouts coherent (copy-on-write on the bitmap, so
    ``assign``-aliased payloads can never be corrupted through a sibling)
    and drop the bitmap when shrinking breaks the density invariant.
    """

    __slots__ = ("_data", "_words", "_hash", "_list")

    IS_EXACT = True

    def __init__(self, data: Optional[np.ndarray] = None, *,
                 _trusted: bool = False):
        if data is None:
            self._data = _EMPTY
        elif _trusted:
            self._data = data
        else:
            self._data = np.unique(np.asarray(data, dtype=np.int64))
        self._words: Optional[np.ndarray] = None
        self._hash: Optional[set] = None
        self._list: Optional[list] = None
        self._repack()

    # -- layout management ----------------------------------------------
    def _repack(self) -> None:
        """(Re)build or drop the bitmap per the density policy."""
        data = self._data
        if len(data) and choose_representation(
            len(data), int(data[-1])
        ) == "bitmap":
            self._words = packed.pack_sorted(data)
        else:
            self._words = None

    def _adopt(self, data: np.ndarray,
               words: Optional[np.ndarray]) -> None:
        """Install a result payload, enforcing the density invariant."""
        self._data = data
        if words is not None and len(words) > max(1, len(data)):
            words = None  # shrunk sparse: bitmap scans would dominate
        self._words = words
        self._hash = None
        self._list = None

    def _hashed(self) -> set:
        """Lazily cached hash layout (invalidated with ``_data``).

        The cached set is never mutated in place, so aliasing it through
        ``assign``/``clone`` is as safe as aliasing ``_data`` itself.
        """
        h = self._hash
        if h is None:
            h = self._hash = set(self._data.tolist())
        return h

    def _listed(self) -> list:
        l = self._list
        if l is None:
            l = self._list = self._data.tolist()
        return l

    def representation(self) -> str:
        """The organization currently backing this set (observability)."""
        return "bitmap" if self._words is not None else "array"

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "AdaptiveSet":
        return cls(np.unique(np.fromiter(elements, dtype=np.int64)),
                   _trusted=True)

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "AdaptiveSet":
        return cls(as_sorted_unique(array), _trusted=True)

    # -- dispatched kernels ---------------------------------------------
    #
    # The intersection paths are the mining hot loop (every kclique / tc /
    # BK step lands here), so they are written for minimal per-call
    # overhead: one swap instead of min/max helpers, the gallop condition
    # inlined (same predicate as :func:`choose_intersect_algorithm`), and
    # `ndarray.searchsorted` methods instead of the `np.*` wrappers.  The
    # canonical arrays always exist, so a lone bitmap never forces the
    # O(|array|) word-probe kernel — galloping on the arrays does the same
    # job in fewer vector ops (the probe kernel still backs ``diff`` and
    # single-element ``contains``).

    def _intersect_payload(self, b: "AdaptiveSet"):
        """``(data, words)`` of ``self ∩ b`` under the dispatch policy.

        When both operands are dense the packed words come from one
        word-parallel ``AND`` — and the result keeps its bitmap, so chained
        intersections (the kclique recursion) stay on the packed path.
        """
        sa, sb = self, b
        da, db = sa._data, sb._data
        la, lb = len(da), len(db)
        if la > lb:
            sa, sb, da, db, la, lb = sb, sa, db, da, lb, la
        if la == 0:
            return _EMPTY, None
        words = None
        wa, wb = self._words, b._words
        if wa is not None and wb is not None:
            words = packed.intersect_words(wa, wb)
            COUNTERS.record_scan("adaptive/bitmap", 3 * len(words))
        if la <= _HASH_PROBE_MAX:
            COUNTERS.record_scan("adaptive/hash", la)
            h = sb._hashed()
            data = np.array([x for x in sa._listed() if x in h],
                            dtype=np.int64)
        elif lb > la * GALLOP_RATIO:
            COUNTERS.record_scan("adaptive/gallop", la * lb.bit_length())
            data = da[db.searchsorted(da, "left")
                      != db.searchsorted(da, "right")]
        else:
            COUNTERS.record_scan("adaptive/merge", la + lb)
            data = intersect_merge(da, db)
        return data, words

    def intersect(self, other: SetBase) -> "AdaptiveSet":
        b = self._coerce(other)
        COUNTERS.record_bulk(len(self._data) + len(b._data), 0)
        data, words = self._intersect_payload(b)
        COUNTERS.elements_written += len(data)
        out = AdaptiveSet.__new__(AdaptiveSet)
        out._adopt(data, words)
        return out

    def intersect_count(self, other: SetBase) -> int:
        b = self._coerce(other)
        sa, sb = self, b
        da, db = sa._data, sb._data
        la, lb = len(da), len(db)
        COUNTERS.record_bulk(la + lb, 0)
        if la > lb:
            sa, sb, da, db, la, lb = sb, sa, db, da, lb, la
        if la == 0:
            return 0
        wa, wb = self._words, b._words
        if wa is not None and wb is not None:
            COUNTERS.record_scan("adaptive/bitmap",
                                 2 * min(len(wa), len(wb)))
            return packed.intersect_count_words(wa, wb)
        if la <= _HASH_PROBE_MAX:
            COUNTERS.record_scan("adaptive/hash", la)
            h = sb._hashed()
            return sum(x in h for x in sa._listed())
        if lb > la * GALLOP_RATIO:
            COUNTERS.record_scan("adaptive/gallop", la * lb.bit_length())
            return int(np.count_nonzero(
                db.searchsorted(da, "left") != db.searchsorted(da, "right")
            ))
        COUNTERS.record_scan("adaptive/merge", la + lb)
        return intersect_count_merge(da, db)

    def intersect_inplace(self, other: SetBase) -> None:
        b = self._coerce(other)
        COUNTERS.record_bulk(len(self._data) + len(b._data), 0)
        data, words = self._intersect_payload(b)
        COUNTERS.elements_written += len(data)
        self._adopt(data, words)

    def intersect_assign(self, a: SetBase, b: SetBase) -> None:
        # Fused A = a ∩ b: one dispatched kernel, no intermediate copy.
        ca, cb = self._coerce(a), self._coerce(b)
        COUNTERS.record_bulk(len(ca._data) + len(cb._data), 0)
        data, words = ca._intersect_payload(cb)
        COUNTERS.elements_written += len(data)
        self._adopt(data, words)

    def union(self, other: SetBase) -> "AdaptiveSet":
        b = self._coerce(other)
        a_data, b_data = self._data, b._data
        a_words, b_words = self._words, b._words
        if a_words is not None and b_words is not None:
            words = packed.union_words(a_words, b_words)
            COUNTERS.record_scan("adaptive/bitmap",
                                 2 * len(words) + len(words))
            data = packed.unpack(words)
        else:
            COUNTERS.record_scan("adaptive/merge",
                                 len(a_data) + len(b_data))
            data, words = union_merge(a_data, b_data), None
        COUNTERS.record_bulk(len(a_data) + len(b_data), len(data))
        out = AdaptiveSet.__new__(AdaptiveSet)
        out._adopt(data, words)
        if words is None:
            out._repack()  # a union can cross the density threshold
        return out

    def diff(self, other: SetBase) -> "AdaptiveSet":
        b = self._coerce(other)
        a_data, b_data = self._data, b._data
        a_words, b_words = self._words, b._words
        if len(a_data) == 0 or len(b_data) == 0:
            data, words = a_data.copy(), None
        elif a_words is not None and b_words is not None:
            words = packed.diff_words(a_words, b_words)
            COUNTERS.record_scan("adaptive/bitmap",
                                 2 * len(words) + len(words))
            data = packed.unpack(words)
        elif b_words is not None:
            COUNTERS.record_scan("adaptive/probe", len(a_data))
            data, words = (
                a_data[~member_mask_words(b_words, a_data)], None
            )
        else:
            COUNTERS.record_scan("adaptive/merge",
                                 len(a_data) + len(b_data))
            data, words = diff_merge(a_data, b_data), None
        COUNTERS.record_bulk(len(a_data) + len(b_data), len(data))
        out = AdaptiveSet.__new__(AdaptiveSet)
        out._adopt(data, words)
        return out

    # -- point operations -------------------------------------------------
    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        words = self._words
        if words is not None:
            if 0 <= element < len(words) * packed.WORD_BITS:
                return bool(
                    (int(words[element >> 6]) >> (element & 63)) & 1
                )
            return False
        data = self._data
        idx = np.searchsorted(data, element)
        return bool(idx < len(data) and data[idx] == element)

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        data = self._data
        idx = int(np.searchsorted(data, element))
        if idx < len(data) and data[idx] == element:
            return
        self._data = np.insert(data, idx, element)
        COUNTERS.elements_written += 1
        self._hash = None
        self._list = None
        words = self._words
        if words is not None and 0 <= element < len(words) * packed.WORD_BITS:
            words = words.copy()  # COW: assign() aliases payloads
            words[element >> 6] |= np.uint64(1 << (element & 63))
            self._words = words
        else:
            self._repack()

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        data = self._data
        idx = int(np.searchsorted(data, element))
        if not (idx < len(data) and data[idx] == element):
            return
        self._data = np.delete(data, idx)
        COUNTERS.elements_written += 1
        self._hash = None
        self._list = None
        words = self._words
        if words is not None:
            words = words.copy()  # COW: assign() aliases payloads
            words[element >> 6] &= np.uint64(
                ~np.uint64(1 << (element & 63))
            )
            self._adopt(self._data, words)

    def cardinality(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data.tolist())

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        return self._data.copy()

    def clone(self) -> "AdaptiveSet":
        out = AdaptiveSet.__new__(AdaptiveSet)
        out._data = self._data.copy()
        out._words = None if self._words is None else self._words.copy()
        out._hash = self._hash  # never mutated in place; see _hashed
        out._list = self._list
        return out

    def _replace_with(self, other: SetBase) -> None:
        o = self._coerce(other)
        # Aliasing is safe: arrays are rebound (never mutated in place),
        # bitmap mutations are copy-on-write, and the hash/list caches are
        # rebuilt rather than updated.
        self._data = o._data
        self._words = o._words
        self._hash = o._hash
        self._list = o._list

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AdaptiveSet):
            return bool(np.array_equal(self._data, other._data))
        return super().__eq__(other)

    __hash__ = SetBase.__hash__

    # -- storage accounting ------------------------------------------------
    def storage_bytes(self) -> int:
        """Array footprint plus the resident bitmap, if any."""
        total = self._data.nbytes
        if self._words is not None:
            total += self._words.nbytes
        return total

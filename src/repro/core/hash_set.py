"""HashSet — hash-table set representation (paper section 5.2).

The C++ platform uses the Robin Hood hashing library; the closest
production-quality stand-in in Python is the built-in ``set``, which is an
open-addressing hash table implemented in C.  Hash sets give O(1) point
operations but unordered storage, so bulk operations pay a sort when a
sorted array is requested — the same trade-off as in the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .counters import COUNTERS
from .interface import SetBase

__all__ = ["HashSet"]


class HashSet(SetBase):
    """A set stored in an open-addressing hash table."""

    __slots__ = ("_data",)

    def __init__(self, data: set | None = None):
        self._data: set = data if data is not None else set()

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "HashSet":
        return cls({int(e) for e in elements})

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "HashSet":
        return cls(set(np.asarray(array, dtype=np.int64).tolist()))

    # -- core algebra ---------------------------------------------------
    def intersect(self, other: SetBase) -> "HashSet":
        b = self._coerce(other)
        out = self._data & b._data
        COUNTERS.record_bulk(len(self._data) + len(b._data), len(out))
        return HashSet(out)

    def intersect_count(self, other: SetBase) -> int:
        b = self._coerce(other)
        COUNTERS.record_bulk(len(self._data) + len(b._data), 0)
        small, large = (
            (self._data, b._data)
            if len(self._data) <= len(b._data)
            else (b._data, self._data)
        )
        return sum(1 for e in small if e in large)

    def union(self, other: SetBase) -> "HashSet":
        b = self._coerce(other)
        out = self._data | b._data
        COUNTERS.record_bulk(len(self._data) + len(b._data), len(out))
        return HashSet(out)

    def diff(self, other: SetBase) -> "HashSet":
        b = self._coerce(other)
        out = self._data - b._data
        COUNTERS.record_bulk(len(self._data) + len(b._data), len(out))
        return HashSet(out)

    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        return element in self._data

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        element = int(element)
        if element not in self._data:
            self._data.add(element)
            COUNTERS.elements_written += 1

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        element = int(element)
        if element in self._data:
            self._data.discard(element)
            COUNTERS.elements_written += 1

    def cardinality(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._data))

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        if not self._data:
            return np.empty(0, dtype=np.int64)
        arr = np.fromiter(self._data, dtype=np.int64, count=len(self._data))
        arr.sort()
        return arr

    def clone(self) -> "HashSet":
        return HashSet(set(self._data))

    def _replace_with(self, other: SetBase) -> None:
        self._data = self._coerce(other)._data

    def __eq__(self, other: object) -> bool:
        if isinstance(other, HashSet):
            return self._data == other._data
        return super().__eq__(other)

    __hash__ = SetBase.__hash__

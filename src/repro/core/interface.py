"""The GMS set-algebra interface (paper section 5.1, Listing 1).

The ``Set`` interface is the central modularity device of GraphMineSuite:
graph mining algorithms are written against this interface, and any concrete
set representation (sorted array, dense bitvector, roaring bitmap, hash
table) can be plugged in without touching algorithm code — the paper's
``5+`` modularity level.

The Python rendering below keeps the exact method surface of Listing 1:

===========================  =============================================
Listing 1 (C++)              This module
===========================  =============================================
``diff`` / ``diff_inplace``  :meth:`SetBase.diff` / :meth:`SetBase.diff_inplace`
``intersect`` (+ ``_count``  :meth:`SetBase.intersect`,
/ ``_inplace``)              :meth:`SetBase.intersect_count`,
                             :meth:`SetBase.intersect_inplace`
``union`` (+ ``_count`` /    :meth:`SetBase.union`, :meth:`SetBase.union_count`,
``_inplace``)                :meth:`SetBase.union_inplace`
``contains``                 :meth:`SetBase.contains` (and ``in``)
``add`` / ``remove``         :meth:`SetBase.add` / :meth:`SetBase.remove`
``cardinality``              :meth:`SetBase.cardinality` (and ``len``)
``Range``                    :meth:`SetBase.range`
``clone``                    :meth:`SetBase.clone`
``toArray``                  :meth:`SetBase.to_array`
``begin``/``end`` iterators  :meth:`SetBase.__iter__`
``operator==`` / ``!=``      :meth:`SetBase.__eq__`
===========================  =============================================

Set elements are vertex IDs, i.e. non-negative integers (``GMS::NodeId``).
Binary operations accept a set of the *same* concrete class (the fast path)
or of any other class, in which case the argument is converted first — this
keeps mixed-representation experiments possible, exactly like the C++
platform's implicit conversions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

__all__ = ["SetBase"]


class SetBase(ABC):
    """Abstract base for all GMS set representations.

    Concrete subclasses must implement the small kernel of abstract methods;
    everything else has a generic (representation-independent) default that
    subclasses override when a faster native routine exists.
    """

    __slots__ = ()

    #: Whether every operation returns exact results.  Probabilistic
    #: representations (:mod:`repro.approx`) set this to ``False``; they
    #: still keep an exact member store (iteration, ``cardinality``,
    #: ``to_array`` and equality stay exact) but their membership probes
    #: and ``*_count`` methods are sketch estimators with one-sided or
    #: bounded error.  Test matrices branch on this flag: exact classes get
    #: strict equality checks, approximate ones containment/bound checks.
    IS_EXACT = True

    # ------------------------------------------------------------------
    # Constructors (Listing 1, part 2)
    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def from_iterable(cls, elements: Iterable[int]) -> "SetBase":
        """Build a set from arbitrary (possibly unsorted) elements."""

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "SetBase":
        """Build a set from a sorted, duplicate-free integer array.

        This is the fast path used when neighborhoods are loaded out of a
        CSR representation; the default simply defers to
        :meth:`from_iterable`.
        """
        return cls.from_iterable(array)

    @classmethod
    def empty(cls) -> "SetBase":
        """Return the empty set — ``Set()`` in Listing 1."""
        return cls.from_iterable(())

    @classmethod
    def single(cls, element: int) -> "SetBase":
        """Return the single-element set ``{element}``."""
        return cls.from_iterable((element,))

    @classmethod
    def range(cls, bound: int) -> "SetBase":
        """Return ``{0, 1, ..., bound - 1}`` — ``Set::Range`` in Listing 1."""
        return cls.from_sorted_array(np.arange(bound, dtype=np.int64))

    # ------------------------------------------------------------------
    # Core set-algebra methods (Listing 1, part 1)
    # ------------------------------------------------------------------
    @abstractmethod
    def intersect(self, other: "SetBase") -> "SetBase":
        """Return a new set ``A ∩ B``."""

    @abstractmethod
    def union(self, other: "SetBase") -> "SetBase":
        """Return a new set ``A ∪ B``."""

    @abstractmethod
    def diff(self, other: "SetBase") -> "SetBase":
        """Return a new set ``A \\ B``."""

    @abstractmethod
    def contains(self, element: int) -> bool:
        """Return whether ``element ∈ A``."""

    @abstractmethod
    def add(self, element: int) -> None:
        """Update ``A = A ∪ {element}`` in place."""

    @abstractmethod
    def remove(self, element: int) -> None:
        """Update ``A = A \\ {element}`` in place (no-op when absent)."""

    @abstractmethod
    def cardinality(self) -> int:
        """Return ``|A|``."""

    @abstractmethod
    def __iter__(self) -> Iterator[int]:
        """Iterate elements in ascending order."""

    # -- count variants: avoid materializing the result (paper section 5.1)
    def intersect_count(self, other: "SetBase") -> int:
        """Return ``|A ∩ B|`` without building the intersection."""
        return self.intersect(other).cardinality()

    def union_count(self, other: "SetBase") -> int:
        """Return ``|A ∪ B|`` without building the union."""
        return self.union(other).cardinality()

    def diff_count(self, other: "SetBase") -> int:
        """Return ``|A \\ B|`` without building the difference."""
        return self.diff(other).cardinality()

    # -- in-place variants: avoid excessive data copying (paper section 5.1)
    def intersect_inplace(self, other: "SetBase") -> None:
        """Update ``A = A ∩ B``."""
        self._replace_with(self.intersect(other))

    def union_inplace(self, other: "SetBase") -> None:
        """Update ``A = A ∪ B``."""
        self._replace_with(self.union(other))

    def diff_inplace(self, other: "SetBase") -> None:
        """Update ``A = A \\ B``."""
        self._replace_with(self.diff(other))

    def intersect_assign(self, a: "SetBase", b: "SetBase") -> None:
        """Update ``self = a ∩ b`` — the fused form of
        ``assign(a); intersect_inplace(b)``.

        The kClist-style kernels refill a per-level scratch set from the
        parent candidates and immediately shrink it against a neighborhood;
        fusing the two steps lets backends skip materializing the
        intermediate copy of ``a``.  The default is the unfused pair, so
        the fusion is purely an optimization hook — counter recording and
        results are identical either way.
        """
        self.assign(a)
        self.intersect_inplace(b)

    def diff_element(self, element: int) -> "SetBase":
        """Return a new set ``A \\ {element}`` (Listing 1 overload)."""
        result = self.clone()
        result.remove(element)
        return result

    def union_element(self, element: int) -> "SetBase":
        """Return a new set ``A ∪ {element}`` (Listing 1 overload)."""
        result = self.clone()
        result.add(element)
        return result

    def assign(self, other: "SetBase") -> None:
        """Overwrite this set's contents with *other*'s (``A = B``).

        The buffer-reuse primitive of the kClist-style kernels: a
        per-recursion-level scratch set is ``assign``-ed from the parent
        candidates and then shrunk with :meth:`intersect_inplace`, so the
        live memory stays bounded by ``Σ_i |C_i|`` instead of allocating a
        fresh set per visited candidate.
        """
        self._replace_with(self._coerce(other))

    @abstractmethod
    def _replace_with(self, other: "SetBase") -> None:
        """Overwrite this set's payload with *other*'s (same class)."""

    # ------------------------------------------------------------------
    # Other methods (Listing 1, part 3)
    # ------------------------------------------------------------------
    def clone(self) -> "SetBase":
        """Return a deep copy (copy constructors are disabled, like in GMS)."""
        return type(self).from_sorted_array(self.to_array())

    def to_array(self) -> np.ndarray:
        """Return the elements as a sorted ``int64`` numpy array."""
        return np.fromiter(self, dtype=np.int64, count=self.cardinality())

    def is_empty(self) -> bool:
        """Return whether the set has no elements."""
        return self.cardinality() == 0

    # ------------------------------------------------------------------
    # Python protocol sugar
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.cardinality()

    def __contains__(self, element: int) -> bool:
        return self.contains(int(element))

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetBase):
            return NotImplemented
        if self.cardinality() != other.cardinality():
            return False
        return bool(np.array_equal(self.to_array(), other.to_array()))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # sets are mutable; identity hash like C++
        return id(self)

    def __and__(self, other: "SetBase") -> "SetBase":
        return self.intersect(other)

    def __or__(self, other: "SetBase") -> "SetBase":
        return self.union(other)

    def __sub__(self, other: "SetBase") -> "SetBase":
        return self.diff(other)

    def __repr__(self) -> str:
        preview = list(self)
        if len(preview) > 8:
            shown = ", ".join(str(x) for x in preview[:8])
            return f"{type(self).__name__}({{{shown}, ...}}, n={len(preview)})"
        shown = ", ".join(str(x) for x in preview)
        return f"{type(self).__name__}({{{shown}}})"

    # ------------------------------------------------------------------
    # Mixed-representation support
    # ------------------------------------------------------------------
    def _coerce(self, other: "SetBase") -> "SetBase":
        """Convert *other* to this set's class when classes differ."""
        if type(other) is type(self):
            return other
        return type(self).from_sorted_array(other.to_array())

"""Explicit set-algorithm kernels (paper sections 5.2 and 6.5).

A single set *operation* (e.g. ``A ∩ B``) can be realized by different set
*algorithms*.  The paper's vertex-similarity use case exposes two of them —

* **merge**: simultaneous scan of two sorted arrays, ``O(|A| + |B|)``;
* **galloping**: for each element of the smaller set, binary-search the
  larger one, ``O(|A| log |B|)`` — preferable when ``|A| ≪ |B|``;

plus a bitvector probe (``O(|A|)`` when one operand is a bitmap).  These
kernels operate on raw sorted numpy arrays so the ablation benchmark can
time the algorithms themselves, independent of any Set class.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "intersect_merge",
    "intersect_galloping",
    "intersect_count_merge",
    "intersect_count_galloping",
    "union_merge",
    "diff_merge",
]


def intersect_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-intersect two sorted unique arrays in ``O(|a| + |b|)``."""
    return np.intersect1d(a, b, assume_unique=True)


def intersect_galloping(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Galloping intersection: binary-search each element of the smaller set.

    Runs in ``O(|small| log |large|)``; the winner when one operand is much
    smaller than the other (section 6.5).
    """
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return np.empty(0, dtype=small.dtype)
    idx = np.searchsorted(large, small)
    idx[idx == len(large)] = len(large) - 1
    return small[large[idx] == small]


def intersect_count_merge(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` via merging."""
    return len(intersect_merge(a, b))


def intersect_count_galloping(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` via galloping."""
    return len(intersect_galloping(a, b))


def union_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-union of two sorted unique arrays."""
    return np.union1d(a, b)


def diff_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-difference ``a \\ b`` of two sorted unique arrays."""
    return np.setdiff1d(a, b, assume_unique=True)

"""Explicit set-algorithm kernels (paper sections 5.2 and 6.5).

A single set *operation* (e.g. ``A ∩ B``) can be realized by different set
*algorithms*.  The paper's vertex-similarity use case exposes two of them —

* **merge**: simultaneous scan of two sorted arrays.  Realized here as a
  vectorized *merge-path*: two binary-search partitions position every
  element of ``A`` and ``B`` in the merged order, then one linear scatter +
  adjacent-compare pass extracts the result — ``O(|A| + |B|)`` memory
  traffic, no concatenate-and-re-sort (the previous delegation to
  ``np.intersect1d``/``union1d``/``setdiff1d`` paid an ``O((|A| + |B|)
  log(|A| + |B|))`` global sort that ignored the operands' sortedness);
* **galloping**: for each element of the smaller set, binary-search the
  larger one, ``O(|small| log |large|)`` — preferable when ``|A| ≪ |B|``;

plus a bitvector probe (:mod:`repro.core.packed`, ``O(|A|)`` when one
operand is a packed-word bitmap).  These kernels operate on raw sorted
unique numpy arrays so the ablation benchmark can time the algorithms
themselves, independent of any Set class.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_sorted_unique",
    "intersect_merge",
    "intersect_galloping",
    "intersect_count_merge",
    "intersect_count_galloping",
    "union_merge",
    "diff_merge",
    "member_mask_merge",
    "member_mask_galloping",
]

_EMPTY = np.empty(0, dtype=np.int64)


def as_sorted_unique(array: np.ndarray) -> np.ndarray:
    """Validate-or-sort an array into the sorted-unique ``int64`` contract.

    Cheap ``O(n)`` validation when the input already satisfies the
    contract (the common CSR fast path); otherwise one ``np.unique``.
    Shared by the ``from_sorted_array`` constructors so an unsorted or
    duplicated input can never silently build a corrupt set.
    """
    arr = np.asarray(array, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if len(arr) > 1 and not (arr[1:] > arr[:-1]).all():
        arr = np.unique(arr)
    return arr


def _merge_member_mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Membership of each ``a[i]`` in ``b`` via one merge-path pass.

    Both operands are scanned in full (``O(|a| + |b|)`` traffic): the two
    ``searchsorted`` partitions place every element in the merged order,
    the scatter materializes that order, and an element of ``a`` is a
    member of ``b`` exactly when its merged successor equals it (stable
    order puts the ``a`` copy first).
    """
    n, m = len(a), len(b)
    pa = np.arange(n, dtype=np.int64) + np.searchsorted(b, a, side="left")
    pb = np.arange(m, dtype=np.int64) + np.searchsorted(a, b, side="right")
    merged = np.empty(n + m, dtype=np.int64)
    merged[pa] = a
    merged[pb] = b
    successor = np.minimum(pa + 1, n + m - 1)
    return (pa + 1 < n + m) & (merged[successor] == a)


def member_mask_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask: which elements of sorted-unique ``a`` are in ``b``."""
    if len(a) == 0 or len(b) == 0:
        return np.zeros(len(a), dtype=bool)
    return _merge_member_mask(a, b)


def member_mask_galloping(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask via binary-search probes of ``a``'s elements into ``b``.

    ``a[i] ∈ b`` exactly when the left and right insertion points differ
    (``b`` is unique, so the gap is 0 or 1) — two vectorized searches and
    one compare, with no bounds fix-up pass.
    """
    if len(a) == 0 or len(b) == 0:
        return np.zeros(len(a), dtype=bool)
    b = np.asarray(b)
    return b.searchsorted(a, "left") != b.searchsorted(a, "right")


def intersect_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-intersect two sorted unique arrays in ``O(|a| + |b|)``."""
    if len(a) == 0 or len(b) == 0:
        return _EMPTY
    return np.asarray(a, dtype=np.int64)[_merge_member_mask(a, b)]


def intersect_galloping(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Galloping intersection: binary-search each element of the smaller set.

    Runs in ``O(|small| log |large|)``; the winner when one operand is much
    smaller than the other (section 6.5).
    """
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return np.empty(0, dtype=small.dtype)
    return small[member_mask_galloping(small, large)]


def intersect_count_merge(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` via merging."""
    if len(a) == 0 or len(b) == 0:
        return 0
    return int(np.count_nonzero(_merge_member_mask(a, b)))


def intersect_count_galloping(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` via galloping."""
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return 0
    return int(np.count_nonzero(member_mask_galloping(small, large)))


def union_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-union of two sorted unique arrays in ``O(|a| + |b|)``.

    Merge-path scatter into the merged order, then one adjacent-compare
    pass drops the duplicated elements of ``a ∩ b``.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    n, m = len(a), len(b)
    if n == 0:
        return b.copy()
    if m == 0:
        return a.copy()
    pa = np.arange(n, dtype=np.int64) + np.searchsorted(b, a, side="left")
    pb = np.arange(m, dtype=np.int64) + np.searchsorted(a, b, side="right")
    merged = np.empty(n + m, dtype=np.int64)
    merged[pa] = a
    merged[pb] = b
    keep = np.empty(n + m, dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


def diff_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-difference ``a \\ b`` of two sorted unique arrays,
    ``O(|a| + |b|)``."""
    if len(a) == 0:
        return _EMPTY
    if len(b) == 0:
        return np.asarray(a, dtype=np.int64).copy()
    return np.asarray(a, dtype=np.int64)[~_merge_member_mask(a, b)]

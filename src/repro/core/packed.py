"""Vectorized bitmap kernels over packed ``np.uint64`` words.

SISA's dense set organization: a neighborhood over universe ``{0..U-1}``
packs into ``⌈U/64⌉`` machine words, and intersection/difference/count
become word-parallel ``AND``/``ANDNOT``/popcount loops.  The big-int
:class:`~repro.core.bit_set.BitSet` realizes the same idea through CPython
limb arithmetic; these kernels are the *array* form — operating directly
on ``np.uint64`` buffers so the adaptive dispatch layer
(:mod:`repro.core.dispatch`) can mix them with sorted-array kernels
without crossing into Python integers and back.

All kernels treat a word array of length ``W`` as the set of bit positions
``{64·i + j : words[i] >> j & 1}``; trailing zero words are harmless, so
operands of different lengths compose by truncation (AND) or zero-extension
(OR/ANDNOT).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_needed",
    "pack_sorted",
    "unpack",
    "popcount",
    "intersect_words",
    "intersect_count_words",
    "union_words",
    "diff_words",
    "member_mask_words",
]

WORD_BITS = 64

_ONE = np.uint64(1)
_EMPTY_WORDS = np.empty(0, dtype=np.uint64)

# numpy >= 2.0 has a native vectorized popcount; keep an 8-bit-LUT
# fallback so the kernels stay importable on older runtimes.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint64)


def words_needed(max_element: int) -> int:
    """Number of 64-bit words covering ``{0..max_element}``."""
    return (int(max_element) >> 6) + 1


def pack_sorted(arr: np.ndarray, n_words: int | None = None) -> np.ndarray:
    """Pack a sorted unique non-negative ``int64`` array into words."""
    if len(arr) == 0:
        return (np.zeros(n_words, dtype=np.uint64)
                if n_words else _EMPTY_WORDS.copy())
    if n_words is None:
        n_words = words_needed(int(arr[-1]))
    bits = np.zeros(n_words * WORD_BITS, dtype=bool)
    bits[arr] = True
    return np.packbits(bits, bitorder="little").view(np.uint64)


def unpack(words: np.ndarray) -> np.ndarray:
    """Unpack words back into a sorted unique ``int64`` array."""
    if len(words) == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.nonzero(bits)[0].astype(np.int64)


if _HAS_BITWISE_COUNT:
    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across the word array."""
        return int(np.bitwise_count(words).sum())
else:
    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across the word array (LUT fallback)."""
        return int(_POPCOUNT8[words.view(np.uint8)].sum())


def intersect_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-parallel ``AND`` — truncates to the shorter operand."""
    m = min(len(a), len(b))
    return a[:m] & b[:m]


def intersect_count_words(a: np.ndarray, b: np.ndarray) -> int:
    """``|A ∩ B|`` without materializing: fused ``AND`` + popcount."""
    m = min(len(a), len(b))
    return popcount(a[:m] & b[:m])


def union_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-parallel ``OR`` — zero-extends to the longer operand."""
    if len(a) < len(b):
        a, b = b, a
    out = a.copy()
    np.bitwise_or(out[: len(b)], b, out=out[: len(b)])
    return out


def diff_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-parallel ``ANDNOT`` (``A \\ B``); ``b`` zero-extends."""
    out = a.copy()
    m = min(len(a), len(b))
    np.bitwise_and(out[:m], np.bitwise_not(b[:m]), out=out[:m])
    return out


def member_mask_words(words: np.ndarray, arr: np.ndarray) -> np.ndarray:
    """Boolean membership of each ``arr[i]`` in the packed bitmap.

    ``O(|arr|)`` random-access probes — the bitvector-probe algorithm the
    ops module's docstring promises for array × bitmap operand pairs.
    """
    if len(arr) == 0 or len(words) == 0:
        return np.zeros(len(arr), dtype=bool)
    idx = arr >> 6
    shift = (arr & 63).astype(np.uint64)
    if int(idx[-1]) < len(words):  # sorted input: last element is max
        probed = words[idx]
    else:
        valid = idx < len(words)
        out = np.zeros(len(arr), dtype=bool)
        out[valid] = (
            (words[idx[valid]] >> shift[valid]) & _ONE
        ).astype(bool)
        return out
    return ((probed >> shift) & _ONE).astype(bool)

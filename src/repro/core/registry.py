"""Name → set-class registry (the ``5+`` modularity hook).

Benchmarks and the CLI select set representations by name, exactly like the
C++ platform selects them via template parameters.  User-defined set classes
can be registered with :func:`register_set_class`.
"""

from __future__ import annotations

from typing import Dict, Type

from .bit_set import BitSet
from .compressed_set import CompressedSortedSet
from .hash_set import HashSet
from .interface import SetBase
from .roaring import RoaringSet
from .sorted_set import SortedSet

__all__ = ["SET_CLASSES", "get_set_class", "register_set_class"]

SET_CLASSES: Dict[str, Type[SetBase]] = {
    "sorted": SortedSet,
    "bitset": BitSet,
    "roaring": RoaringSet,
    "hash": HashSet,
    "compressed": CompressedSortedSet,
}


def get_set_class(name: str) -> Type[SetBase]:
    """Look up a set representation by its registry name."""
    try:
        return SET_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(SET_CLASSES))
        raise KeyError(f"unknown set class {name!r}; known: {known}") from None


def register_set_class(name: str, cls: Type[SetBase]) -> None:
    """Register a user-provided set representation under *name*."""
    if not (isinstance(cls, type) and issubclass(cls, SetBase)):
        raise TypeError("set classes must subclass SetBase")
    SET_CLASSES[name] = cls

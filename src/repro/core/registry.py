"""Name → set-class registry (the ``5+`` modularity hook).

Benchmarks and the CLI select set representations by name, exactly like the
C++ platform selects them via template parameters.  User-defined set classes
can be registered with :func:`register_set_class`.

Besides the five exact representations, the registry exposes the
probabilistic backends of :mod:`repro.approx` — ``"bloom"``
(:class:`~repro.approx.bloom.BloomFilterSet`) and ``"kmv"``
(:class:`~repro.approx.kmv.KMVSketchSet`) — imported at the bottom of this
module, after the registry machinery exists, to keep the import graph
acyclic.  Test suites should
derive their representation matrix from :data:`SET_CLASSES` (and branch on
``cls.IS_EXACT``) rather than hardcoding class lists, so newly registered
backends are covered automatically.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .bit_set import BitSet
from .compressed_set import CompressedSortedSet
from .hash_set import HashSet
from .interface import SetBase
from .roaring import RoaringSet
from .sorted_set import SortedSet

__all__ = [
    "SET_CLASSES",
    "get_set_class",
    "register_set_class",
    "registered_set_classes",
]

SET_CLASSES: Dict[str, Type[SetBase]] = {
    "sorted": SortedSet,
    "bitset": BitSet,
    "roaring": RoaringSet,
    "hash": HashSet,
    "compressed": CompressedSortedSet,
}


def get_set_class(name: str) -> Type[SetBase]:
    """Look up a set representation by its registry name."""
    try:
        return SET_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(SET_CLASSES))
        raise KeyError(f"unknown set class {name!r}; known: {known}") from None


def registered_set_classes() -> List[Type[SetBase]]:
    """Return the registered classes, deduplicated, in registration order.

    This is the canonical way for test matrices and benchmarks to derive
    the representation sweep (several names may map to one class).
    """
    return list(dict.fromkeys(SET_CLASSES.values()))


def register_set_class(name: str, cls: Type[SetBase]) -> None:
    """Register a user-provided set representation under *name*."""
    if not (isinstance(cls, type) and issubclass(cls, SetBase)):
        raise TypeError("set classes must subclass SetBase")
    SET_CLASSES[name] = cls


# Imported last, once the registry machinery exists, so the probabilistic
# backends can self-register as "bloom"/"kmv".  During a circular import
# (repro.approx imported first) this returns the partially-initialized
# module from sys.modules and registration completes when that module's own
# body finishes.
import repro.approx  # noqa: E402,F401

"""Name → set-class registry (the ``5+`` modularity hook).

Benchmarks and the CLI select set representations by name, exactly like the
C++ platform selects them via template parameters.  User-defined set classes
can be registered with :func:`register_set_class`.

Besides the five exact representations, the registry exposes the
probabilistic backends of :mod:`repro.approx` — ``"bloom"``
(:class:`~repro.approx.bloom.BloomFilterSet`) and ``"kmv"``
(:class:`~repro.approx.kmv.KMVSketchSet`).  Their registration is *lazy*:
:mod:`repro.approx` is imported on the first **read** of the registry —
any :data:`SET_CLASSES` lookup, membership test, or iteration (and hence
:func:`get_set_class`, :func:`registered_set_classes`,
:func:`set_class_names`) — so this module never imports the backends at
body time and the import graph stays acyclic without ordering constraints.
Test suites should derive their representation matrix from
:func:`registered_set_classes` (and branch on ``cls.IS_EXACT``) rather than
hardcoding class lists, so newly registered backends are covered
automatically.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .bit_set import BitSet
from .compressed_set import CompressedSortedSet
from .dispatch import AdaptiveSet
from .hash_set import HashSet
from .interface import SetBase
from .roaring import RoaringSet
from .sorted_set import SortedSet

__all__ = [
    "SET_CLASSES",
    "get_set_class",
    "register_set_class",
    "registered_set_classes",
    "set_class_names",
]

_lazy_backends_loaded = False


def _ensure_lazy_backends() -> None:
    """Import :mod:`repro.approx` once so ``"bloom"``/``"kmv"`` self-register.

    Idempotent and cycle-safe: the flag is set *before* the import, so a
    re-entrant call during the package's own body (which imports this
    module first) is a no-op.
    """
    global _lazy_backends_loaded
    if _lazy_backends_loaded:
        return
    _lazy_backends_loaded = True
    import repro.approx  # noqa: F401  (self-registers on import)


class _LazySetClassRegistry(Dict[str, Type[SetBase]]):
    """Registry dict that loads the lazy backends on first *read*.

    Importing this module does not import :mod:`repro.approx`; any lookup,
    membership test, or iteration over the registry does — so consumers
    that read :data:`SET_CLASSES` directly (CLI ``choices``, test
    matrices) see ``"bloom"``/``"kmv"`` exactly as they did when the
    backends were registered eagerly.  Writes never trigger the load
    (``register_set_class`` during the backends' own import must not
    recurse).
    """

    def __getitem__(self, key: str) -> Type[SetBase]:
        if not super().__contains__(key):
            _ensure_lazy_backends()
        return super().__getitem__(key)

    def __contains__(self, key: object) -> bool:
        _ensure_lazy_backends()
        return super().__contains__(key)

    def __iter__(self):
        _ensure_lazy_backends()
        return super().__iter__()

    def __len__(self) -> int:
        _ensure_lazy_backends()
        return super().__len__()

    def keys(self):
        _ensure_lazy_backends()
        return super().keys()

    def values(self):
        _ensure_lazy_backends()
        return super().values()

    def items(self):
        _ensure_lazy_backends()
        return super().items()

    def get(self, key, default=None):
        _ensure_lazy_backends()
        return super().get(key, default)


SET_CLASSES: Dict[str, Type[SetBase]] = _LazySetClassRegistry(
    sorted=SortedSet,
    bitset=BitSet,
    roaring=RoaringSet,
    hash=HashSet,
    compressed=CompressedSortedSet,
    adaptive=AdaptiveSet,
)


def get_set_class(name: str) -> Type[SetBase]:
    """Look up a set representation by its registry name."""
    try:
        return SET_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(SET_CLASSES))
        raise KeyError(f"unknown set class {name!r}; known: {known}") from None


def registered_set_classes() -> List[Type[SetBase]]:
    """Return the registered classes, deduplicated, in registration order.

    This is the canonical way for test matrices and benchmarks to derive
    the representation sweep (several names may map to one class).
    """
    return list(dict.fromkeys(SET_CLASSES.values()))


def set_class_names() -> List[str]:
    """Sorted registry names, including the lazily-registered backends."""
    return sorted(SET_CLASSES)


def register_set_class(name: str, cls: Type[SetBase]) -> None:
    """Register a user-provided set representation under *name*."""
    if not (isinstance(cls, type) and issubclass(cls, SetBase)):
        raise TypeError("set classes must subclass SetBase")
    SET_CLASSES[name] = cls

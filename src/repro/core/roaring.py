"""RoaringSet — compressed roaring-bitmap set representation.

The paper's fastest Bron–Kerbosch variants represent the ``P``/``X``/``R``
sets and the graph neighborhoods with *roaring bitmaps* (section 5.2,
section 6.2): a compressed bitmap that partitions the universe into 2^16-wide
chunks and stores each chunk with whichever of three container types is
smallest —

* **array container**: a sorted array of 16-bit low halves (≤ 4096 elements),
* **bitmap container**: a dense 65536-bit bitvector (> 4096 elements),
* **run container**: a list of ``(start, length)`` runs (produced by
  :meth:`RoaringSet.run_optimize`, mirroring CRoaring's ``runOptimize``).

This is a from-scratch pure-Python reproduction of that structure with the
standard 4096-element array/bitmap threshold.  Bulk operations dispatch on
the container-type pair, so dense×dense chunks use word-parallel big-int
bitwise ops while sparse×sparse chunks use sorted-array merges — the same
adaptivity that makes roaring fast in the C++ platform.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from .counters import COUNTERS
from .interface import SetBase
from .ops import as_sorted_unique

__all__ = ["RoaringSet", "ARRAY_CONTAINER_MAX"]

#: Maximum cardinality of an array container (the standard roaring cutoff).
ARRAY_CONTAINER_MAX = 4096

_CHUNK_BITS = 16
_CHUNK_SIZE = 1 << _CHUNK_BITS
_LOW_MASK = _CHUNK_SIZE - 1
_FULL_BITMAP = (1 << _CHUNK_SIZE) - 1

# A container is a tagged payload:
#   ("a", np.ndarray[uint16])           sorted array container
#   ("b", int)                          65536-bit bitmap container
#   ("r", list[(start, length)])        run container
Container = Tuple[str, object]


def _array_container(values: np.ndarray) -> Container:
    return ("a", values)


def _container_from_array(values: np.ndarray) -> Container:
    """Build array or bitmap container from sorted uint16 values."""
    if len(values) <= ARRAY_CONTAINER_MAX:
        return ("a", values)
    return ("b", _bits_from_array(values))


def _bits_from_array(values: np.ndarray) -> int:
    buf = np.zeros(_CHUNK_SIZE // 8, dtype=np.uint8)
    v = values.astype(np.int64)
    np.bitwise_or.at(buf, v >> 3, np.left_shift(1, v & 7).astype(np.uint8))
    return int.from_bytes(buf.tobytes(), "little")


def _array_from_bits(bits: int) -> np.ndarray:
    buf = np.frombuffer(bits.to_bytes(_CHUNK_SIZE // 8, "little"), dtype=np.uint8)
    return np.nonzero(np.unpackbits(buf, bitorder="little"))[0].astype(np.uint16)


def _container_from_bits(bits: int) -> Container:
    card = bits.bit_count()
    if card <= ARRAY_CONTAINER_MAX:
        return ("a", _array_from_bits(bits))
    return ("b", bits)


def _densify(container: Container) -> Container:
    """Expand a run container into an array or bitmap container."""
    tag, payload = container
    if tag != "r":
        return container
    runs: List[Tuple[int, int]] = payload  # type: ignore[assignment]
    card = sum(length for _, length in runs)
    if card > ARRAY_CONTAINER_MAX:
        bits = 0
        for start, length in runs:
            bits |= ((1 << length) - 1) << start
        return ("b", bits)
    parts = [np.arange(s, s + l, dtype=np.uint16) for s, l in runs]
    values = np.concatenate(parts) if parts else np.empty(0, dtype=np.uint16)
    return ("a", values)


def _card(container: Container) -> int:
    tag, payload = container
    if tag == "a":
        return len(payload)  # type: ignore[arg-type]
    if tag == "b":
        return payload.bit_count()  # type: ignore[union-attr]
    return sum(length for _, length in payload)  # type: ignore[union-attr]


def _contains(container: Container, low: int) -> bool:
    tag, payload = container
    if tag == "a":
        arr: np.ndarray = payload  # type: ignore[assignment]
        idx = np.searchsorted(arr, low)
        return bool(idx < len(arr) and arr[idx] == low)
    if tag == "b":
        return bool((payload >> low) & 1)  # type: ignore[operator]
    return any(start <= low < start + length for start, length in payload)  # type: ignore[union-attr]


def _iter_container(container: Container) -> Iterator[int]:
    tag, payload = container
    if tag == "a":
        yield from payload.tolist()  # type: ignore[union-attr]
    elif tag == "b":
        bits: int = payload  # type: ignore[assignment]
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low
    else:
        for start, length in payload:  # type: ignore[union-attr]
            yield from range(start, start + length)


def _binary_op(a: Container, b: Container, op: str) -> Container | None:
    """Apply intersect/union/diff to two containers; None means empty."""
    a = _densify(a)
    b = _densify(b)
    ta, pa = a
    tb, pb = b
    if ta == "b" and tb == "b":
        if op == "and":
            bits = pa & pb  # type: ignore[operator]
        elif op == "or":
            bits = pa | pb  # type: ignore[operator]
        else:
            bits = pa & ~pb & _FULL_BITMAP  # type: ignore[operator]
        return _container_from_bits(bits) if bits else None
    if ta == "a" and tb == "a":
        if op == "and":
            out = np.intersect1d(pa, pb, assume_unique=True)
        elif op == "or":
            out = np.union1d(pa, pb)
        else:
            out = np.setdiff1d(pa, pb, assume_unique=True)
        return _container_from_array(out.astype(np.uint16)) if len(out) else None
    # Mixed array/bitmap: probe the bitmap with the array.
    if ta == "a":  # pa array, pb bitmap
        arr: np.ndarray = pa  # type: ignore[assignment]
        mask = _membership_mask(pb, arr)  # type: ignore[arg-type]
        if op == "and":
            out = arr[mask]
            return _array_container(out) if len(out) else None
        if op == "diff":
            out = arr[~mask]
            return _array_container(out) if len(out) else None
        bits = pb | _bits_from_array(arr)  # type: ignore[operator]
        return _container_from_bits(bits)
    # pa bitmap, pb array
    arr = pb  # type: ignore[assignment]
    if op == "and":
        mask = _membership_mask(pa, arr)  # type: ignore[arg-type]
        out = arr[mask]
        return _array_container(out) if len(out) else None
    if op == "or":
        bits = pa | _bits_from_array(arr)  # type: ignore[operator]
        return _container_from_bits(bits)
    bits = pa & ~_bits_from_array(arr) & _FULL_BITMAP  # type: ignore[operator]
    return _container_from_bits(bits) if bits else None


def _membership_mask(bits: int, values: np.ndarray) -> np.ndarray:
    buf = np.frombuffer(bits.to_bytes(_CHUNK_SIZE // 8, "little"), dtype=np.uint8)
    table = np.unpackbits(buf, bitorder="little").view(bool)
    return table[values]


class RoaringSet(SetBase):
    """A set stored as a roaring bitmap (chunked adaptive containers)."""

    __slots__ = ("_chunks",)

    def __init__(self, chunks: Dict[int, Container] | None = None):
        self._chunks: Dict[int, Container] = chunks if chunks is not None else {}

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "RoaringSet":
        arr = np.fromiter(elements, dtype=np.int64)
        return cls.from_sorted_array(np.unique(arr))

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "RoaringSet":
        # Validate-or-sort first: the chunk split below reads boundaries
        # off ``np.diff(highs)``, so an unsorted input revisits high chunks
        # and each revisit silently overwrites the previous container.
        arr = as_sorted_unique(array)
        chunks: Dict[int, Container] = {}
        if len(arr) == 0:
            return cls(chunks)
        highs = arr >> _CHUNK_BITS
        lows = (arr & _LOW_MASK).astype(np.uint16)
        boundaries = np.nonzero(np.diff(highs))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(arr)]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            chunks[int(highs[s])] = _container_from_array(lows[s:e])
        return cls(chunks)

    # -- core algebra ---------------------------------------------------
    def _record_scan(self, b: "RoaringSet") -> None:
        # Approximation: a bulk op walks both operands' containers once,
        # so attribute their serialized footprint, in 8-byte words.
        COUNTERS.record_scan(
            "roaring", (self.storage_bytes() + b.storage_bytes() + 7) // 8
        )

    def intersect(self, other: SetBase) -> "RoaringSet":
        b = self._coerce(other)
        COUNTERS.record_bulk(self.cardinality() + b.cardinality(), 0)
        self._record_scan(b)
        out: Dict[int, Container] = {}
        small, large = (self, b) if len(self._chunks) <= len(b._chunks) else (b, self)
        for key, ca in small._chunks.items():
            cb = large._chunks.get(key)
            if cb is None:
                continue
            merged = _binary_op(ca, cb, "and")
            if merged is not None:
                out[key] = merged
        result = RoaringSet(out)
        COUNTERS.elements_written += result.cardinality()
        return result

    def intersect_count(self, other: SetBase) -> int:
        b = self._coerce(other)
        COUNTERS.record_bulk(self.cardinality() + b.cardinality(), 0)
        self._record_scan(b)
        total = 0
        small, large = (self, b) if len(self._chunks) <= len(b._chunks) else (b, self)
        for key, ca in small._chunks.items():
            cb = large._chunks.get(key)
            if cb is None:
                continue
            merged = _binary_op(ca, cb, "and")
            if merged is not None:
                total += _card(merged)
        return total

    def union(self, other: SetBase) -> "RoaringSet":
        b = self._coerce(other)
        COUNTERS.record_bulk(self.cardinality() + b.cardinality(), 0)
        self._record_scan(b)
        out: Dict[int, Container] = {}
        for key in self._chunks.keys() | b._chunks.keys():
            ca = self._chunks.get(key)
            cb = b._chunks.get(key)
            if ca is None:
                out[key] = _copy_container(cb)  # type: ignore[arg-type]
            elif cb is None:
                out[key] = _copy_container(ca)
            else:
                merged = _binary_op(ca, cb, "or")
                if merged is not None:
                    out[key] = merged
        result = RoaringSet(out)
        COUNTERS.elements_written += result.cardinality()
        return result

    def diff(self, other: SetBase) -> "RoaringSet":
        b = self._coerce(other)
        COUNTERS.record_bulk(self.cardinality() + b.cardinality(), 0)
        self._record_scan(b)
        out: Dict[int, Container] = {}
        for key, ca in self._chunks.items():
            cb = b._chunks.get(key)
            if cb is None:
                out[key] = _copy_container(ca)
                continue
            merged = _binary_op(ca, cb, "diff")
            if merged is not None:
                out[key] = merged
        result = RoaringSet(out)
        COUNTERS.elements_written += result.cardinality()
        return result

    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        container = self._chunks.get(element >> _CHUNK_BITS)
        if container is None:
            return False
        return _contains(container, element & _LOW_MASK)

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        key = element >> _CHUNK_BITS
        low = element & _LOW_MASK
        container = self._chunks.get(key)
        if container is None:
            self._chunks[key] = ("a", np.array([low], dtype=np.uint16))
            COUNTERS.elements_written += 1
            return
        container = _densify(container)
        tag, payload = container
        if tag == "b":
            if not (payload >> low) & 1:  # type: ignore[operator]
                COUNTERS.elements_written += 1
            self._chunks[key] = ("b", payload | (1 << low))  # type: ignore[operator]
            return
        arr: np.ndarray = payload  # type: ignore[assignment]
        idx = int(np.searchsorted(arr, low))
        if idx < len(arr) and arr[idx] == low:
            self._chunks[key] = container
            return
        new = np.insert(arr, idx, low)
        self._chunks[key] = _container_from_array(new)
        COUNTERS.elements_written += 1

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        key = element >> _CHUNK_BITS
        low = element & _LOW_MASK
        container = self._chunks.get(key)
        if container is None:
            return
        container = _densify(container)
        tag, payload = container
        if tag == "b":
            if (payload >> low) & 1:  # type: ignore[operator]
                COUNTERS.elements_written += 1
            bits = payload & ~(1 << low)  # type: ignore[operator]
            if bits:
                self._chunks[key] = _container_from_bits(bits)
            else:
                del self._chunks[key]
            return
        arr: np.ndarray = payload  # type: ignore[assignment]
        idx = int(np.searchsorted(arr, low))
        if idx < len(arr) and arr[idx] == low:
            new = np.delete(arr, idx)
            COUNTERS.elements_written += 1
            if len(new):
                self._chunks[key] = ("a", new)
            else:
                del self._chunks[key]
        else:
            self._chunks[key] = container

    def cardinality(self) -> int:
        return sum(_card(c) for c in self._chunks.values())

    def __iter__(self) -> Iterator[int]:
        for key in sorted(self._chunks):
            base = key << _CHUNK_BITS
            for low in _iter_container(self._chunks[key]):
                yield base + low

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        parts = []
        for key in sorted(self._chunks):
            base = np.int64(key << _CHUNK_BITS)
            tag, payload = _densify(self._chunks[key])
            arr = payload if tag == "a" else _array_from_bits(payload)  # type: ignore[arg-type]
            parts.append(arr.astype(np.int64) + base)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def clone(self) -> "RoaringSet":
        return RoaringSet({k: _copy_container(c) for k, c in self._chunks.items()})

    def _replace_with(self, other: SetBase) -> None:
        self._chunks = self._coerce(other)._chunks

    # -- compression-specific API -----------------------------------------
    def run_optimize(self) -> None:
        """Convert containers to run containers where that is smaller.

        Mirrors CRoaring's ``runOptimize``: a chunk with long consecutive
        runs (common after vertex relabeling) shrinks to a run container.
        """
        for key, container in list(self._chunks.items()):
            tag, payload = _densify(container)
            arr = payload if tag == "a" else _array_from_bits(payload)  # type: ignore[arg-type]
            runs = _runs_from_array(arr)
            sizes = {
                "a": 2 * len(arr),
                "b": _CHUNK_SIZE // 8,
                "r": 2 + 4 * len(runs),
            }
            current = 2 * len(arr) if tag == "a" else _CHUNK_SIZE // 8
            if sizes["r"] < min(current, sizes["a"], sizes["b"]):
                self._chunks[key] = ("r", runs)

    def storage_bytes(self) -> int:
        """Approximate serialized size in bytes (for the memory analysis)."""
        total = 0
        for container in self._chunks.values():
            tag, payload = container
            total += 4  # chunk key + header
            if tag == "a":
                total += 2 * len(payload)  # type: ignore[arg-type]
            elif tag == "b":
                total += _CHUNK_SIZE // 8
            else:
                total += 4 * len(payload)  # type: ignore[arg-type]
        return total

    def container_kinds(self) -> Dict[str, int]:
        """Histogram of container types, e.g. ``{"a": 3, "b": 1}``."""
        hist: Dict[str, int] = {}
        for tag, _ in self._chunks.values():
            hist[tag] = hist.get(tag, 0) + 1
        return hist


def _copy_container(container: Container) -> Container:
    tag, payload = container
    if tag == "a":
        return ("a", payload.copy())  # type: ignore[union-attr]
    if tag == "b":
        return ("b", payload)
    return ("r", list(payload))  # type: ignore[arg-type]


def _runs_from_array(arr: np.ndarray) -> List[Tuple[int, int]]:
    if len(arr) == 0:
        return []
    values = arr.astype(np.int64)
    breaks = np.nonzero(np.diff(values) != 1)[0] + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [len(values)]))
    return [
        (int(values[s]), int(e - s)) for s, e in zip(starts.tolist(), ends.tolist())
    ]

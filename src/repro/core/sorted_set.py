"""SortedSet — sorted integer-array set representation (paper section 5.2).

This mirrors the established CSR design where each vertex neighborhood is a
sorted, contiguous array of integers.  Bulk operations run on numpy arrays
(the Python stand-in for the vectorized merge loops of the C++ platform);
:mod:`repro.core.ops` additionally provides explicit *merge* and *galloping*
intersection kernels for the algorithm-choice experiments of section 6.5.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .counters import COUNTERS
from .interface import SetBase
from .ops import as_sorted_unique

__all__ = ["SortedSet"]

_EMPTY = np.empty(0, dtype=np.int64)


class SortedSet(SetBase):
    """A set stored as a sorted, duplicate-free ``int64`` numpy array."""

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray | None = None, *, _trusted: bool = False):
        if data is None:
            self._data = _EMPTY
        elif _trusted:
            self._data = data
        else:
            self._data = np.unique(np.asarray(data, dtype=np.int64))

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_iterable(cls, elements: Iterable[int]) -> "SortedSet":
        arr = np.fromiter(elements, dtype=np.int64)
        return cls(np.unique(arr), _trusted=True)

    @classmethod
    def from_sorted_array(cls, array: np.ndarray) -> "SortedSet":
        # Validate-or-sort: an unsorted/duplicated input would silently
        # break every merge kernel downstream (sortedness is the invariant
        # they all binary-search against).
        return cls(as_sorted_unique(array), _trusted=True)

    # -- core algebra ---------------------------------------------------
    def intersect(self, other: SetBase) -> "SortedSet":
        b = self._coerce(other)
        COUNTERS.record_bulk(len(self._data) + len(b._data), 0)
        out = _intersect_arrays(self._data, b._data)
        COUNTERS.elements_written += len(out)
        return SortedSet(out, _trusted=True)

    def intersect_count(self, other: SetBase) -> int:
        b = self._coerce(other)
        COUNTERS.record_bulk(len(self._data) + len(b._data), 0)
        return len(_intersect_arrays(self._data, b._data))

    def intersect_inplace(self, other: SetBase) -> None:
        # One merge, rebound in place — skips the intermediate SortedSet
        # (and its copy) that the generic default would build.
        b = self._coerce(other)
        out = _intersect_arrays(self._data, b._data)
        COUNTERS.record_bulk(len(self._data) + len(b._data), len(out))
        self._data = out

    def intersect_assign(self, a: SetBase, b: SetBase) -> None:
        # Fused A = a ∩ b: intersect straight into this set's slot,
        # skipping the copy of ``a`` the unfused assign would make.
        ca, cb = self._coerce(a), self._coerce(b)
        out = _intersect_arrays(ca._data, cb._data)
        COUNTERS.record_bulk(len(ca._data) + len(cb._data), len(out))
        self._data = out

    def union(self, other: SetBase) -> "SortedSet":
        b = self._coerce(other)
        out = np.union1d(self._data, b._data)
        COUNTERS.record_bulk(len(self._data) + len(b._data), len(out))
        return SortedSet(out, _trusted=True)

    def diff(self, other: SetBase) -> "SortedSet":
        b = self._coerce(other)
        out = np.setdiff1d(self._data, b._data, assume_unique=True)
        COUNTERS.record_bulk(len(self._data) + len(b._data), len(out))
        return SortedSet(out, _trusted=True)

    def contains(self, element: int) -> bool:
        COUNTERS.record_point()
        idx = np.searchsorted(self._data, element)
        return bool(idx < len(self._data) and self._data[idx] == element)

    def add(self, element: int) -> None:
        COUNTERS.record_point()
        idx = int(np.searchsorted(self._data, element))
        if idx < len(self._data) and self._data[idx] == element:
            return
        self._data = np.insert(self._data, idx, element)
        COUNTERS.elements_written += 1

    def remove(self, element: int) -> None:
        COUNTERS.record_point()
        idx = int(np.searchsorted(self._data, element))
        if idx < len(self._data) and self._data[idx] == element:
            self._data = np.delete(self._data, idx)
            COUNTERS.elements_written += 1

    def cardinality(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data.tolist())

    # -- fast-path overrides ---------------------------------------------
    def to_array(self) -> np.ndarray:
        return self._data.copy()

    def clone(self) -> "SortedSet":
        return SortedSet(self._data.copy(), _trusted=True)

    def _replace_with(self, other: SetBase) -> None:
        self._data = self._coerce(other)._data

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SortedSet):
            return bool(np.array_equal(self._data, other._data))
        return super().__eq__(other)

    __hash__ = SetBase.__hash__


def _intersect_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted unique arrays, adaptively.

    When one side is much smaller, a galloping (binary-search) probe of the
    larger side wins — ``O(|small| log |large|)`` versus ``O(|a| + |b|)`` for
    the merge; this is the adaptive strategy the paper describes for
    vertex-similarity kernels (section 6.5).
    """
    if len(a) == 0 or len(b) == 0:
        return _EMPTY
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(large) > 32 * len(small):
        COUNTERS.record_scan("sorted/gallop",
                             len(small) * max(1, len(large).bit_length()))
        idx = np.searchsorted(large, small)
        idx[idx == len(large)] = len(large) - 1
        return small[large[idx] == small]
    COUNTERS.record_scan("sorted/merge", len(a) + len(b))
    return np.intersect1d(a, b, assume_unique=True)

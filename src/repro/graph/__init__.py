"""Graph substrate: representations, builders, generators, datasets, stats."""

from .adjacency import (
    AdjacencyListGraph,
    AdjacencyMatrixGraph,
    EdgeListGraph,
    GRAPH_MODELS,
    build_model,
)
from .classic import (
    bellman_ford,
    betweenness_centrality,
    bfs_distances,
    boman_coloring,
    delta_stepping,
    pagerank,
)
from .builder import build_directed, build_undirected, edges_to_array, from_networkx
from .csr import CSRGraph
from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset, suite
from .io import load_npz, read_edge_list, save_npz, write_edge_list
from .set_graph import (
    MaterializationCache,
    SetGraph,
    build_oriented_set_graph,
    build_set_graph,
)
from .stats import GraphSummary, summarize, total_triangles, triangle_counts
from .transforms import (
    induced_subgraph,
    orient_by_rank,
    oriented_arcs,
    permute,
    split_neighbors,
)
from . import generators

__all__ = [
    "CSRGraph",
    "SetGraph",
    "MaterializationCache",
    "build_set_graph",
    "build_oriented_set_graph",
    "build_undirected",
    "build_directed",
    "edges_to_array",
    "from_networkx",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "generators",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "suite",
    "GraphSummary",
    "summarize",
    "total_triangles",
    "triangle_counts",
    "orient_by_rank",
    "oriented_arcs",
    "permute",
    "induced_subgraph",
    "split_neighbors",
    "AdjacencyListGraph",
    "AdjacencyMatrixGraph",
    "EdgeListGraph",
    "GRAPH_MODELS",
    "build_model",
    "bfs_distances",
    "bellman_ford",
    "delta_stepping",
    "pagerank",
    "betweenness_centrality",
    "boman_coloring",
]

"""Alternative graph models: AL, AM, EL (paper Appendix B, Tables 8–9).

The paper's appendix compares the time complexity of graph queries and
algorithms across four storage models — sorted Adjacency List (AL),
Adjacency Matrix (AM), and unsorted/sorted Edge List (EL).  These classes
implement the shared *query* interface used by the Table 8/9 benchmarks:

* ``iter_vertices()`` / ``iter_edges()``
* ``neighbors(v)`` / ``degree(v)``
* ``has_edge(u, v)``

with the asymptotics of Table 9 (e.g. ``has_edge`` is O(log Δ) on sorted AL,
O(1) on AM, O(m) on unsorted EL, O(log m) on sorted EL).

Every model additionally speaks the flat-array transport protocol the
shared-memory runtime uses (:mod:`repro.platform.shm`): ``export_arrays()``
returns ``(meta, arrays)`` where *arrays* maps names to contiguous numpy
arrays, and ``from_arrays(meta, arrays)`` reconstructs the model around
those arrays **without copying** — so a model can be rebuilt over
read-only shared-memory views.  All query methods are reads, so
read-only backing arrays are fine.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "AdjacencyListGraph",
    "AdjacencyMatrixGraph",
    "EdgeListGraph",
    "GRAPH_MODELS",
    "build_model",
]


class AdjacencyListGraph:
    """Sorted adjacency list: per-vertex sorted neighbor arrays."""

    kind = "AL"

    def __init__(self, csr: CSRGraph):
        self._neigh: List[np.ndarray] = [
            csr.out_neigh(v).copy() for v in csr.vertices()
        ]
        self.num_nodes = csr.num_nodes
        self.num_edges = csr.num_edges

    def iter_vertices(self) -> range:
        return range(self.num_nodes)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        for u in range(self.num_nodes):
            for v in self._neigh[u].tolist():
                if u < v:
                    yield u, v

    def neighbors(self, v: int) -> np.ndarray:
        return self._neigh[v]

    def degree(self, v: int) -> int:
        return len(self._neigh[v])

    def has_edge(self, u: int, v: int) -> bool:
        arr = self._neigh[u]
        idx = int(np.searchsorted(arr, v))  # O(log Δ)
        return idx < len(arr) and arr[idx] == v

    def storage_bytes(self) -> int:
        return sum(a.nbytes for a in self._neigh)

    def export_arrays(self):
        """Flatten to CSR-style ``(offsets, values)`` transport arrays."""
        counts = np.fromiter(
            (len(a) for a in self._neigh), dtype=np.int64,
            count=self.num_nodes,
        )
        offsets = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        values = np.empty(int(offsets[-1]), dtype=np.int64)
        for v, arr in enumerate(self._neigh):
            values[offsets[v]:offsets[v + 1]] = arr
        meta = {"kind": self.kind, "num_nodes": self.num_nodes,
                "num_edges": self.num_edges}
        return meta, {"offsets": offsets, "values": values}

    @classmethod
    def from_arrays(cls, meta, arrays) -> "AdjacencyListGraph":
        """Rebuild around transport arrays; neighborhoods become views."""
        self = cls.__new__(cls)
        offsets, values = arrays["offsets"], arrays["values"]
        self._neigh = [
            values[offsets[v]:offsets[v + 1]]
            for v in range(meta["num_nodes"])
        ]
        self.num_nodes = meta["num_nodes"]
        self.num_edges = meta["num_edges"]
        return self


class AdjacencyMatrixGraph:
    """Dense n×n boolean adjacency matrix."""

    kind = "AM"

    def __init__(self, csr: CSRGraph):
        n = csr.num_nodes
        self._matrix = np.zeros((n, n), dtype=bool)
        for u in csr.vertices():
            self._matrix[u, csr.out_neigh(u)] = True
        self.num_nodes = n
        self.num_edges = csr.num_edges

    def iter_vertices(self) -> range:
        return range(self.num_nodes)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        # Θ(n²): every cell must be inspected.
        rows, cols = np.nonzero(np.triu(self._matrix, k=1))
        yield from zip(rows.tolist(), cols.tolist())

    def neighbors(self, v: int) -> np.ndarray:
        return np.nonzero(self._matrix[v])[0]  # Θ(n)

    def degree(self, v: int) -> int:
        return int(self._matrix[v].sum())  # Θ(n)

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._matrix[u, v])  # O(1)

    def storage_bytes(self) -> int:
        return self._matrix.nbytes

    def export_arrays(self):
        meta = {"kind": self.kind, "num_nodes": self.num_nodes,
                "num_edges": self.num_edges}
        return meta, {"matrix": self._matrix}

    @classmethod
    def from_arrays(cls, meta, arrays) -> "AdjacencyMatrixGraph":
        self = cls.__new__(cls)
        self._matrix = arrays["matrix"]
        self.num_nodes = meta["num_nodes"]
        self.num_edges = meta["num_edges"]
        return self


class EdgeListGraph:
    """Flat list of arcs; optionally sorted lexicographically.

    Each undirected edge is stored in both directions so that neighborhood
    queries on the sorted variant can binary-search a contiguous range
    (the ``#`` footnote of Table 9).
    """

    def __init__(self, csr: CSRGraph, *, sorted_list: bool):
        n = csr.num_nodes
        sources = np.repeat(np.arange(n, dtype=np.int64), csr.degrees())
        arcs = np.stack([sources, csr.adjacency], axis=1)
        if sorted_list:
            order = np.lexsort((arcs[:, 1], arcs[:, 0]))
            arcs = arcs[order]
        else:
            rng = np.random.default_rng(0xE1)
            arcs = arcs[rng.permutation(len(arcs))]
        self._arcs = arcs
        self._sorted = sorted_list
        self.kind = "EL-sorted" if sorted_list else "EL-unsorted"
        self.num_nodes = n
        self.num_edges = csr.num_edges

    def iter_vertices(self) -> range:
        return range(self.num_nodes)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        arcs = self._arcs
        mask = arcs[:, 0] < arcs[:, 1]
        yield from map(tuple, arcs[mask].tolist())

    def _range_of(self, v: int) -> Tuple[int, int]:
        lo = int(np.searchsorted(self._arcs[:, 0], v, side="left"))
        hi = int(np.searchsorted(self._arcs[:, 0], v, side="right"))
        return lo, hi

    def neighbors(self, v: int) -> np.ndarray:
        if self._sorted:
            lo, hi = self._range_of(v)  # O(log m + Δ)
            return self._arcs[lo:hi, 1]
        return self._arcs[self._arcs[:, 0] == v, 1]  # Θ(m)

    def degree(self, v: int) -> int:
        if self._sorted:
            lo, hi = self._range_of(v)
            return hi - lo
        return int((self._arcs[:, 0] == v).sum())

    def has_edge(self, u: int, v: int) -> bool:
        if self._sorted:
            lo, hi = self._range_of(u)  # O(log m)
            seg = self._arcs[lo:hi, 1]
            idx = int(np.searchsorted(seg, v))
            return idx < len(seg) and seg[idx] == v
        return bool(np.any((self._arcs[:, 0] == u) & (self._arcs[:, 1] == v)))

    def storage_bytes(self) -> int:
        return self._arcs.nbytes

    def export_arrays(self):
        meta = {"kind": self.kind, "sorted": self._sorted,
                "num_nodes": self.num_nodes, "num_edges": self.num_edges}
        return meta, {"arcs": self._arcs}

    @classmethod
    def from_arrays(cls, meta, arrays) -> "EdgeListGraph":
        self = cls.__new__(cls)
        self._arcs = arrays["arcs"]
        self._sorted = meta["sorted"]
        self.kind = meta["kind"]
        self.num_nodes = meta["num_nodes"]
        self.num_edges = meta["num_edges"]
        return self


GRAPH_MODELS = {
    "AL": lambda csr: AdjacencyListGraph(csr),
    "AM": lambda csr: AdjacencyMatrixGraph(csr),
    "EL-sorted": lambda csr: EdgeListGraph(csr, sorted_list=True),
    "EL-unsorted": lambda csr: EdgeListGraph(csr, sorted_list=False),
}


def build_model(csr: CSRGraph, kind: str):
    """Build one of the Table 8/9 graph models from a CSR graph."""
    try:
        return GRAPH_MODELS[kind](csr)
    except KeyError:
        raise KeyError(
            f"unknown model {kind!r}; known: {', '.join(GRAPH_MODELS)}"
        ) from None

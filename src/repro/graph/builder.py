"""Graph construction: edge-list cleaning and CSR building (pipeline stage 1).

The GMS toolchain's first stages load an edge list and build a graph
representation.  This module performs the canonical cleaning — self-loop
removal, duplicate removal, optional symmetrization — entirely with
vectorized numpy passes, then emits a :class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = ["build_undirected", "build_directed", "edges_to_array", "from_networkx"]


def edges_to_array(edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Convert an iterable of ``(u, v)`` pairs to a ``(k, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edge array must have shape (k, 2)")
        return arr
    pairs = list(edges)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def build_undirected(
    num_nodes: int, edges: Iterable[Tuple[int, int]] | np.ndarray
) -> CSRGraph:
    """Build an undirected CSR graph from an edge list.

    Self-loops and duplicate edges (in either direction) are dropped, and
    every surviving edge is stored in both directions, matching the GMS
    loader semantics.
    """
    arr = edges_to_array(edges)
    _check_bounds(arr, num_nodes)
    arr = arr[arr[:, 0] != arr[:, 1]]  # drop self-loops
    if len(arr):
        both = np.concatenate([arr, arr[:, ::-1]])
    else:
        both = arr
    return _csr_from_arcs(num_nodes, both, directed=False)


def build_directed(
    num_nodes: int, arcs: Iterable[Tuple[int, int]] | np.ndarray
) -> CSRGraph:
    """Build a directed CSR graph; duplicate arcs and self-loops dropped."""
    arr = edges_to_array(arcs)
    _check_bounds(arr, num_nodes)
    arr = arr[arr[:, 0] != arr[:, 1]]
    return _csr_from_arcs(num_nodes, arr, directed=True)


def from_networkx(graph) -> CSRGraph:
    """Convert a networkx graph (nodes relabeled to ``0..n-1``)."""
    import networkx as nx

    mapping = {node: i for i, node in enumerate(graph.nodes())}
    edges = [(mapping[u], mapping[v]) for u, v in graph.edges()]
    if isinstance(graph, nx.DiGraph):
        return build_directed(graph.number_of_nodes(), edges)
    return build_undirected(graph.number_of_nodes(), edges)


def _check_bounds(arr: np.ndarray, num_nodes: int) -> None:
    if len(arr) == 0:
        return
    if arr.min() < 0 or arr.max() >= num_nodes:
        raise ValueError(
            f"edge endpoints must lie in [0, {num_nodes}); "
            f"got range [{arr.min()}, {arr.max()}]"
        )


def _csr_from_arcs(num_nodes: int, arcs: np.ndarray, *, directed: bool) -> CSRGraph:
    """Sort, deduplicate, and pack arcs into CSR arrays."""
    if len(arcs) == 0:
        return CSRGraph(
            np.zeros(num_nodes + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            directed=directed,
        )
    keys = arcs[:, 0] * np.int64(num_nodes) + arcs[:, 1]
    unique_keys = np.unique(keys)
    sources = unique_keys // num_nodes
    targets = unique_keys % num_nodes
    counts = np.bincount(sources, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets, targets.astype(np.int64), directed=directed)

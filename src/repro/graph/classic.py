"""Classic "low-complexity" graph algorithms (paper Table 8, appendix B).

The paper's representation study (Tables 8–9) derives the complexity of
BFS, PageRank (pushing), Δ-stepping and Bellman–Ford SSSP, Borůvka MST,
Boman et al. coloring, and Brandes betweenness centrality across storage
models.  GMS itself scopes these problems *out* of the mining
specification (§4.4) but needs them for the storage analysis, so this
module provides reference implementations written against the minimal
graph-access surface (``num_nodes``/``out_neigh``/``out_degree``) — they
run on CSR, Log(Graph), or any Table 8 model exposing that surface via a
thin adapter.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "bfs_distances",
    "bellman_ford",
    "delta_stepping",
    "pagerank",
    "betweenness_centrality",
    "boman_coloring",
]


def bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Level-synchronous BFS; unreachable vertices get -1."""
    n = graph.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for v in graph.out_neigh(u).tolist():
                if dist[v] < 0:
                    dist[v] = level
                    nxt.append(v)
        frontier = nxt
    return dist


def _edge_weights(
    graph: CSRGraph, weights: Optional[Dict[Tuple[int, int], float]]
) -> Dict[Tuple[int, int], float]:
    if weights is not None:
        return weights
    return {(u, v): 1.0 for u, v in graph.edges()}


def _weight_of(weights, u: int, v: int) -> float:
    return weights.get((u, v), weights.get((v, u), 1.0))


def bellman_ford(
    graph: CSRGraph,
    source: int,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
) -> np.ndarray:
    """Bellman–Ford SSSP (Table 8's O(n·m) row); returns distances (inf =
    unreachable)."""
    w = _edge_weights(graph, weights)
    n = graph.num_nodes
    dist = np.full(n, math.inf)
    dist[source] = 0.0
    for _ in range(max(n - 1, 1)):
        changed = False
        for u in range(n):
            du = dist[u]
            if not math.isfinite(du):
                continue
            for v in graph.out_neigh(u).tolist():
                nd = du + _weight_of(w, u, v)
                if nd < dist[v] - 1e-15:
                    dist[v] = nd
                    changed = True
        if not changed:
            break
    return dist


def delta_stepping(
    graph: CSRGraph,
    source: int,
    delta: float = 1.0,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
) -> np.ndarray:
    """Δ-stepping SSSP (Meyer–Sanders): bucketed label-correcting.

    ``delta`` trades parallelism for work: Δ→0 degenerates to Dijkstra,
    Δ→∞ to Bellman–Ford — the knob Table 8's complexity rows expose.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    w = _edge_weights(graph, weights)
    n = graph.num_nodes
    dist = np.full(n, math.inf)
    dist[source] = 0.0
    buckets: Dict[int, set] = {0: {source}}
    current = 0
    while buckets:
        while current not in buckets:
            current += 1
            if current > max(buckets) :
                break
        if current not in buckets:
            break
        # Settle the current bucket: light-edge relaxations may re-insert.
        settled = set()
        while buckets.get(current):
            frontier = buckets.pop(current)
            settled |= frontier
            for u in frontier:
                du = dist[u]
                for v in graph.out_neigh(u).tolist():
                    wt = _weight_of(w, u, v)
                    if wt > delta:
                        continue  # heavy edges relaxed after settling
                    nd = du + wt
                    if nd < dist[v] - 1e-15:
                        _move_bucket(buckets, dist, v, nd, delta)
                        dist[v] = nd
        for u in settled:
            du = dist[u]
            for v in graph.out_neigh(u).tolist():
                wt = _weight_of(w, u, v)
                if wt <= delta:
                    continue
                nd = du + wt
                if nd < dist[v] - 1e-15:
                    _move_bucket(buckets, dist, v, nd, delta)
                    dist[v] = nd
        current += 1
    return dist


def _move_bucket(buckets, dist, v: int, new_dist: float, delta: float) -> None:
    if math.isfinite(dist[v]):
        old = int(dist[v] / delta)
        buckets.get(old, set()).discard(v)
    buckets.setdefault(int(new_dist / delta), set()).add(v)


def pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-10,
    mode: str = "pull",
) -> np.ndarray:
    """PageRank in the pulling or pushing formulation (Table 8's row).

    Both modes produce the same vector; they differ in their access
    pattern (pull reads in-neighbors, push scatters to out-neighbors) —
    the communication trade-off of the paper's earlier push-pull work.
    """
    if mode not in ("pull", "push"):
        raise ValueError("mode must be 'pull' or 'push'")
    n = graph.num_nodes
    if n == 0:
        return np.empty(0)
    ranks = np.full(n, 1.0 / n)
    degrees = graph.degrees().astype(np.float64)
    for _ in range(iterations):
        if mode == "pull":
            nxt = np.full(n, (1.0 - damping) / n)
            for v in range(n):
                neigh = graph.out_neigh(v)
                if len(neigh):
                    nxt[v] += damping * float(
                        (ranks[neigh] / np.maximum(degrees[neigh], 1.0)).sum()
                    )
        else:
            nxt = np.full(n, (1.0 - damping) / n)
            for u in range(n):
                if degrees[u] == 0:
                    continue
                share = damping * ranks[u] / degrees[u]
                nxt[graph.out_neigh(u)] += share
        # Dangling mass: redistribute uniformly so the vector stays
        # stochastic (undirected graphs only have dangling isolated
        # vertices).
        dangling = damping * ranks[degrees == 0].sum()
        nxt += dangling / n
        if np.abs(nxt - ranks).sum() < tolerance:
            ranks = nxt
            break
        ranks = nxt
    return ranks


def betweenness_centrality(graph: CSRGraph) -> np.ndarray:
    """Brandes' exact betweenness centrality (unweighted, undirected)."""
    n = graph.num_nodes
    bc = np.zeros(n)
    for s in range(n):
        # Single-source shortest-path DAG.
        sigma = np.zeros(n)
        sigma[s] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        order = []
        frontier = [s]
        while frontier:
            nxt = []
            for u in frontier:
                order.append(u)
                for v in graph.out_neigh(u).tolist():
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
                    if dist[v] == dist[u] + 1:
                        sigma[v] += sigma[u]
            frontier = nxt
        # Dependency accumulation in reverse BFS order.
        delta = np.zeros(n)
        for u in reversed(order):
            for v in graph.out_neigh(u).tolist():
                if dist[v] == dist[u] + 1 and sigma[v] > 0:
                    delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
            if u != s:
                bc[u] += delta[u]
    return bc / 2.0  # undirected: each pair counted twice


def boman_coloring(graph: CSRGraph) -> np.ndarray:
    """Boman et al.'s iterative parallel coloring (Table 8's row).

    Speculative rounds: every uncolored vertex greedily picks the smallest
    color not used by its (already colored) neighbors; conflicting
    adjacent picks — detected in a second phase, ties broken by vertex ID
    — are re-queued for the next round.  Returns a proper coloring.
    """
    n = graph.num_nodes
    colors = np.full(n, -1, dtype=np.int64)
    pending = list(range(n))
    while pending:
        tentative = colors.copy()
        for v in pending:
            taken = {int(colors[u]) for u in graph.out_neigh(v).tolist()
                     if colors[u] >= 0}
            c = 0
            while c in taken:
                c += 1
            tentative[v] = c
        conflicts = []
        pending_set = set(pending)
        for v in pending:
            # The higher ID of a clashing pair re-queues.
            clash = any(
                u in pending_set and tentative[u] == tentative[v] and u < v
                for u in graph.out_neigh(v).tolist()
            )
            if clash:
                conflicts.append(v)
            else:
                colors[v] = tentative[v]
        pending = conflicts
    return colors

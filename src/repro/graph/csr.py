"""Compressed Sparse Row graph representation (paper section 2.3).

CSR (a.k.a. *adjacency array*) is the default GMS representation: a
contiguous array with the IDs of the neighbors of each vertex (``2m`` words
for an undirected graph) plus an offset array (``n + 1`` words).  Every
neighborhood is sorted by vertex ID.

The class also implements the graph-access interface of the paper's pipeline
stage ``2``: check the degree ``Δ(v)``, load the neighbors ``N(v)``, iterate
over vertices/edges, and verify whether an edge ``(u, v)`` exists.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Type

import numpy as np

from ..core.interface import SetBase

__all__ = ["CSRGraph"]


class CSRGraph:
    """An (optionally directed) graph in CSR form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``n + 1``; neighborhood of vertex ``v`` is
        ``adjacency[offsets[v]:offsets[v + 1]]``.
    adjacency:
        Concatenated, per-neighborhood-sorted ``int64`` neighbor IDs.
    directed:
        ``False`` (default) when each undirected edge is stored twice.
    """

    __slots__ = ("offsets", "adjacency", "directed")

    def __init__(
        self, offsets: np.ndarray, adjacency: np.ndarray, *, directed: bool = False
    ):
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.adjacency = np.asarray(adjacency, dtype=np.int64)
        self.directed = directed
        if len(self.offsets) == 0 or self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if self.offsets[-1] != len(self.adjacency):
            raise ValueError("offsets must end at len(adjacency)")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of vertices ``n``."""
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` (each undirected edge counted once)."""
        if self.directed:
            return len(self.adjacency)
        return len(self.adjacency) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored arcs (``2m`` for undirected graphs)."""
        return len(self.adjacency)

    # ------------------------------------------------------------------
    # Graph accesses (pipeline stage 2)
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Return ``Δ(v)``."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def out_neigh(self, v: int) -> np.ndarray:
        """Return ``N(v)`` as a sorted array view (no copy)."""
        return self.adjacency[self.offsets[v] : self.offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the arc ``(u, v)`` exists (binary search)."""
        neigh = self.out_neigh(u)
        idx = np.searchsorted(neigh, v)
        return bool(idx < len(neigh) and neigh[idx] == v)

    def degrees(self) -> np.ndarray:
        """Return the full out-degree array."""
        return np.diff(self.offsets)

    def max_degree(self) -> int:
        """Return ``Δ`` — the maximum degree."""
        if self.num_nodes == 0:
            return 0
        return int(self.degrees().max())

    def vertices(self) -> range:
        """Iterate over ``V``."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate edges once: ``u < v`` for undirected, arcs for directed."""
        offsets = self.offsets
        adjacency = self.adjacency
        for u in range(self.num_nodes):
            for v in adjacency[offsets[u] : offsets[u + 1]].tolist():
                if self.directed or u < v:
                    yield u, v

    def edge_array(self) -> np.ndarray:
        """Return all edges as a ``(k, 2)`` array (undirected: ``u < v``)."""
        n = self.num_nodes
        sources = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
        pairs = np.stack([sources, self.adjacency], axis=1)
        if not self.directed:
            pairs = pairs[pairs[:, 0] < pairs[:, 1]]
        return pairs

    # ------------------------------------------------------------------
    # Bridges into the set-centric world
    # ------------------------------------------------------------------
    def neighborhood_set(self, v: int, set_cls: Type[SetBase]) -> SetBase:
        """Materialize ``N(v)`` as a set of the requested representation."""
        return set_cls.from_sorted_array(self.out_neigh(v))

    # ------------------------------------------------------------------
    # Storage accounting (memory-consumption analysis, section 8.9)
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Size of the CSR arrays in bytes."""
        return self.offsets.nbytes + self.adjacency.nbytes

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph(n={self.num_nodes}, m={self.num_edges}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.adjacency, other.adjacency)
        )

    __hash__ = None  # type: ignore[assignment]

"""Dataset registry: seeded miniature analogs of the Table 7 graphs.

The paper deliberately refrains from prescribing fixed datasets (section
4.2) and instead characterizes *which structural parameters* make a graph a
useful stressor: sparsity ``m/n``, degree skew, triangle count ``T``,
triangle skew ``T̂``, diameter, and graph *origin* (section 8.6 shows origin
drives higher-order structure).  Because this reproduction runs offline, we
follow that guidance and provide generated stand-ins that hit the same
parameter regimes at laptop scale — one per graph the evaluation uses.

Every entry records the paper graph it mirrors and why it was selected, and
``bench_table7`` recomputes the full statistics table over the registry.
"""

from __future__ import annotations

import gzip
import logging
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .csr import CSRGraph
from . import generators as gen

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "REAL_DATASETS",
    "load_dataset",
    "dataset_names",
    "dataset_provenance",
    "data_dir",
    "fetch_dataset",
    "suite",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset standing in for a Table 7 graph."""

    name: str
    category: str  # so/wb/st/sc/re/bi/co/ec/ro, as in Table 7
    mirrors: str  # the paper graph this is an analog of
    why: str  # the "Why selected/special?" column
    loader: Callable[[], CSRGraph]

    def load(self) -> CSRGraph:
        """Generate the graph (deterministic: fixed seed inside loader)."""
        return self.loader()


def _spec(name, category, mirrors, why, loader) -> DatasetSpec:
    return DatasetSpec(name, category, mirrors, why, loader)


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # ----- social networks ------------------------------------------------
        _spec(
            "orkut-mini",
            "so",
            "Orkut (K)",
            "common, relatively large; heavy-tailed with many triangles",
            lambda: gen.holme_kim(1200, 12, 0.55, seed=11),
        ),
        _spec(
            "flickr-mini",
            "so",
            "Flickr (K)",
            "large T but low m/n",
            lambda: gen.planted_cliques(
                1500, 3000, [(12, 12), (8, 30)], seed=12
            ),
        ),
        _spec(
            "libimseti-mini",
            "so",
            "Libimseti (K)",
            "large m/n (dense social graph)",
            lambda: gen.erdos_renyi_nm(500, 12000, seed=13),
        ),
        _spec(
            "youtube-mini",
            "so",
            "Youtube (K)",
            "very low m/n and T; high diameter + degree skew",
            lambda: gen.barabasi_albert(2500, 2, seed=14),
        ),
        _spec(
            "flixster-mini",
            "so",
            "Flixster (K)",
            "very low m/n and T",
            lambda: gen.barabasi_albert(2000, 3, seed=15),
        ),
        _spec(
            "livemocha-mini",
            "so",
            "Livemocha (K)",
            "similar bulk stats to flickr-photos-mini but far fewer 4-cliques",
            lambda: gen.holme_kim(1000, 10, 0.35, seed=16),
        ),
        _spec(
            "ep-trust-mini",
            "so",
            "Epinions trust (N)",
            "huge T-skew concentrated at few vertices",
            lambda: gen.planted_cliques(1300, 2600, [(22, 2), (8, 10)], seed=17),
        ),
        _spec(
            "fb-comm-mini",
            "so",
            "FB communication (N)",
            "large T-skew, dense ego-nets",
            lambda: gen.planted_cliques(800, 4000, [(14, 6), (6, 25)], seed=18),
        ),
        _spec(
            "dblp-mini",
            "so",
            "DBLP co-authorship (S)",
            "moderate clustering collaboration network (Figure 8b panel)",
            lambda: gen.holme_kim(1100, 5, 0.65, seed=91),
        ),
        _spec(
            "citations-mini",
            "so",
            "Citation network (S)",
            "sparse, moderately clustered DAG-like network (Figure 8b panel)",
            lambda: gen.holme_kim(1400, 4, 0.3, seed=92),
        ),
        _spec(
            "pokec-mini",
            "so",
            "Pokec (S)",
            "large sparse social network, few dense cores (Figure 8b panel)",
            lambda: gen.barabasi_albert(1800, 4, seed=93),
        ),
        # ----- web graphs -----------------------------------------------------
        _spec(
            "wikipedia-mini",
            "wb",
            "Wikipedia (K)",
            "common, very sparse, power-law",
            lambda: gen.kronecker(11, 6, seed=21),
        ),
        _spec(
            "baidu-mini",
            "wb",
            "Baidu (K)",
            "very sparse, skewed",
            lambda: gen.kronecker(11, 4, seed=22),
        ),
        _spec(
            "dbpedia-mini",
            "wb",
            "DBpedia (K)",
            "rather low m/n but high T",
            lambda: gen.planted_cliques(1400, 5600, [(10, 20)], seed=23),
        ),
        _spec(
            "wikiedit-mini",
            "wb",
            "WikiEdit (N)",
            "large T-skew (few hub pages on which everyone collaborates)",
            lambda: gen.bipartite_projection(700, 260, 4, item_skew=1.6, seed=24, max_raters=20),
        ),
        # ----- structural / scientific ---------------------------------------
        _spec(
            "chebyshev4-mini",
            "st",
            "Chebyshev4 (N)",
            "very large T, T/n and T-skew",
            lambda: gen.planted_cliques(700, 2100, [(20, 3), (10, 12)], seed=31),
        ),
        _spec(
            "gearbox-mini",
            "st",
            "Gearbox (N)",
            "low max degree but large T; low T-skew (mesh-like)",
            lambda: gen.watts_strogatz(1200, 14, 0.05, seed=32),
        ),
        _spec(
            "nemeth25-mini",
            "st",
            "Nemeth25 (N)",
            "huge T but low per-vertex max (uniform quasi-clique bands)",
            lambda: gen.watts_strogatz(600, 26, 0.02, seed=33),
        ),
        _spec(
            "f2-mini",
            "st",
            "F2 (N)",
            "medium T-skew structural problem",
            lambda: gen.planted_cliques(900, 5400, [(9, 18)], seed=34),
        ),
        _spec(
            "gupta3-mini",
            "sc",
            "Gupta3 (N)",
            "huge T-skew: one dense core inside a sparse matrix graph",
            lambda: gen.planted_cliques(900, 3600, [(26, 1), (12, 4)], seed=35),
        ),
        _spec(
            "ldoor-mini",
            "sc",
            "ldoor (N)",
            "very low T-skew FEM mesh",
            lambda: gen.watts_strogatz(1600, 10, 0.02, seed=36),
        ),
        # ----- recommendation -------------------------------------------------
        _spec(
            "movierec-mini",
            "re",
            "MovieRec (N)",
            "huge T and T̂ from popular-item co-rating cliques",
            lambda: gen.bipartite_projection(600, 180, 5, item_skew=1.3, seed=41, max_raters=24),
        ),
        _spec(
            "recdate-mini",
            "re",
            "RecDate (N)",
            "enormous T-skew",
            lambda: gen.bipartite_projection(800, 320, 4, item_skew=1.7, seed=42, max_raters=18),
        ),
        # ----- biological ------------------------------------------------------
        _spec(
            "sc-ht-mini",
            "bi",
            "sc-ht genes (N)",
            "small, dense, large T-skew",
            lambda: gen.planted_cliques(300, 1500, [(15, 2), (8, 6)], seed=51),
        ),
        _spec(
            "antcolony6-mini",
            "bi",
            "AntColony6 (N)",
            "tiny, near-complete contact network, very low T-skew",
            lambda: gen.erdos_renyi_nm(164, 3300, seed=52),
        ),
        _spec(
            "antcolony5-mini",
            "bi",
            "AntColony5 (N)",
            "tiny, near-complete contact network, very low T-skew",
            lambda: gen.erdos_renyi_nm(152, 2800, seed=53),
        ),
        # ----- communication ---------------------------------------------------
        _spec(
            "jester2-mini",
            "co",
            "Jester2 (N)",
            "enormous T-skew (every user rates the same few jokes)",
            lambda: gen.bipartite_projection(650, 150, 3, item_skew=1.9, seed=61, max_raters=26),
        ),
        _spec(
            "flickr-photos-mini",
            "co",
            "Flickr photo relations (K)",
            "bulk stats similar to livemocha-mini but many more 4-cliques",
            lambda: gen.planted_cliques(1000, 6000, [(13, 14)], seed=62),
        ),
        # ----- economics --------------------------------------------------------
        _spec(
            "mbeacxc-mini",
            "ec",
            "mbeacxc (N)",
            "small dense input-output matrix graph, large T",
            lambda: gen.erdos_renyi_nm(492, 8000, seed=71),
        ),
        _spec(
            "orani678-mini",
            "ec",
            "orani678 (N)",
            "large T, low T̂",
            lambda: gen.planted_cliques(1200, 9000, [(8, 24)], seed=72),
        ),
        # ----- road -------------------------------------------------------------
        _spec(
            "usa-roads-mini",
            "ro",
            "USA roads (D)",
            "extremely low m/n and T; huge diameter",
            lambda: gen.road_grid(50, 50, extra_p=0.02, seed=81),
        ),
    ]
}


# ---------------------------------------------------------------------------
# Real datasets (SNAP), with a local cache and an offline fallback.
#
# The miniature generators above keep the whole registry runnable offline,
# but the parallel-runtime follow-ups (measured-vs-modeled speedups, the
# session warm/cold timings) need inputs big enough that per-worker warm-up
# does not dominate.  Each real dataset resolves in priority order:
#
# 1. a cached edge list under ``data_dir()`` (``<name>.el`` or the raw
#    SNAP ``<name>.txt.gz`` dropped there by hand or by
#    :func:`fetch_dataset`);
# 2. a network download — only when ``REPRO_AUTO_FETCH`` is set, so
#    offline runs (CI, tests) never stall on a socket;
# 3. a deterministic synthetic stand-in at the real graph's scale, built
#    by the same generators as the miniatures.
#
# :func:`dataset_provenance` reports which source actually served a load,
# and the benchmarks record it next to their timings.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RealDatasetSpec:
    """A real-world graph with download metadata and a synthetic fallback."""

    name: str
    category: str
    url: str
    why: str
    num_nodes: int  # published size, for the fallback and sanity checks
    num_edges: int
    fallback: Callable[[], CSRGraph]


REAL_DATASETS: Dict[str, RealDatasetSpec] = {
    spec.name: spec
    for spec in [
        RealDatasetSpec(
            "ca-grqc",
            "so",
            "https://snap.stanford.edu/data/ca-GrQc.txt.gz",
            "collaboration network: small, clique-rich (co-authorship "
            "cliques), the classic non-toy mining input",
            5242,
            14496,
            # Triadic-closure preferential attachment lands in the same
            # sparsity/clustering regime as co-authorship.
            lambda: gen.holme_kim(5242, 3, 0.55, seed=101),
        ),
        RealDatasetSpec(
            "email-eu-core",
            "co",
            "https://snap.stanford.edu/data/email-Eu-core.txt.gz",
            "dense institutional e-mail core: high m/n and triangle "
            "count concentrated in departments",
            1005,
            16706,
            # Department structure = planted dense groups over a sparse
            # background of cross-department mail.
            lambda: gen.planted_cliques(
                1005, 9000, [(22, 4), (12, 18)], seed=102
            ),
        ),
    ]
}

#: How the most recent load of each real dataset was satisfied:
#: ``"cache"`` | ``"download"`` | ``"fallback"``.
_PROVENANCE: Dict[str, str] = {}


def data_dir() -> str:
    """The local dataset cache directory (override: ``REPRO_DATA_DIR``)."""
    return os.environ.get(
        "REPRO_DATA_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "gms-repro"),
    )


def dataset_provenance(name: str) -> Optional[str]:
    """``"cache"``/``"download"``/``"fallback"`` for the last load of *name*."""
    return _PROVENANCE.get(name)


def _cached_paths(name: str) -> List[str]:
    base = data_dir()
    return [
        os.path.join(base, f"{name}.el"),
        os.path.join(base, f"{name}.txt.gz"),
    ]


def _parse_real_edge_list(path: str) -> CSRGraph:
    """Parse a (possibly gzipped) SNAP edge list into a compact CSR graph.

    SNAP files carry ``#`` comment headers, arbitrary (non-contiguous)
    vertex IDs, and — for directed sources like e-mail — both arc
    directions; IDs are relabeled densely and the builder's undirected
    cleaning (self-loop and duplicate removal, symmetrization) applies.
    """
    import numpy as np

    from .builder import build_undirected

    opener = gzip.open if path.endswith(".gz") else open
    sources: List[int] = []
    targets: List[int] = []
    with opener(path, "rt") as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#") or text.startswith("%"):
                continue
            fields = text.split()
            if len(fields) < 2:
                raise ValueError(f"{path}: malformed line {text!r}")
            sources.append(int(fields[0]))
            targets.append(int(fields[1]))
    arr = np.array([sources, targets], dtype=np.int64).T
    ids, relabeled = np.unique(arr, return_inverse=True)
    return build_undirected(len(ids), relabeled.reshape(arr.shape))


def fetch_dataset(name: str, timeout: float = 60.0) -> str:
    """Download a real dataset into the cache; return the cached path.

    Explicit network access — never called implicitly unless the
    ``REPRO_AUTO_FETCH`` environment variable is set.  The payload is
    parsed *before* being committed to the cache, so a failed or
    truncated download (server error page, cut connection) can never
    poison later loads.
    """
    from urllib.request import urlopen

    spec = REAL_DATASETS[name]
    os.makedirs(data_dir(), exist_ok=True)
    path = _cached_paths(name)[1]  # keep the raw .txt.gz
    with urlopen(spec.url, timeout=timeout) as response:
        payload = response.read()
    # Staging name keeps the .gz suffix (the parser sniffs it) but never
    # collides with the names _cached_paths() looks up.
    staging = os.path.join(data_dir(), f"{name}.part.txt.gz")
    with open(staging, "wb") as handle:
        handle.write(payload)
    try:
        _parse_real_edge_list(staging)
    except Exception:
        logger.debug("discarding unparseable staged download for %s "
                     "(%s)", name, staging, exc_info=True)
        os.remove(staging)
        raise
    os.replace(staging, path)
    return path


def _load_real(name: str) -> CSRGraph:
    spec = REAL_DATASETS[name]
    for path in _cached_paths(name):
        if os.path.exists(path):
            _PROVENANCE[name] = "cache"
            try:
                return _parse_real_edge_list(path)
            except Exception as exc:
                raise ValueError(
                    f"cached dataset file {path} is unreadable "
                    f"({exc}); delete it to fall back to the synthetic "
                    f"twin or re-fetch"
                ) from exc
    if os.environ.get("REPRO_AUTO_FETCH"):
        try:
            path = fetch_dataset(name)
            _PROVENANCE[name] = "download"
            return _parse_real_edge_list(path)
        except Exception:
            # Offline or blocked: fall through to the synthetic twin —
            # but leave a trail, or a misconfigured mirror looks
            # identical to an intentional offline run.
            logger.debug("auto-fetch of dataset %r failed; using the "
                         "synthetic fallback", name, exc_info=True)
    _PROVENANCE[name] = "fallback"
    return spec.fallback()


def _real_spec(real: RealDatasetSpec) -> DatasetSpec:
    return DatasetSpec(
        real.name,
        real.category,
        f"{real.name} (SNAP, real)",
        real.why + " (cached download, synthetic twin offline)",
        lambda: _load_real(real.name),
    )


DATASETS.update(
    {name: _real_spec(spec) for name, spec in REAL_DATASETS.items()}
)


def load_dataset(name: str) -> CSRGraph:
    """Load a registry dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.load()


def dataset_names(category: str | None = None) -> List[str]:
    """All dataset names, optionally restricted to a Table 7 category."""
    return [
        name
        for name, spec in DATASETS.items()
        if category is None or spec.category == category
    ]


def suite(kind: str = "default") -> List[str]:
    """Curated dataset suites for the benchmarks.

    ``"quick"`` — a 4-graph cross-category subset (Figure 1's layout);
    ``"default"`` — the broad Figure 4 sweep; ``"all"`` — everything.
    """
    if kind == "quick":
        return ["gearbox-mini", "jester2-mini", "antcolony5-mini", "orani678-mini"]
    if kind == "default":
        return [
            "chebyshev4-mini",
            "gearbox-mini",
            "gupta3-mini",
            "ep-trust-mini",
            "fb-comm-mini",
            "f2-mini",
            "sc-ht-mini",
            "mbeacxc-mini",
            "orani678-mini",
            "movierec-mini",
            "recdate-mini",
            "jester2-mini",
            "antcolony6-mini",
            "antcolony5-mini",
            "ldoor-mini",
            "usa-roads-mini",
            "youtube-mini",
            "flixster-mini",
            "libimseti-mini",
            "wikipedia-mini",
            "baidu-mini",
        ]
    if kind == "all":
        return sorted(DATASETS)
    raise ValueError(f"unknown suite {kind!r}")

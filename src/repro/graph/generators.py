"""Synthetic graph generators (paper section 4.2).

GMS integrates graph generators for the random-uniform (Erdős–Rényi) and
power-law (Kronecker) degree distributions so that single structural
parameters can be varied systematically.  Because this reproduction runs
offline, the generators below additionally serve as the *source of every
dataset*: :mod:`repro.graph.datasets` composes them into seeded miniature
analogs of each Table 7 graph category.

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.CSRGraph` objects.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .builder import build_undirected
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "erdos_renyi_nm",
    "kronecker",
    "barabasi_albert",
    "holme_kim",
    "watts_strogatz",
    "road_grid",
    "planted_cliques",
    "bipartite_projection",
    "star_of_cliques",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi(n: int, p: float, seed: int = 0) -> CSRGraph:
    """G(n, p): each of the ``n·(n-1)/2`` edges appears with probability p."""
    rng = _rng(seed)
    if n < 2 or p <= 0:
        return build_undirected(max(n, 0), [])
    # Sample the number of edges then draw them without replacement — O(m).
    total_pairs = n * (n - 1) // 2
    m = rng.binomial(total_pairs, min(p, 1.0))
    return erdos_renyi_nm(n, int(m), seed=int(rng.integers(1 << 31)))


def erdos_renyi_nm(n: int, m: int, seed: int = 0) -> CSRGraph:
    """G(n, m): exactly ``m`` distinct edges drawn uniformly."""
    rng = _rng(seed)
    total_pairs = n * (n - 1) // 2
    m = min(m, total_pairs)
    if m <= 0:
        return build_undirected(n, [])
    if total_pairs < 4 * m:
        # Dense regime: enumerate and choose.
        idx = rng.choice(total_pairs, size=m, replace=False)
        u, v = _unrank_pairs(idx, n)
        return build_undirected(n, np.stack([u, v], axis=1))
    # Sparse regime: rejection sampling of linear indices.
    chosen: set = set()
    while len(chosen) < m:
        draw = rng.integers(0, total_pairs, size=2 * (m - len(chosen)))
        chosen.update(draw.tolist())
        if len(chosen) > m:
            chosen = set(list(chosen)[:m])
    idx = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
    u, v = _unrank_pairs(idx, n)
    return build_undirected(n, np.stack([u, v], axis=1))


def _unrank_pairs(idx: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Map linear indices over the strict upper triangle to (u, v) pairs."""
    # Row-major upper triangle: offset(u) = u*n - u*(u+1)/2 - u... solve by
    # inverting the quadratic; done in float then fixed up.
    idx = idx.astype(np.float64)
    b = 2 * n - 1
    u = np.floor((b - np.sqrt(b * b - 8 * idx)) / 2).astype(np.int64)
    start = u * (np.int64(2) * n - u - 1) // 2
    # Fix rounding drift.
    too_far = start > idx
    while too_far.any():
        u[too_far] -= 1
        start = u * (np.int64(2) * n - u - 1) // 2
        too_far = start > idx
    v = (idx - start).astype(np.int64) + u + 1
    return u, v


def kronecker(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """Kronecker / R-MAT power-law generator (Graph500 parameters).

    ``n = 2^scale`` vertices and ``edge_factor · n`` sampled arcs, each drawn
    by ``scale`` recursive quadrant choices with probabilities
    ``(a, b, c, 1-a-b-c)``.  Duplicates and self-loops are dropped by the
    builder, so the effective ``m`` is slightly lower — as in GAPBS.
    """
    rng = _rng(seed)
    n = 1 << scale
    num_arcs = edge_factor * n
    u = np.zeros(num_arcs, dtype=np.int64)
    v = np.zeros(num_arcs, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for bit in range(scale):
        r = rng.random(num_arcs)
        # Quadrants: r<a → (0,0); r<a+b → (0,1); r<a+b+c → (1,0); else (1,1).
        u_bit = (r >= ab).astype(np.int64)
        v_bit = (((r >= a) & (r < ab)) | (r >= abc)).astype(np.int64)
        u |= u_bit << bit
        v |= v_bit << bit
    # Permute vertex IDs so degree is not correlated with ID.
    perm = rng.permutation(n).astype(np.int64)
    return build_undirected(n, np.stack([perm[u], perm[v]], axis=1))


def barabasi_albert(n: int, m_attach: int, seed: int = 0) -> CSRGraph:
    """Preferential attachment: each new vertex attaches to ``m_attach``."""
    rng = _rng(seed)
    m_attach = max(1, min(m_attach, n - 1))
    targets: List[int] = list(range(m_attach))
    repeated: List[int] = []
    edges: List[Tuple[int, int]] = []
    for source in range(m_attach, n):
        picked = set()
        while len(picked) < m_attach:
            if repeated and rng.random() < 0.9:
                cand = repeated[int(rng.integers(len(repeated)))]
            else:
                cand = int(rng.integers(source))
            picked.add(cand)
        for t in picked:
            edges.append((source, t))
            repeated.append(source)
            repeated.append(t)
    return build_undirected(n, edges)


def holme_kim(n: int, m_attach: int, p_triangle: float, seed: int = 0) -> CSRGraph:
    """Power-law cluster model: preferential attachment + triad closure.

    Produces social-network-like graphs — heavy-tailed degrees *and* many
    triangles — the structure that stresses clique-listing algorithms.
    """
    rng = _rng(seed)
    m_attach = max(1, min(m_attach, n - 1))
    adj: List[set] = [set() for _ in range(n)]
    repeated: List[int] = list(range(m_attach))
    for source in range(m_attach, n):
        last_target = -1
        added = 0
        while added < m_attach:
            close_triad = last_target >= 0 and rng.random() < p_triangle
            if close_triad and adj[last_target]:
                pool = list(adj[last_target])
                cand = pool[int(rng.integers(len(pool)))]
            else:
                cand = repeated[int(rng.integers(len(repeated)))]
            if cand != source and cand not in adj[source]:
                adj[source].add(cand)
                adj[cand].add(source)
                repeated.append(source)
                repeated.append(cand)
                last_target = cand
                added += 1
            else:
                last_target = -1
    edges = [(u, v) for u in range(n) for v in adj[u] if u < v]
    return build_undirected(n, edges)


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> CSRGraph:
    """Ring lattice with ``k`` nearest neighbors, rewired with prob. beta.

    Yields near-uniform degrees and a very *low* triangle-count skew — the
    stand-in for structural/scientific meshes (Gearbox, ldoor).
    """
    rng = _rng(seed)
    k = max(2, k - (k % 2))
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            if rng.random() < beta:
                w = int(rng.integers(n))
                while w == u:
                    w = int(rng.integers(n))
                edges.append((u, w))
            else:
                edges.append((u, v))
    return build_undirected(n, edges)


def road_grid(rows: int, cols: int, extra_p: float = 0.0, seed: int = 0) -> CSRGraph:
    """2-D grid: the road-network analog (huge diameter, almost no triangles)."""
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
            if extra_p > 0 and r + 1 < rows and c + 1 < cols:
                if rng.random() < extra_p:
                    edges.append((v, v + cols + 1))
    return build_undirected(rows * cols, edges)


def planted_cliques(
    n: int,
    background_m: int,
    cliques: Sequence[Tuple[int, int]],
    seed: int = 0,
    overlap: bool = False,
) -> CSRGraph:
    """Sparse ER background with planted cliques: ``[(size, count), ...]``.

    The resulting graphs have extreme triangle-count skew concentrated in
    the planted dense cores — the structure of Gupta3, Jester2, or RecDate
    in Table 7 — which creates exactly the load-imbalance regime the paper
    highlights for Bron–Kerbosch.
    """
    rng = _rng(seed)
    base = erdos_renyi_nm(n, background_m, seed=int(rng.integers(1 << 31)))
    edges = [tuple(e) for e in base.edge_array().tolist()]
    available = list(range(n))
    rng.shuffle(available)
    cursor = 0
    for size, count in cliques:
        for _ in range(count):
            if overlap or cursor + size > n:
                members = rng.choice(n, size=size, replace=False)
            else:
                members = np.array(available[cursor : cursor + size])
                cursor += size
            members = members.tolist()
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    edges.append((members[i], members[j]))
    return build_undirected(n, edges)


def bipartite_projection(
    n_users: int,
    n_items: int,
    ratings_per_user: int,
    item_skew: float = 1.2,
    seed: int = 0,
    max_raters: int = 25,
) -> CSRGraph:
    """Project a user–item bipartite graph onto users.

    Users who rated a common item become a clique over that item's raters,
    so popular items create huge dense blobs — reproducing the enormous
    triangle skew of recommendation networks (MovieRec, RecDate, Jester2).
    ``item_skew`` is the Zipf exponent of item popularity; ``max_raters``
    caps an item's clique size (a popularity saturation that keeps the
    miniature graphs minable while preserving the skew shape).
    """
    rng = _rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-item_skew)
    weights /= weights.sum()
    item_members: List[List[int]] = [[] for _ in range(n_items)]
    for user in range(n_users):
        items = rng.choice(
            n_items, size=min(ratings_per_user, n_items), replace=False, p=weights
        )
        for item in items.tolist():
            item_members[item].append(user)
    edges: List[Tuple[int, int]] = []
    for members in item_members:
        if len(members) > max_raters:
            chosen = rng.choice(len(members), size=max_raters, replace=False)
            members = [members[i] for i in chosen.tolist()]
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                edges.append((members[i], members[j]))
    return build_undirected(n_users, edges)


def star_of_cliques(
    clique_size: int, num_cliques: int, hub_degree: int = 0, seed: int = 0
) -> CSRGraph:
    """Disjoint cliques optionally joined through a hub vertex.

    A controlled workload for algorithmic-throughput studies: the number
    and size of maximal cliques is known in closed form.
    """
    n = clique_size * num_cliques + (1 if hub_degree > 0 else 0)
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    if hub_degree > 0:
        hub = n - 1
        rng = _rng(seed)
        for target in rng.choice(n - 1, size=min(hub_degree, n - 1), replace=False):
            edges.append((hub, int(target)))
    return build_undirected(n, edges)

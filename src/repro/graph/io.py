"""Graph I/O: edge-list files and binary CSR snapshots (pipeline stage 0).

Supports the whitespace-separated edge-list (``.el``) format the paper's
evaluation uses (Figure 11 labels graphs by their ``.el`` files), tolerating
``#`` and ``%`` comment lines (SNAP / KONECT headers), plus a compact
``.npz`` snapshot format for fast reload.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from .builder import build_directed, build_undirected
from .csr import CSRGraph

__all__ = ["read_edge_list", "write_edge_list", "save_npz", "load_npz"]


def read_edge_list(
    path: str | os.PathLike, *, directed: bool = False, num_nodes: int | None = None
) -> CSRGraph:
    """Read a whitespace-separated edge list file into a CSR graph.

    Lines starting with ``#`` or ``%`` are comments.  Vertex IDs must be
    non-negative integers; ``num_nodes`` defaults to ``max id + 1``.

    Raises
    ------
    ValueError
        On malformed lines (fewer than two fields, non-integer fields).
    """
    edges: List[Tuple[int, int]] = []
    max_id = -1
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#") or text.startswith("%"):
                continue
            fields = text.split()
            if len(fields) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {text!r}")
            try:
                u, v = int(fields[0]), int(fields[1])
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: non-integer vertex ID in {text!r}"
                ) from exc
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative vertex ID in {text!r}")
            edges.append((u, v))
            max_id = max(max_id, u, v)
    n = num_nodes if num_nodes is not None else max_id + 1
    build = build_directed if directed else build_undirected
    return build(max(n, 0), edges)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph as a ``u v`` edge list (one line per edge)."""
    with open(path, "w") as handle:
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` snapshot."""
    np.savez_compressed(
        path,
        offsets=graph.offsets,
        adjacency=graph.adjacency,
        directed=np.array([graph.directed]),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a CSR snapshot saved by :func:`save_npz`."""
    data = np.load(path)
    return CSRGraph(
        data["offsets"], data["adjacency"], directed=bool(data["directed"][0])
    )

"""Set-centric graph representation (paper section 5.3, Listing 2).

``SetGraph`` stores one *set* per vertex neighborhood, typed by the set
representation in use — the Python rendering of the C++ ``SetGraph<TSet>``
template.  Swapping the set class changes the layout of every neighborhood
(sorted arrays ↔ roaring bitmaps ↔ hash tables ↔ dense bitvectors) without
touching any algorithm code.
"""

from __future__ import annotations

from typing import List, Sequence, Type

from ..core.interface import SetBase
from ..core.roaring import RoaringSet
from .csr import CSRGraph

__all__ = ["SetGraph", "build_set_graph"]


class SetGraph:
    """A graph whose neighborhoods are GMS sets (Listing 2)."""

    __slots__ = ("_neighborhoods", "set_cls", "directed")

    def __init__(
        self,
        neighborhoods: Sequence[SetBase],
        set_cls: Type[SetBase],
        *,
        directed: bool = False,
    ):
        self._neighborhoods: List[SetBase] = list(neighborhoods)
        self.set_cls = set_cls
        self.directed = directed

    @property
    def num_nodes(self) -> int:
        return len(self._neighborhoods)

    @property
    def num_edges(self) -> int:
        total = sum(s.cardinality() for s in self._neighborhoods)
        return total if self.directed else total // 2

    def out_neigh(self, v: int) -> SetBase:
        """Return ``N(v)`` as a set (shared object — clone before mutating)."""
        return self._neighborhoods[v]

    def out_degree(self, v: int) -> int:
        return self._neighborhoods[v].cardinality()

    def has_edge(self, u: int, v: int) -> bool:
        return self._neighborhoods[u].contains(v)

    def vertices(self) -> range:
        return range(self.num_nodes)

    def storage_bytes(self) -> int:
        """Approximate resident size of all neighborhood sets.

        Sorted arrays cost 8 bytes/element (int64), hash sets ~= 32
        bytes/slot at 2/3 fill (CPython set), dense bitvectors n/8 bytes,
        roaring its serialized container sizes.
        """
        total = 0
        for s in self._neighborhoods:
            if isinstance(s, RoaringSet):
                total += s.storage_bytes()
            elif hasattr(s, "storage_bits"):
                total += s.storage_bits() // 8 + 1
            elif type(s).__name__ == "HashSet":
                total += 32 * max(s.cardinality(), 8)
            else:
                total += 8 * s.cardinality()
        return total

    def __repr__(self) -> str:
        return (
            f"SetGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"set={self.set_cls.__name__})"
        )


def build_set_graph(graph: CSRGraph, set_cls: Type[SetBase]) -> SetGraph:
    """Materialize a :class:`SetGraph` from a CSR graph.

    This is the representation-construction step whose peak memory the
    paper's section 8.9 analysis measures (CSR neighborhoods are converted
    one by one, so the CSR source plus the growing set graph are co-resident).
    """
    neighborhoods = [
        set_cls.from_sorted_array(graph.out_neigh(v)) for v in graph.vertices()
    ]
    return SetGraph(neighborhoods, set_cls, directed=graph.directed)

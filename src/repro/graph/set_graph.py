"""Set-centric graph representation (paper section 5.3, Listing 2).

``SetGraph`` stores one *set* per vertex neighborhood, typed by the set
representation in use — the Python rendering of the C++ ``SetGraph<TSet>``
template.  Swapping the set class changes the layout of every neighborhood
(sorted arrays ↔ roaring bitmaps ↔ hash tables ↔ dense bitvectors) without
touching any algorithm code.

Besides the plain :func:`build_set_graph` conversion, this module provides
the two materialization services the unified mining pipeline is built on:

* :func:`build_oriented_set_graph` — the ``dir(G)`` step (Listing 7) fused
  with representation conversion: the arc filter ``η(v) < η(u)`` and the
  per-vertex set construction run in one pass, without materializing an
  intermediate oriented CSR graph.
* :class:`MaterializationCache` — memoizes orderings and (graph, backend,
  ordering) materializations, so an experiment-suite run converts each
  combination exactly once no matter how many kernels consume it.
  Neighborhood sets handed out by the cache are **shared and read-only by
  contract**: kernels must clone (or ``intersect`` into fresh sets) before
  mutating.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Type

import numpy as np

from ..core.interface import SetBase
from ..core.roaring import RoaringSet
from .csr import CSRGraph

__all__ = [
    "SetGraph",
    "build_set_graph",
    "build_oriented_set_graph",
    "MaterializationCache",
]


class SetGraph:
    """A graph whose neighborhoods are GMS sets (Listing 2)."""

    __slots__ = ("_neighborhoods", "set_cls", "directed")

    def __init__(
        self,
        neighborhoods: Sequence[SetBase],
        set_cls: Type[SetBase],
        *,
        directed: bool = False,
    ):
        self._neighborhoods: List[SetBase] = list(neighborhoods)
        self.set_cls = set_cls
        self.directed = directed

    @property
    def num_nodes(self) -> int:
        return len(self._neighborhoods)

    @property
    def num_edges(self) -> int:
        total = sum(s.cardinality() for s in self._neighborhoods)
        return total if self.directed else total // 2

    def out_neigh(self, v: int) -> SetBase:
        """Return ``N(v)`` as a set (shared object — clone before mutating)."""
        return self._neighborhoods[v]

    def __getitem__(self, v: int) -> SetBase:
        """Index access to neighborhoods — lets a ``SetGraph`` drop in
        anywhere a ``vertex → SetBase`` mapping (dict/list adjacency) is
        expected, e.g. the Bron–Kerbosch engine."""
        return self._neighborhoods[v]

    def out_degree(self, v: int) -> int:
        return self._neighborhoods[v].cardinality()

    def has_edge(self, u: int, v: int) -> bool:
        return self._neighborhoods[u].contains(v)

    def vertices(self) -> range:
        return range(self.num_nodes)

    def storage_bytes(self) -> int:
        """Approximate resident size of all neighborhood sets.

        Sorted arrays cost 8 bytes/element (int64), hash sets ~= 32
        bytes/slot at 2/3 fill (CPython set), dense bitvectors n/8 bytes,
        roaring its serialized container sizes.
        """
        total = 0
        for s in self._neighborhoods:
            if isinstance(s, RoaringSet):
                total += s.storage_bytes()
            elif hasattr(s, "storage_bits"):
                total += s.storage_bits() // 8 + 1
            elif type(s).__name__ == "HashSet":
                total += 32 * max(s.cardinality(), 8)
            else:
                total += 8 * s.cardinality()
        return total

    def __repr__(self) -> str:
        return (
            f"SetGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"set={self.set_cls.__name__})"
        )


def build_set_graph(graph: CSRGraph, set_cls: Type[SetBase]) -> SetGraph:
    """Materialize a :class:`SetGraph` from a CSR graph.

    This is the representation-construction step whose peak memory the
    paper's section 8.9 analysis measures (CSR neighborhoods are converted
    one by one, so the CSR source plus the growing set graph are co-resident).
    """
    neighborhoods = [
        set_cls.from_sorted_array(graph.out_neigh(v)) for v in graph.vertices()
    ]
    return SetGraph(neighborhoods, set_cls, directed=graph.directed)


def build_oriented_set_graph(
    graph: CSRGraph, rank: np.ndarray, set_cls: Type[SetBase]
) -> SetGraph:
    """Materialize the rank-oriented DAG directly as a :class:`SetGraph`.

    Fuses the ``dir(G)`` arc filter of Listing 7 (keep ``v → u`` iff
    ``η(v) < η(u)``, ties broken by vertex ID — the shared
    :func:`~repro.graph.transforms.oriented_arcs` rule) with the
    representation conversion: the surviving out-neighborhoods are
    converted straight into ``set_cls`` sets — no intermediate oriented
    ``CSRGraph`` is allocated.
    """
    from .transforms import oriented_arcs

    offsets, arcs_dst = oriented_arcs(graph, rank)
    neighborhoods = [
        set_cls.from_sorted_array(arcs_dst[offsets[v] : offsets[v + 1]])
        for v in range(graph.num_nodes)
    ]
    return SetGraph(neighborhoods, set_cls, directed=True)


class MaterializationCache:
    """Memoizes the per-(graph, backend, ordering) materialization work.

    An experiment-suite run sweeps kernels × backends × orderings over one
    graph; without caching, every cell would recompute the vertex ordering
    and re-convert every neighborhood.  This cache memoizes the three
    products along the way:

    * ``ordering(graph, name, **kwargs)`` — the
      :class:`~repro.preprocess.ordering.OrderingResult`;
    * ``set_graph(graph, set_cls)`` — the undirected :class:`SetGraph`;
    * ``oriented(graph, set_cls, name, **kwargs)`` — the ordering together
      with the rank-oriented :class:`SetGraph` DAG.

    Entries are keyed by graph *identity* (plus backend class and ordering
    parameters); the cache keeps a strong reference to each keyed graph so
    an ``id()`` can never be recycled while its entry is alive.  The cache
    is meant to be owned by a driver (one per suite run) and dropped
    afterwards, not kept as a process-global.

    Contract: every :class:`SetGraph` handed out is **shared and
    read-only** — kernels must not mutate its neighborhood sets.
    ``hits``/``misses`` meter the materialization savings and are reported
    in the suite artifact.
    """

    def __init__(self) -> None:
        self._orderings: Dict[tuple, object] = {}
        self._set_graphs: Dict[tuple, SetGraph] = {}
        self._oriented: Dict[tuple, SetGraph] = {}
        self._pinned: Dict[int, CSRGraph] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, graph: CSRGraph) -> int:
        self._pinned[id(graph)] = graph
        return id(graph)

    def ordering(self, graph: CSRGraph, name: str, **kwargs):
        """Memoized :func:`~repro.preprocess.ordering.compute_ordering`."""
        key = (self._key(graph), name, tuple(sorted(kwargs.items())))
        if key in self._orderings:
            self.hits += 1
            return self._orderings[key]
        from ..preprocess.ordering import compute_ordering

        self.misses += 1
        result = compute_ordering(graph, name, **kwargs)
        self._orderings[key] = result
        return result

    def set_graph(self, graph: CSRGraph, set_cls: Type[SetBase]) -> SetGraph:
        """Memoized :func:`build_set_graph` for one backend."""
        key = (self._key(graph), set_cls)
        if key in self._set_graphs:
            self.hits += 1
            return self._set_graphs[key]
        self.misses += 1
        sg = build_set_graph(graph, set_cls)
        self._set_graphs[key] = sg
        return sg

    def oriented(
        self, graph: CSRGraph, set_cls: Type[SetBase], name: str, **kwargs
    ) -> Tuple[object, SetGraph]:
        """Memoized ``(OrderingResult, oriented SetGraph)`` for one cell."""
        order_res = self.ordering(graph, name, **kwargs)
        key = (self._key(graph), set_cls, name, tuple(sorted(kwargs.items())))
        if key in self._oriented:
            self.hits += 1
            return order_res, self._oriented[key]
        self.misses += 1
        dag = build_oriented_set_graph(graph, order_res.rank, set_cls)
        self._oriented[key] = dag
        return order_res, dag

    def stats(self) -> Dict[str, int]:
        """Hit/miss/entry counts for the suite artifact."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "orderings": len(self._orderings),
            "set_graphs": len(self._set_graphs),
            "oriented": len(self._oriented),
        }

    def clear(self) -> None:
        """Drop every entry (and the graph references pinning the keys)."""
        self._orderings.clear()
        self._set_graphs.clear()
        self._oriented.clear()
        self._pinned.clear()
        self.hits = 0
        self.misses = 0

"""Set-centric graph representation (paper section 5.3, Listing 2).

``SetGraph`` stores one *set* per vertex neighborhood, typed by the set
representation in use — the Python rendering of the C++ ``SetGraph<TSet>``
template.  Swapping the set class changes the layout of every neighborhood
(sorted arrays ↔ roaring bitmaps ↔ hash tables ↔ dense bitvectors) without
touching any algorithm code.

Besides the plain :func:`build_set_graph` conversion, this module provides
the two materialization services the unified mining pipeline is built on:

* :func:`build_oriented_set_graph` — the ``dir(G)`` step (Listing 7) fused
  with representation conversion: the arc filter ``η(v) < η(u)`` and the
  per-vertex set construction run in one pass, without materializing an
  intermediate oriented CSR graph.
* :class:`MaterializationCache` — memoizes orderings and (graph, backend,
  ordering) materializations, so an experiment-suite run converts each
  combination exactly once no matter how many kernels consume it.
  Neighborhood sets handed out by the cache are **shared and read-only by
  contract**: kernels must clone (or ``intersect`` into fresh sets) before
  mutating.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..core.interface import SetBase
from ..core.roaring import RoaringSet
from .csr import CSRGraph

__all__ = [
    "SetGraph",
    "build_set_graph",
    "build_oriented_set_graph",
    "flatten_set_graph",
    "unflatten_set_graph",
    "MaterializationCache",
]


class SetGraph:
    """A graph whose neighborhoods are GMS sets (Listing 2)."""

    __slots__ = ("_neighborhoods", "set_cls", "directed")

    def __init__(
        self,
        neighborhoods: Sequence[SetBase],
        set_cls: Type[SetBase],
        *,
        directed: bool = False,
    ):
        self._neighborhoods: List[SetBase] = list(neighborhoods)
        self.set_cls = set_cls
        self.directed = directed

    @property
    def num_nodes(self) -> int:
        return len(self._neighborhoods)

    @property
    def num_edges(self) -> int:
        total = sum(s.cardinality() for s in self._neighborhoods)
        return total if self.directed else total // 2

    def out_neigh(self, v: int) -> SetBase:
        """Return ``N(v)`` as a set (shared object — clone before mutating)."""
        return self._neighborhoods[v]

    def __getitem__(self, v: int) -> SetBase:
        """Index access to neighborhoods — lets a ``SetGraph`` drop in
        anywhere a ``vertex → SetBase`` mapping (dict/list adjacency) is
        expected, e.g. the Bron–Kerbosch engine."""
        return self._neighborhoods[v]

    def out_degree(self, v: int) -> int:
        return self._neighborhoods[v].cardinality()

    def has_edge(self, u: int, v: int) -> bool:
        return self._neighborhoods[u].contains(v)

    def vertices(self) -> range:
        return range(self.num_nodes)

    def storage_bytes(self) -> int:
        """Approximate resident size of all neighborhood sets.

        Sorted arrays cost 8 bytes/element (int64), hash sets ~= 32
        bytes/slot at 2/3 fill (CPython set), dense bitvectors n/8 bytes,
        roaring its serialized container sizes.
        """
        total = 0
        for s in self._neighborhoods:
            if isinstance(s, RoaringSet):
                total += s.storage_bytes()
            elif hasattr(s, "storage_bytes"):
                total += s.storage_bytes()  # e.g. AdaptiveSet: array+bitmap
            elif hasattr(s, "storage_bits"):
                total += s.storage_bits() // 8 + 1
            elif type(s).__name__ == "HashSet":
                total += 32 * max(s.cardinality(), 8)
            else:
                total += 8 * s.cardinality()
        return total

    def representation_histogram(self) -> Dict[str, int]:
        """How many neighborhoods live in each physical organization.

        Representation-polymorphic backends (the adaptive dispatcher)
        report per-set organizations via ``representation()``; uniform
        backends count under their class name.  This is the observability
        hook the ablation artifact uses to show the density policy's
        actual bitmap/array split on a given graph.
        """
        hist: Dict[str, int] = {}
        for s in self._neighborhoods:
            rep = getattr(s, "representation", None)
            name = rep() if callable(rep) else type(s).__name__
            hist[name] = hist.get(name, 0) + 1
        return hist

    def __repr__(self) -> str:
        return (
            f"SetGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"set={self.set_cls.__name__})"
        )


def build_set_graph(graph: CSRGraph, set_cls: Type[SetBase]) -> SetGraph:
    """Materialize a :class:`SetGraph` from a CSR graph.

    This is the representation-construction step whose peak memory the
    paper's section 8.9 analysis measures (CSR neighborhoods are converted
    one by one, so the CSR source plus the growing set graph are co-resident).
    """
    neighborhoods = [
        set_cls.from_sorted_array(graph.out_neigh(v)) for v in graph.vertices()
    ]
    return SetGraph(neighborhoods, set_cls, directed=graph.directed)


def build_oriented_set_graph(
    graph: CSRGraph, rank: np.ndarray, set_cls: Type[SetBase]
) -> SetGraph:
    """Materialize the rank-oriented DAG directly as a :class:`SetGraph`.

    Fuses the ``dir(G)`` arc filter of Listing 7 (keep ``v → u`` iff
    ``η(v) < η(u)``, ties broken by vertex ID — the shared
    :func:`~repro.graph.transforms.oriented_arcs` rule) with the
    representation conversion: the surviving out-neighborhoods are
    converted straight into ``set_cls`` sets — no intermediate oriented
    ``CSRGraph`` is allocated.
    """
    from .transforms import oriented_arcs

    offsets, arcs_dst = oriented_arcs(graph, rank)
    neighborhoods = [
        set_cls.from_sorted_array(arcs_dst[offsets[v] : offsets[v + 1]])
        for v in range(graph.num_nodes)
    ]
    return SetGraph(neighborhoods, set_cls, directed=True)


def flatten_set_graph(sg: SetGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten an exact :class:`SetGraph` to CSR-style member arrays.

    Returns ``(offsets, values)`` — ``values[offsets[v]:offsets[v+1]]``
    is the sorted member array of ``N(v)``.  This is the array form the
    shared-memory transport (:mod:`repro.platform.shm`) ships: two flat
    int64 arrays instead of a pickle of every neighborhood object.
    Only exact backends can be flattened (sketches cannot enumerate
    their members).
    """
    if not sg.set_cls.IS_EXACT:
        raise ValueError(
            f"cannot flatten inexact backend {sg.set_cls.__name__}"
        )
    n = sg.num_nodes
    counts = np.fromiter(
        (s.cardinality() for s in sg._neighborhoods), dtype=np.int64,
        count=n,
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    values = np.empty(int(offsets[-1]), dtype=np.int64)
    for v, s in enumerate(sg._neighborhoods):
        values[offsets[v]:offsets[v + 1]] = s.to_array()
    return offsets, values


def unflatten_set_graph(
    offsets: np.ndarray,
    values: np.ndarray,
    set_cls: Type[SetBase],
    *,
    directed: bool,
) -> SetGraph:
    """Rebuild a :class:`SetGraph` from :func:`flatten_set_graph` arrays.

    Neighborhoods are constructed via ``from_sorted_array`` on slices of
    *values* — for sorted-array backends those slices pass through as
    views, so rebuilding from shared-memory arrays copies nothing.
    """
    neighborhoods = [
        set_cls.from_sorted_array(values[offsets[v]:offsets[v + 1]])
        for v in range(len(offsets) - 1)
    ]
    return SetGraph(neighborhoods, set_cls, directed=directed)


def _picklable_by_reference(cls: type) -> bool:
    """True iff *cls* can be pickled as a module-attribute reference.

    Budget-derived sketch subclasses are created by class factories at run
    time and are not importable from their module, so payloads containing
    them cannot cross a process boundary.
    """
    import sys

    module = sys.modules.get(getattr(cls, "__module__", ""), None)
    return getattr(module, getattr(cls, "__qualname__", ""), None) is cls


class MaterializationCache:
    """Memoizes the per-(graph, backend, ordering) materialization work.

    An experiment-suite run sweeps kernels × backends × orderings over one
    graph; without caching, every cell would recompute the vertex ordering
    and re-convert every neighborhood.  This cache memoizes the three
    products along the way:

    * ``ordering(graph, name, **kwargs)`` — the
      :class:`~repro.preprocess.ordering.OrderingResult`;
    * ``set_graph(graph, set_cls)`` — the undirected :class:`SetGraph`;
    * ``oriented(graph, set_cls, name, **kwargs)`` — the ordering together
      with the rank-oriented :class:`SetGraph` DAG.

    Entries are keyed by graph *identity* (plus backend class and ordering
    parameters); the cache keeps a strong reference to each keyed graph so
    an ``id()`` can never be recycled while its entry is alive.

    ``budget_bytes`` bounds the resident :class:`SetGraph` payload (sized
    via :meth:`SetGraph.storage_bytes`): when an insertion pushes the
    total over the budget, least-recently-used entries are evicted until
    it fits — including, if the new entry alone exceeds the whole budget,
    the new entry itself, which is then handed out uncached.  Resident
    bytes therefore *never* exceed the budget.  Eviction only drops the
    cache's reference: :class:`SetGraph` objects already handed out stay
    fully valid (a later re-request simply rebuilds an equivalent one).
    ``OrderingResult`` entries are permutation-sized (two int arrays), a
    rounding error next to any materialized ``SetGraph``, so they are
    memoized unconditionally and do not count against the budget — but
    once a graph's *last* ``SetGraph`` entry is evicted, its memoized
    orderings and the pinning reference to the source ``CSRGraph`` are
    released too, so a bounded cache serving a stream of distinct graphs
    holds no memory (beyond the budget) for graphs it no longer caches.
    ``budget_bytes=None`` (the default) keeps the historical unbounded
    behavior — right for one suite run, wrong for a long-lived service.

    Contract: every :class:`SetGraph` handed out is **shared and
    read-only** — kernels must not mutate its neighborhood sets.
    ``hits``/``misses``/``evictions`` meter the materialization savings
    (and churn) and are reported in the suite artifact.
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 or None")
        self.budget_bytes = budget_bytes
        self._orderings: Dict[tuple, object] = {}
        # One LRU over both SetGraph families; keys are tagged with the
        # entry kind so stats() can still report them separately.
        self._graphs: "OrderedDict[tuple, SetGraph]" = OrderedDict()
        self._sizes: Dict[tuple, int] = {}
        self._pinned: Dict[int, CSRGraph] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.resident_bytes = 0

    def _key(self, graph: CSRGraph) -> int:
        self._pinned[id(graph)] = graph
        return id(graph)

    def _lookup(self, key: tuple) -> Optional[SetGraph]:
        entry = self._graphs.get(key)
        if entry is not None:
            self.hits += 1
            self._graphs.move_to_end(key)
        return entry

    def _release_if_unreferenced(self, graph_id: int) -> None:
        """Drop a graph's orderings and pin once its last entry is gone.

        Without this, a bounded cache serving a stream of distinct graphs
        would still pin every ``CSRGraph`` (and ordering) it ever saw —
        the budget would hold while real memory leaked.  Dropping the
        orderings trades an occasional cheap recompute for a hard bound.
        """
        if any(key[1] == graph_id for key in self._graphs):
            return
        for key in [k for k in self._orderings if k[0] == graph_id]:
            del self._orderings[key]
        self._pinned.pop(graph_id, None)

    def _insert(self, key: tuple, sg: SetGraph) -> None:
        """Insert *sg* as most-recently-used, then evict LRU-first to fit."""
        size = sg.storage_bytes()
        self._graphs[key] = sg
        self._sizes[key] = size
        self.resident_bytes += size
        self.insertions += 1
        if self.budget_bytes is None:
            return
        while self.resident_bytes > self.budget_bytes and self._graphs:
            victim, _ = self._graphs.popitem(last=False)
            self.resident_bytes -= self._sizes.pop(victim)
            self.evictions += 1
            self._release_if_unreferenced(victim[1])

    def ordering(self, graph: CSRGraph, name: str, **kwargs):
        """Memoized :func:`~repro.preprocess.ordering.compute_ordering`."""
        key = (self._key(graph), name, tuple(sorted(kwargs.items())))
        if key in self._orderings:
            self.hits += 1
            return self._orderings[key]
        from ..preprocess.ordering import compute_ordering

        self.misses += 1
        result = compute_ordering(graph, name, **kwargs)
        self._orderings[key] = result
        return result

    def set_graph(self, graph: CSRGraph, set_cls: Type[SetBase]) -> SetGraph:
        """Memoized :func:`build_set_graph` for one backend."""
        key = ("set_graph", self._key(graph), set_cls)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        self.misses += 1
        sg = build_set_graph(graph, set_cls)
        self._insert(key, sg)
        return sg

    def oriented(
        self, graph: CSRGraph, set_cls: Type[SetBase], name: str, **kwargs
    ) -> Tuple[object, SetGraph]:
        """Memoized ``(OrderingResult, oriented SetGraph)`` for one cell."""
        order_res = self.ordering(graph, name, **kwargs)
        key = ("oriented", self._key(graph), set_cls, name,
               tuple(sorted(kwargs.items())))
        cached = self._lookup(key)
        if cached is not None:
            return order_res, cached
        self.misses += 1
        dag = build_oriented_set_graph(graph, order_res.rank, set_cls)
        self._insert(key, dag)
        return order_res, dag

    def export_graph_state(self, graph: CSRGraph) -> Dict[str, Dict]:
        """Extract *graph*'s materialized state as a picklable payload.

        Returns the memoized orderings and :class:`SetGraph` entries keyed
        without the process-local ``id(graph)``, so another process can
        install them under its own identity via :meth:`seed_graph_state`.
        This is what lets a resident worker pool be pre-warmed by shipping
        the parent's materializations *once* instead of re-materializing
        in every worker.  Entries whose set class is not importable by
        reference (e.g. budget-derived sketch subclasses built by the
        ``with_shared_budget``/``with_k`` factories) are skipped — they
        cannot cross a process boundary, and the worker re-derives them
        locally instead.
        """
        gid = id(graph)
        orderings = {
            key[1:]: value
            for key, value in self._orderings.items() if key[0] == gid
        }
        graphs = {}
        for key, sg in self._graphs.items():
            if key[1] != gid or not _picklable_by_reference(key[2]):
                continue
            graphs[(key[0],) + key[2:]] = sg
        return {"orderings": orderings, "graphs": graphs}

    def seed_graph_state(self, graph: CSRGraph, state: Dict[str, Dict]) -> None:
        """Install an :meth:`export_graph_state` payload for *graph*.

        Entries are inserted as most-recently-used and count against the
        byte budget exactly like locally-built ones; already-present keys
        are left untouched.  Seeding meters as insertions, not as hits or
        misses — the stats keep reflecting this process's own lookups.
        """
        gid = self._key(graph)
        for subkey, value in state["orderings"].items():
            self._orderings.setdefault((gid,) + subkey, value)
        for subkey, sg in state["graphs"].items():
            key = (subkey[0], gid) + subkey[1:]
            if key not in self._graphs:
                self._insert(key, sg)

    def _count(self, kind: str) -> int:
        return sum(1 for key in self._graphs if key[0] == kind)

    #: The monotone event counters in :meth:`stats` (deltas make sense);
    #: the remaining fields are instantaneous gauges.
    MONOTONE_STATS = ("hits", "misses", "insertions", "evictions")

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction/entry/byte counts for the suite artifact."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "orderings": len(self._orderings),
            "set_graphs": self._count("set_graph"),
            "oriented": self._count("oriented"),
            "resident_bytes": self.resident_bytes,
            "budget_bytes": self.budget_bytes,
        }

    def stats_since(self, baseline: Dict[str, object]) -> Dict[str, object]:
        """Stats attributable to the work since *baseline* (a prior
        :meth:`stats` snapshot): monotone event counters as deltas,
        gauges (entry/byte counts) at their current values.

        This is what lets one long-lived cache serve many requests while
        each request's artifact reports only its *own* cache economics.
        """
        now = self.stats()
        return {
            key: (now[key] - baseline[key] if key in self.MONOTONE_STATS
                  else now[key])
            for key in now
        }

    def clear(self) -> None:
        """Drop every entry (and the graph references pinning the keys)."""
        self._orderings.clear()
        self._graphs.clear()
        self._sizes.clear()
        self._pinned.clear()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.resident_bytes = 0

"""Structural graph statistics — the Table 7 columns (paper section 4.2).

Computes the parameters the GMS specification uses to select datasets:
sparsity ``m/n``, maximum degree, triangle count ``T``, triangles per vertex
``T/n``, the triangle-count skew (max triangles at one vertex, ``T̂``),
degeneracy ``d``, and a BFS-sampled diameter estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphSummary", "triangle_counts", "total_triangles", "summarize"]


def triangle_counts(graph: CSRGraph) -> np.ndarray:
    """Per-vertex triangle participation counts.

    Uses the rank-merge (forward) strategy: orient edges by degree order and
    intersect out-neighborhoods per arc, crediting all three corners.  Runs
    in ``O(m^{3/2})`` like the paper's Rank Merge row in Table 8.
    """
    n = graph.num_nodes
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or graph.num_edges == 0:
        return counts
    from .transforms import orient_by_rank

    degrees = graph.degrees()
    rank = np.lexsort((np.arange(n), degrees))  # order positions by degree
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[rank] = np.arange(n)
    dag = graph if graph.directed else orient_by_rank(graph, rank_of)
    for u in range(n):
        neigh_u = dag.out_neigh(u)
        if len(neigh_u) < 1:
            continue
        for v in neigh_u.tolist():
            common = np.intersect1d(neigh_u, dag.out_neigh(v), assume_unique=True)
            if len(common):
                counts[u] += len(common)
                counts[v] += len(common)
                counts[common] += 1
    return counts


def total_triangles(graph: CSRGraph) -> int:
    """Total number of triangles ``T``."""
    return int(triangle_counts(graph).sum()) // 3


@dataclass
class GraphSummary:
    """One row of the Table 7 dataset characterization."""

    name: str
    n: int
    m: int
    sparsity: float
    max_degree: int
    degeneracy: int
    triangles: int
    triangles_per_vertex: float
    max_triangles_per_vertex: int
    diameter_estimate: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def t_skew(self) -> float:
        """Ratio of the max per-vertex triangle count to the average."""
        if self.triangles_per_vertex == 0:
            return 0.0
        # Each triangle contributes to three vertices, so per-vertex
        # participation averages 3T/n.
        mean_participation = 3.0 * self.triangles / max(self.n, 1)
        return self.max_triangles_per_vertex / max(mean_participation, 1e-12)

    def row(self) -> str:
        """Render in the Table 7 layout."""
        return (
            f"{self.name:<22} n={self.n:<7} m={self.m:<8} "
            f"m/n={self.sparsity:<7.1f} dmax={self.max_degree:<6} "
            f"d={self.degeneracy:<4} T={self.triangles:<9} "
            f"T/n={self.triangles_per_vertex:<8.1f} "
            f"T^={self.max_triangles_per_vertex:<8} skew={self.t_skew:.1f}"
        )


def summarize(graph: CSRGraph, name: str = "graph") -> GraphSummary:
    """Compute the full Table 7 row for *graph*."""
    from ..preprocess.ordering import degeneracy_order

    n = graph.num_nodes
    m = graph.num_edges
    tri = triangle_counts(graph)
    total = int(tri.sum()) // 3
    _, degeneracy = degeneracy_order(graph)
    return GraphSummary(
        name=name,
        n=n,
        m=m,
        sparsity=m / n if n else 0.0,
        max_degree=graph.max_degree(),
        degeneracy=degeneracy,
        triangles=total,
        triangles_per_vertex=total / n if n else 0.0,
        max_triangles_per_vertex=int(tri.max()) if n else 0,
        diameter_estimate=_diameter_estimate(graph),
    )


def _diameter_estimate(graph: CSRGraph, samples: int = 4) -> int:
    """Lower-bound the diameter with a few BFS sweeps (double sweep)."""
    n = graph.num_nodes
    if n == 0 or graph.num_edges == 0:
        return 0
    best = 0
    source = 0
    for _ in range(samples):
        dist = _bfs_distances(graph, source)
        reachable = dist >= 0
        far = int(dist[reachable].max()) if reachable.any() else 0
        best = max(best, far)
        candidates = np.nonzero(dist == far)[0]
        source = int(candidates[0]) if len(candidates) else 0
    return best


def _bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in graph.out_neigh(u).tolist():
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return dist

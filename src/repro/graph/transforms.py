"""Graph transformations used by the mining pipeline (paper Listings 6–7).

* :func:`orient_by_rank` — the ``dir(G)`` step of the k-clique algorithm
  (Listing 7): keep only arcs ``v → u`` with ``η(v) < η(u)``, turning the
  undirected graph into a DAG whose out-degrees are bounded by the
  (approximate) degeneracy when η is a degeneracy-style order.
* :func:`permute` — relabel vertices by a permutation (pipeline stage 3):
  the preprocessing hook for all reordering schemes.
* :func:`induced_subgraph` — extract ``G[S]`` with compacted vertex IDs,
  used by the subgraph-caching BK optimization and by FSM.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .builder import build_undirected
from .csr import CSRGraph

__all__ = [
    "oriented_arcs",
    "orient_by_rank",
    "permute",
    "induced_subgraph",
    "split_neighbors",
]


def oriented_arcs(
    graph: CSRGraph, rank: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``dir(G)`` arc filter: ``(offsets, targets)`` of the oriented DAG.

    Keeps arcs ``v → u`` with ``η(v) < η(u)`` (ties broken by vertex ID so
    the output is always a proper DAG), vectorized over all arcs at once.
    The single source of the orientation rule — both the CSR-producing
    :func:`orient_by_rank` and the set-materializing
    :func:`repro.graph.set_graph.build_oriented_set_graph` build on it, so
    the two paths can never diverge.
    """
    if graph.directed:
        raise ValueError("arc orientation expects an undirected graph")
    rank = np.asarray(rank)
    n = graph.num_nodes
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    targets = graph.adjacency
    keep = (rank[sources] < rank[targets]) | (
        (rank[sources] == rank[targets]) & (sources < targets)
    )
    counts = np.bincount(sources[keep], minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Arcs stay grouped by source (CSR order) and sorted by target.
    return offsets, targets[keep]


def orient_by_rank(graph: CSRGraph, rank: np.ndarray) -> CSRGraph:
    """Return the DAG keeping arcs from lower to higher rank.

    ``rank`` maps vertex → position in the chosen order η; ties are broken
    by vertex ID so the output is always a proper DAG.
    """
    offsets, arcs_dst = oriented_arcs(graph, rank)
    return CSRGraph(offsets, arcs_dst, directed=True)


def permute(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: new ID of vertex ``v`` is ``perm[v]``.

    The result stores sorted neighborhoods under the new IDs.  This is the
    relabeling step of the preprocessing stage (``3``): after permuting by
    a rank array, iterating vertices ``0..n-1`` visits them in rank order.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = graph.num_nodes
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of 0..n-1")
    sources = perm[np.repeat(np.arange(n, dtype=np.int64), graph.degrees())]
    targets = perm[graph.adjacency]
    counts = np.bincount(sources, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    order = np.lexsort((targets, sources))
    return CSRGraph(offsets, targets[order], directed=graph.directed)


def induced_subgraph(
    graph: CSRGraph, vertices: Sequence[int] | np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Return ``(G[S], S_sorted)``: the induced subgraph and its vertex map.

    Vertex ``i`` of the subgraph corresponds to ``S_sorted[i]`` in the
    original graph.
    """
    verts = np.unique(np.asarray(vertices, dtype=np.int64))
    index = {int(v): i for i, v in enumerate(verts)}
    edges = []
    member = np.zeros(graph.num_nodes, dtype=bool)
    member[verts] = True
    for v in verts.tolist():
        neigh = graph.out_neigh(v)
        kept = neigh[member[neigh]]
        vi = index[v]
        for u in kept.tolist():
            ui = index[u]
            if graph.directed or vi < ui:
                edges.append((vi, ui))
    if graph.directed:
        from .builder import build_directed

        return build_directed(len(verts), edges), verts
    return build_undirected(len(verts), edges), verts


def split_neighbors(
    neighbors: np.ndarray, rank: np.ndarray, pivot_rank: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``N(v)`` into later/earlier vertices w.r.t. a rank order.

    Implements the observation of section 6.2 that the initial
    ``P = N(v) ∩ {v_{i+1}..v_n}`` and ``X = N(v) ∩ {v_1..v_{i-1}}``
    intersections reduce to *splitting* the neighborhood by rank.
    Returns ``(later, earlier)`` as arrays of vertex IDs.
    """
    ranks = rank[neighbors]
    return neighbors[ranks > pivot_rank], neighbors[ranks < pivot_rank]

"""Subgraph isomorphism algorithms (paper section 6.4, appendix A)."""

from .glasgow import glasgow_count, glasgow_embeddings
from .turboiso import nec_classes, turboiso_count
from .parallel import SI_VARIANTS, SIVariantResult, run_si_variant, si_scaling_curve
from .vf2 import connectivity_order, vf2_count, vf2_embeddings
from .vf3light import rarity_order, vf3light_count, vf3light_embeddings

__all__ = [
    "vf2_embeddings",
    "vf2_count",
    "connectivity_order",
    "vf3light_embeddings",
    "vf3light_count",
    "rarity_order",
    "glasgow_embeddings",
    "glasgow_count",
    "turboiso_count",
    "nec_classes",
    "SI_VARIANTS",
    "SIVariantResult",
    "run_si_variant",
    "si_scaling_curve",
]

"""Glasgow-style constraint-programming subgraph isomorphism (appendix A).

The Glasgow solver treats subgraph isomorphism as constraint propagation
with *implied constraints*: beyond plain adjacency, any valid mapping must
also respect neighborhood-degree sequences (a query vertex whose neighbors
have high degrees cannot map to a target vertex whose neighbors are all
low-degree).  This implementation reproduces the core ideas at "light"
scale: domain initialization with degree + neighborhood-degree-sequence
filtering, unit propagation, and smallest-domain-first search.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["glasgow_embeddings", "glasgow_count"]


def _neighbor_degree_signature(graph: CSRGraph, v: int, cap: int = 8) -> List[int]:
    """Descending degrees of v's neighbors (truncated) — implied constraint."""
    degs = sorted(
        (graph.out_degree(u) for u in graph.out_neigh(v).tolist()), reverse=True
    )
    return degs[:cap]


def _signature_dominates(target_sig: List[int], query_sig: List[int]) -> bool:
    """Target signature must dominate the query's element-wise."""
    if len(target_sig) < len(query_sig):
        return False
    return all(t >= q for t, q in zip(target_sig, query_sig))


def glasgow_embeddings(
    target: CSRGraph,
    query: CSRGraph,
    *,
    induced: bool = True,
    limit: Optional[int] = None,
) -> Iterator[List[int]]:
    """Yield embeddings using domain filtering + smallest-domain search."""
    nq, nt = query.num_nodes, target.num_nodes
    if nq == 0:
        yield []
        return
    q_sigs = [_neighbor_degree_signature(query, q) for q in range(nq)]
    t_sigs = [_neighbor_degree_signature(target, t) for t in range(nt)]
    t_deg = target.degrees()
    q_deg = query.degrees()
    domains: List[np.ndarray] = []
    for q in range(nq):
        dom = [
            t
            for t in range(nt)
            if t_deg[t] >= q_deg[q] and _signature_dominates(t_sigs[t], q_sigs[q])
        ]
        if not dom:
            return
        domains.append(np.asarray(dom, dtype=np.int64))

    assignment = [-1] * nq
    used = np.zeros(nt, dtype=bool)
    emitted = 0

    def live_domain(q: int) -> np.ndarray:
        dom = domains[q]
        dom = dom[~used[dom]]
        # Propagate adjacency constraints from assigned neighbors.
        for qn in query.out_neigh(q).tolist():
            tn = assignment[qn]
            if tn >= 0:
                dom = np.intersect1d(dom, target.out_neigh(tn), assume_unique=True)
        return dom

    def consistent(q: int, t: int) -> bool:
        q_neigh = set(query.out_neigh(q).tolist())
        for qm in range(nq):
            tm = assignment[qm]
            if tm < 0 or qm == q:
                continue
            adj_q = qm in q_neigh
            adj_t = target.has_edge(t, tm)
            if adj_q and not adj_t:
                return False
            if induced and not adj_q and adj_t:
                return False
        return True

    def search() -> Iterator[List[int]]:
        unassigned = [q for q in range(nq) if assignment[q] < 0]
        if not unassigned:
            yield list(assignment)
            return
        # Smallest live domain first (fail-first heuristic).
        q = min(unassigned, key=lambda x: len(live_domain(x)))
        for t in live_domain(q).tolist():
            if not consistent(q, t):
                continue
            assignment[q] = t
            used[t] = True
            yield from search()
            assignment[q] = -1
            used[t] = False

    for mapping in search():
        yield mapping
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def glasgow_count(target: CSRGraph, query: CSRGraph, **kwargs) -> int:
    """Number of embeddings found by the Glasgow-style solver."""
    return sum(1 for _ in glasgow_embeddings(target, query, **kwargs))

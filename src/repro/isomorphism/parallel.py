"""Parallel subgraph isomorphism: the GMS optimization ladder (section 6.4).

The paper accelerates the parallel VF3-Light baseline with, cumulatively:

1. **work splitting** — threads receive lists of root vertices from which
   they start recursive backtracking;
2. **work stealing** — idle threads steal root vertices from a lock-free
   queue (diverse graph structure makes per-root costs highly variable);
3. **SIMD** — vectorized candidate filtering (here: numpy boolean masks in
   the domain computation, the Python stand-in for vectorized binary
   search);
4. **precompute** — candidate domains per query vertex computed once,
   up front.

Because the GIL forbids real thread parallelism, each per-root backtracking
task is executed sequentially and *timed*, and the recorded task costs are
replayed through the discrete-event scheduler of
:mod:`repro.runtime.scheduler` to produce the thread-scaling curves of
Figure 7.  The relative ladder — each optimization shaving real measured
work, stealing fixing the load imbalance that static splitting leaves — is
preserved because the task costs are real.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.scheduler import simulate_makespan
from .vf3light import vf3light_embeddings

__all__ = ["SIVariantResult", "run_si_variant", "SI_VARIANTS", "si_scaling_curve"]

#: The Figure 7 ladder, from baseline to fully optimized.
SI_VARIANTS = (
    "baseline",  # VF3-Light, no precompute, static splitting
    "splitting",  # + work splitting (finer tasks)
    "stealing",  # + work stealing
    "simd",  # + vectorized candidate filtering
    "precompute",  # + precomputed candidate domains
)


@dataclass
class SIVariantResult:
    """Per-variant outcome: embeddings, task costs, scheduling policy."""

    variant: str
    embeddings: int
    task_costs: List[float]
    policy: str
    setup_seconds: float = 0.0

    def simulated_runtime(self, threads: int) -> float:
        """Simulated wall time on *threads* workers (+ sequential setup)."""
        return self.setup_seconds + simulate_makespan(
            self.task_costs, threads, self.policy
        )


def _variant_flags(variant: str) -> Dict[str, object]:
    if variant not in SI_VARIANTS:
        raise ValueError(f"unknown SI variant {variant!r}; known: {SI_VARIANTS}")
    ladder = SI_VARIANTS.index(variant)
    return {
        "chunked": ladder < 1,  # baseline: coarse chunks of roots
        "policy": "static" if ladder < 2 else "dynamic",
        "simd": ladder >= 3,
        "precompute": ladder >= 4,
    }


def run_si_variant(
    target: CSRGraph,
    queries: Sequence[CSRGraph],
    variant: str,
    *,
    induced: bool = True,
    target_labels: Optional[np.ndarray] = None,
    query_labels: Optional[Sequence[np.ndarray]] = None,
    limit_per_root: Optional[int] = None,
) -> SIVariantResult:
    """Execute (sequentially, timed per task) one Figure 7 variant.

    A *task* is one ``(query, root vertex)`` backtracking subtree in the
    fine-splitting variants, or a contiguous chunk of roots in the coarse
    baseline.
    """
    flags = _variant_flags(variant)
    total = 0
    task_costs: List[float] = []
    setup = 0.0
    n = target.num_nodes
    for qi, query in enumerate(queries):
        ql = query_labels[qi] if query_labels is not None else None
        t0 = time.perf_counter()
        # The precompute variant pays domain setup once per query, counted
        # as (parallelizable but tiny) setup cost.
        setup += time.perf_counter() - t0
        roots_groups: List[List[int]]
        all_roots = list(range(n))
        if flags["chunked"]:
            chunk = max(1, n // 8)
            roots_groups = [
                all_roots[i : i + chunk] for i in range(0, n, chunk)
            ]
        else:
            roots_groups = [[r] for r in all_roots]
        for roots in roots_groups:
            t1 = time.perf_counter()
            found = sum(
                1
                for _ in vf3light_embeddings(
                    target,
                    query,
                    induced=induced,
                    target_labels=target_labels,
                    query_labels=ql,
                    roots=roots,
                    precompute=bool(flags["precompute"]),
                    simd=bool(flags["simd"]),
                    limit=limit_per_root,
                )
            )
            task_costs.append(time.perf_counter() - t1)
            total += found
    return SIVariantResult(
        variant=variant,
        embeddings=total,
        task_costs=task_costs,
        policy=str(flags["policy"]),
        setup_seconds=setup,
    )


def si_scaling_curve(
    result: SIVariantResult, thread_counts: Sequence[int]
) -> List[float]:
    """Simulated runtimes at each thread count (the Figure 7 y-axis)."""
    return [result.simulated_runtime(p) for p in thread_counts]

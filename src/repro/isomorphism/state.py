"""Shared state machinery for the subgraph-isomorphism algorithms.

Both VF2 and VF3-Light maintain a partial mapping ``query → target`` and
extend it one pair at a time, backtracking on infeasibility.  This module
holds the mapping state plus the feasibility checks shared by the family;
the algorithms differ in their vertex orderings, candidate generation, and
pruning strength (paper section 6.4 / appendix A).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["MatchState", "degree_prune_ok"]


class MatchState:
    """Partial embedding of a query graph into a target graph."""

    __slots__ = ("query", "target", "core_q", "used_t", "depth")

    def __init__(self, query: CSRGraph, target: CSRGraph):
        self.query = query
        self.target = target
        self.core_q: List[int] = [-1] * query.num_nodes  # query → target
        self.used_t = np.zeros(target.num_nodes, dtype=bool)
        self.depth = 0

    def assign(self, q: int, t: int) -> None:
        self.core_q[q] = t
        self.used_t[t] = True
        self.depth += 1

    def unassign(self, q: int, t: int) -> None:
        self.core_q[q] = -1
        self.used_t[t] = False
        self.depth -= 1

    def is_complete(self) -> bool:
        return self.depth == self.query.num_nodes

    def mapping(self) -> List[int]:
        return list(self.core_q)

    def feasible(self, q: int, t: int, *, induced: bool) -> bool:
        """Consistency of the extension ``q → t`` with the partial mapping.

        Non-induced: every mapped query-neighbor of ``q`` must map to a
        target-neighbor of ``t``.  Induced additionally requires mapped
        query *non*-neighbors to map to target non-neighbors of ``t``.
        """
        query, target, core_q = self.query, self.target, self.core_q
        q_neigh = query.out_neigh(q)
        neigh_set = set(q_neigh.tolist())
        for qm in range(query.num_nodes):
            tm = core_q[qm]
            if tm < 0 or qm == q:
                continue
            adjacent_q = qm in neigh_set
            adjacent_t = target.has_edge(t, tm)
            if adjacent_q and not adjacent_t:
                return False
            if induced and not adjacent_q and adjacent_t:
                return False
        return True


def degree_prune_ok(
    query: CSRGraph, target: CSRGraph, q: int, t: int, induced: bool
) -> bool:
    """Cheap degree-based pruning: a target vertex cannot host a query
    vertex of larger degree (non-induced lower bound)."""
    return target.out_degree(t) >= query.out_degree(q)

"""TurboISO-style subgraph isomorphism (paper §4.1.1, appendix A).

TurboISO (Han et al.) departs from pure backtracking with two devices this
reproduction keeps at "light" scale:

* **NEC (Neighborhood Equivalence Class) query compression** — query
  vertices with identical labels and identical neighborhoods are matched
  as an interchangeable group, collapsing permutations of equivalent
  vertices into one search branch that is expanded combinatorially at
  output time;
* **candidate-region exploration** — for each image of the query's start
  vertex, a region of candidate vertices per query vertex is collected
  first (by BFS from the start image, label/degree filtered), and the
  enumeration runs inside the (small) region instead of the whole target.

This gives the same embedding *count* semantics as VF2's non-induced
matching, which the tests cross-check.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from .vf2 import connectivity_order

__all__ = ["turboiso_count", "nec_classes"]


def nec_classes(
    query: CSRGraph, query_labels: Optional[np.ndarray] = None
) -> List[List[int]]:
    """Group query vertices into Neighborhood Equivalence Classes.

    Two vertices are NEC-equivalent when they share a label and exactly
    the same neighborhood (excluding each other) — e.g. the leaves of a
    star.  Matching one representative and multiplying by the class
    permutations prunes redundant search.
    """
    n = query.num_nodes
    groups: Dict[Tuple, List[int]] = {}
    for v in range(n):
        neigh = frozenset(int(u) for u in query.out_neigh(v).tolist()) - {v}
        label = int(query_labels[v]) if query_labels is not None else 0
        # Two mutually adjacent twins also form a class; fold the twin
        # itself out of the signature.
        key = (label, frozenset(neigh - {v}))
        groups.setdefault(key, []).append(v)
    # Split groups whose members do not actually share neighborhoods
    # modulo each other (conservative exactness check).
    out: List[List[int]] = []
    for members in groups.values():
        while members:
            v = members[0]
            same = [
                u
                for u in members
                if frozenset(query.out_neigh(u).tolist()) - {v}
                == frozenset(query.out_neigh(v).tolist()) - {u}
            ]
            out.append(same)
            members = [u for u in members if u not in same]
    return out


def _region(
    target: CSRGraph,
    query: CSRGraph,
    start_q: int,
    start_t: int,
    order: Sequence[int],
    t_labels: Optional[np.ndarray],
    q_labels: Optional[np.ndarray],
) -> Optional[Dict[int, np.ndarray]]:
    """Collect the candidate region rooted at ``start_q → start_t``."""
    t_deg = target.degrees()
    q_deg = query.degrees()

    def compatible(q: int, t: int) -> bool:
        if t_deg[t] < q_deg[q]:
            return False
        if t_labels is not None and q_labels is not None:
            return bool(t_labels[t] == q_labels[q])
        return True

    if not compatible(start_q, start_t):
        return None
    region: Dict[int, np.ndarray] = {start_q: np.array([start_t])}
    for q in order[1:]:
        # Candidates: target neighbors of any already-regioned query
        # neighbor's candidates, label/degree filtered.
        pools = []
        for qn in query.out_neigh(q).tolist():
            if qn in region:
                member_neighbors = [
                    target.out_neigh(int(t)) for t in region[qn].tolist()
                ]
                pools.append(
                    np.unique(np.concatenate(member_neighbors))
                    if member_neighbors
                    else np.empty(0, dtype=np.int64)
                )
        if pools:
            cands = pools[0]
            for p in pools[1:]:
                cands = np.intersect1d(cands, p, assume_unique=True)
        else:
            cands = np.arange(target.num_nodes)
        cands = np.asarray(
            [t for t in cands.tolist() if compatible(q, int(t))],
            dtype=np.int64,
        )
        if len(cands) == 0:
            return None
        region[q] = cands
    return region


def turboiso_count(
    target: CSRGraph,
    query: CSRGraph,
    *,
    target_labels: Optional[np.ndarray] = None,
    query_labels: Optional[np.ndarray] = None,
) -> int:
    """Count non-induced embeddings with region exploration + NEC."""
    nq = query.num_nodes
    if nq == 0:
        return 1
    order = connectivity_order(query)
    classes = nec_classes(query, query_labels)
    class_of = {}
    for ci, members in enumerate(classes):
        for v in members:
            class_of[v] = ci

    start_q = order[0]
    total = 0
    used = np.zeros(target.num_nodes, dtype=bool)
    assignment: Dict[int, int] = {}

    def enumerate_region(region: Dict[int, np.ndarray], idx: int) -> int:
        if idx == len(order):
            return 1
        q = order[idx]
        count = 0
        for t in region[q].tolist():
            if used[t]:
                continue
            ok = True
            for qn in query.out_neigh(q).tolist():
                if qn in assignment and not target.has_edge(t, assignment[qn]):
                    ok = False
                    break
            if not ok:
                continue
            # NEC symmetry breaking: within a class, force ascending target
            # IDs; compensated by the factorial multiplier below.
            ci = class_of[q]
            prior = [
                assignment[u]
                for u in classes[ci]
                if u in assignment and u != q
            ]
            if prior and t < max(prior):
                continue
            assignment[q] = t
            used[t] = True
            count += enumerate_region(region, idx + 1)
            used[t] = False
            del assignment[q]
        return count

    multiplier = 1
    for members in classes:
        for i in range(2, len(members) + 1):
            multiplier *= i

    for start_t in range(target.num_nodes):
        region = _region(
            target, query, start_q, start_t, order, target_labels,
            query_labels,
        )
        if region is None:
            continue
        total += enumerate_region(region, 0)
    return total * multiplier

"""VF2 subgraph isomorphism (paper section 4.1.1 / appendix A).

The classic Cordella et al. backtracking algorithm, supporting both the
*non-induced* (monomorphism) and *induced* variants, with optional vertex
labels.  The query vertices are visited in a connectivity-preserving order
(each vertex after the first has a previously-mapped neighbor whenever the
query is connected), and candidates for a vertex are drawn from the target
neighborhoods of already-mapped vertices — the standard VF2 candidate-pair
generation.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .state import MatchState, degree_prune_ok

__all__ = ["vf2_embeddings", "vf2_count", "connectivity_order"]


def connectivity_order(query: CSRGraph) -> List[int]:
    """BFS-style order starting at the max-degree vertex.

    Guarantees (for connected queries) that every vertex except the first
    has at least one earlier neighbor — the prerequisite of neighborhood-
    driven candidate generation.
    """
    n = query.num_nodes
    if n == 0:
        return []
    degrees = query.degrees()
    start = int(np.argmax(degrees))
    seen = [False] * n
    order = [start]
    seen[start] = True
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v in query.out_neigh(u).tolist():
                if not seen[v]:
                    seen[v] = True
                    order.append(v)
                    nxt.append(v)
        frontier = nxt
    for v in range(n):  # disconnected queries: append leftovers
        if not seen[v]:
            order.append(v)
    return order


def _candidates(
    state: MatchState, order: List[int], q_index: int
) -> Sequence[int]:
    """Candidate target vertices for the next query vertex."""
    q = order[q_index]
    query, target = state.query, state.target
    # Prefer anchoring at a mapped query-neighbor: candidates are then the
    # unmapped target-neighbors of its image.
    for qn in query.out_neigh(q).tolist():
        tn = state.core_q[qn]
        if tn >= 0:
            neigh = target.out_neigh(tn)
            return neigh[~state.used_t[neigh]].tolist()
    unused = np.nonzero(~state.used_t)[0]
    return unused.tolist()


def vf2_embeddings(
    target: CSRGraph,
    query: CSRGraph,
    *,
    induced: bool = False,
    target_labels: Optional[np.ndarray] = None,
    query_labels: Optional[np.ndarray] = None,
    limit: Optional[int] = None,
    roots: Optional[Sequence[int]] = None,
) -> Iterator[List[int]]:
    """Yield embeddings as ``query-vertex → target-vertex`` lists.

    ``roots`` restricts the images of the *first* query vertex — the hook
    the parallel driver uses for work splitting (section 6.4).
    """
    order = connectivity_order(query)
    if not order:
        yield []
        return
    state = MatchState(query, target)
    labels_ok = _label_checker(target_labels, query_labels)
    emitted = 0

    first = order[0]
    if roots is None:
        root_candidates: Sequence[int] = range(target.num_nodes)
    else:
        root_candidates = roots

    stack_yield: List[List[int]] = []

    def extend(idx: int) -> Iterator[List[int]]:
        nonlocal emitted
        if idx == len(order):
            yield state.mapping()
            return
        q = order[idx]
        cands = _candidates(state, order, idx) if idx > 0 else root_candidates
        for t in cands:
            if state.used_t[t]:
                continue
            if not labels_ok(q, t):
                continue
            if not degree_prune_ok(query, target, q, t, induced):
                continue
            if not state.feasible(q, t, induced=induced):
                continue
            state.assign(q, t)
            yield from extend(idx + 1)
            state.unassign(q, t)

    for mapping in extend(0):
        yield mapping
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def _label_checker(target_labels, query_labels):
    if target_labels is None or query_labels is None:
        return lambda q, t: True
    tl = np.asarray(target_labels)
    ql = np.asarray(query_labels)
    return lambda q, t: tl[t] == ql[q]


def vf2_count(
    target: CSRGraph,
    query: CSRGraph,
    *,
    induced: bool = False,
    target_labels: Optional[np.ndarray] = None,
    query_labels: Optional[np.ndarray] = None,
    limit: Optional[int] = None,
) -> int:
    """Number of embeddings (vertex-labeled maps, not automorphism classes)."""
    return sum(
        1
        for _ in vf2_embeddings(
            target,
            query,
            induced=induced,
            target_labels=target_labels,
            query_labels=query_labels,
            limit=limit,
        )
    )

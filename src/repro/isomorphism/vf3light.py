"""VF3-Light subgraph isomorphism (paper section 6.4 / appendix A).

VF3-Light (Carletti et al.) keeps VF3's node-classification and ordering
machinery but drops the expensive lookahead sets ("doing less is more
effective").  This implementation reproduces those two ingredients:

* **classification** — target vertices are bucketed by (label, degree); a
  query vertex can only map into buckets with compatible label and degree
  at least its own;
* **ordering** — query vertices are visited rarest-candidate-domain first
  (breaking ties by descending degree), subject to connectivity;

plus the light feasibility rule set (the same consistency checks as VF2,
without lookahead).  The optional *precompute* flag materializes the
candidate domains once up front — the GMS "precompute scheme" optimization
— and *simd* evaluates the label/degree filters with vectorized numpy masks,
standing in for the SIMD binary-search vectorization of section 8.5.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .state import MatchState

__all__ = ["vf3light_embeddings", "vf3light_count", "rarity_order"]


def _domains(
    target: CSRGraph,
    query: CSRGraph,
    target_labels: Optional[np.ndarray],
    query_labels: Optional[np.ndarray],
    simd: bool,
) -> List[np.ndarray]:
    """Candidate domain of each query vertex (label + degree filtered)."""
    t_deg = target.degrees()
    q_deg = query.degrees()
    domains: List[np.ndarray] = []
    if simd:
        # Vectorized: one boolean mask per query vertex.
        for q in range(query.num_nodes):
            mask = t_deg >= q_deg[q]
            if target_labels is not None and query_labels is not None:
                mask &= np.asarray(target_labels) == query_labels[q]
            domains.append(np.nonzero(mask)[0].astype(np.int64))
    else:
        for q in range(query.num_nodes):
            dom = [
                t
                for t in range(target.num_nodes)
                if t_deg[t] >= q_deg[q]
                and (
                    target_labels is None
                    or query_labels is None
                    or target_labels[t] == query_labels[q]
                )
            ]
            domains.append(np.asarray(dom, dtype=np.int64))
    return domains


def rarity_order(query: CSRGraph, domain_sizes: Sequence[int]) -> List[int]:
    """Visit rarest-domain query vertices first, keeping connectivity."""
    n = query.num_nodes
    if n == 0:
        return []
    chosen: List[int] = []
    in_order = [False] * n
    # Seed: globally rarest domain, ties by max degree.
    degrees = query.degrees()
    seed = min(range(n), key=lambda v: (domain_sizes[v], -degrees[v]))
    chosen.append(seed)
    in_order[seed] = True
    while len(chosen) < n:
        frontier = [
            v
            for v in range(n)
            if not in_order[v]
            and any(in_order[u] for u in query.out_neigh(v).tolist())
        ]
        pool = frontier if frontier else [v for v in range(n) if not in_order[v]]
        nxt = min(pool, key=lambda v: (domain_sizes[v], -degrees[v]))
        chosen.append(nxt)
        in_order[nxt] = True
    return chosen


def vf3light_embeddings(
    target: CSRGraph,
    query: CSRGraph,
    *,
    induced: bool = True,
    target_labels: Optional[np.ndarray] = None,
    query_labels: Optional[np.ndarray] = None,
    limit: Optional[int] = None,
    roots: Optional[Sequence[int]] = None,
    precompute: bool = True,
    simd: bool = False,
) -> Iterator[List[int]]:
    """Yield embeddings with the VF3-Light strategy.

    ``roots`` restricts the first query vertex's images (work splitting);
    ``precompute``/``simd`` toggle the GMS optimizations of section 8.5.
    """
    if query.num_nodes == 0:
        yield []
        return
    if precompute:
        domains = _domains(target, query, target_labels, query_labels, simd)
    else:
        # Domains computed lazily per extension — the unoptimized baseline.
        domains = None
    if domains is not None:
        order = rarity_order(query, [len(d) for d in domains])
    else:
        order = rarity_order(query, [target.num_nodes] * query.num_nodes)
    state = MatchState(query, target)
    t_deg = target.degrees()
    q_deg = query.degrees()
    tl = np.asarray(target_labels) if target_labels is not None else None
    ql = np.asarray(query_labels) if query_labels is not None else None
    emitted = 0

    def candidate_pool(idx: int) -> Sequence[int]:
        q = order[idx]
        if idx == 0:
            if roots is not None:
                return roots
            if domains is not None:
                return domains[q].tolist()
            return range(target.num_nodes)
        # Anchor on a mapped neighbor when one exists.
        for qn in query.out_neigh(q).tolist():
            tn = state.core_q[qn]
            if tn >= 0:
                neigh = target.out_neigh(tn)
                return neigh[~state.used_t[neigh]].tolist()
        if domains is not None:
            dom = domains[q]
            return dom[~state.used_t[dom]].tolist()
        return np.nonzero(~state.used_t)[0].tolist()

    def ok(q: int, t: int) -> bool:
        if t_deg[t] < q_deg[q]:
            return False
        if tl is not None and ql is not None and tl[t] != ql[q]:
            return False
        return True

    def extend(idx: int) -> Iterator[List[int]]:
        if idx == len(order):
            yield state.mapping()
            return
        q = order[idx]
        for t in candidate_pool(idx):
            if state.used_t[t] or not ok(q, t):
                continue
            if not state.feasible(q, t, induced=induced):
                continue
            state.assign(q, t)
            yield from extend(idx + 1)
            state.unassign(q, t)

    for mapping in extend(0):
        yield mapping
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def vf3light_count(target: CSRGraph, query: CSRGraph, **kwargs) -> int:
    """Number of embeddings found by VF3-Light."""
    return sum(1 for _ in vf3light_embeddings(target, query, **kwargs))

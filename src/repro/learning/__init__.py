"""Graph-learning algorithms: similarity, link prediction, clustering."""

from .jarvis_patrick import jarvis_patrick
from .label_propagation import label_propagation
from .linkpred import (
    EffectivenessLoss,
    LinkPredictionResult,
    effectiveness_loss,
    evaluate_scheme,
    predict_links,
    sparsify,
)
from .louvain import louvain, modularity
from .similarity import (
    SIMILARITY_MEASURES,
    SKETCH_MEASURES,
    KMVNeighborhoodCache,
    known_measures,
    score_pairs,
    similarity,
    similarity_all_pairs,
)

__all__ = [
    "SIMILARITY_MEASURES",
    "SKETCH_MEASURES",
    "KMVNeighborhoodCache",
    "known_measures",
    "similarity",
    "similarity_all_pairs",
    "score_pairs",
    "LinkPredictionResult",
    "EffectivenessLoss",
    "sparsify",
    "predict_links",
    "evaluate_scheme",
    "effectiveness_loss",
    "jarvis_patrick",
    "label_propagation",
    "louvain",
    "modularity",
]

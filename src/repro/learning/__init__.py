"""Graph-learning algorithms: similarity, link prediction, clustering."""

from .jarvis_patrick import jarvis_patrick
from .label_propagation import label_propagation
from .linkpred import (
    LinkPredictionResult,
    evaluate_scheme,
    predict_links,
    sparsify,
)
from .louvain import louvain, modularity
from .similarity import (
    SIMILARITY_MEASURES,
    score_pairs,
    similarity,
    similarity_all_pairs,
)

__all__ = [
    "SIMILARITY_MEASURES",
    "similarity",
    "similarity_all_pairs",
    "score_pairs",
    "LinkPredictionResult",
    "sparsify",
    "predict_links",
    "evaluate_scheme",
    "jarvis_patrick",
    "label_propagation",
    "louvain",
    "modularity",
]

"""Jarvis–Patrick clustering (paper section 4.1.2, appendix A).

JP clustering is the paper's example of *overlapping, single-level*
clustering driven by vertex similarity: two vertices belong to the same
cluster when they are in each other's k-nearest-neighbor lists and share at
least ``k_min`` of their k nearest neighbors.  The shared-neighbor test is
one set intersection — the set-algebra building block again.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from .similarity import SIMILARITY_MEASURES, similarity

__all__ = ["jarvis_patrick"]


def _knn_lists(
    graph: CSRGraph, k: int, measure: str
) -> List[np.ndarray]:
    """k most similar neighbors of each vertex (graph neighbors only)."""
    knn: List[np.ndarray] = []
    for u in graph.vertices():
        neigh = graph.out_neigh(u).tolist()
        scored = sorted(
            ((similarity(graph, u, v, measure), v) for v in neigh),
            key=lambda t: (-t[0], t[1]),
        )
        knn.append(np.asarray(sorted(v for _, v in scored[:k]), dtype=np.int64))
    return knn


def jarvis_patrick(
    graph: CSRGraph, k: int = 6, k_min: int = 2, measure: str = "jaccard"
) -> np.ndarray:
    """Cluster with Jarvis–Patrick; returns a cluster-id array.

    Vertices u, v join the same cluster when (1) each appears in the
    other's k-NN list and (2) ``|kNN(u) ∩ kNN(v)| ≥ k_min``.  Clusters are
    the connected components of the resulting "SNN" graph.
    """
    if measure not in SIMILARITY_MEASURES:
        known = ", ".join(sorted(SIMILARITY_MEASURES))
        raise KeyError(f"unknown measure {measure!r}; known: {known}")
    n = graph.num_nodes
    knn = _knn_lists(graph, k, measure)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for u in range(n):
        ku = knn[u]
        for v in ku.tolist():
            if u >= v:
                continue
            kv = knn[v]
            mutual = np.searchsorted(kv, u) < len(kv) and kv[
                min(np.searchsorted(kv, u), len(kv) - 1)
            ] == u
            if not mutual:
                continue
            shared = len(np.intersect1d(ku, kv, assume_unique=True))
            if shared >= k_min:
                union(u, v)
    roots = np.asarray([find(v) for v in range(n)], dtype=np.int64)
    # Compact cluster IDs.
    _, compact = np.unique(roots, return_inverse=True)
    return compact.astype(np.int64)

"""Label-propagation community detection (paper section 4.1.2, appendix A).

Raghavan et al.'s near-linear community detection: every vertex repeatedly
adopts the most frequent label among its neighbors until labels stabilize —
the paper's example of convergence-based, non-overlapping clustering based
on *label dominance*.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["label_propagation"]


def label_propagation(
    graph: CSRGraph, max_rounds: int = 50, seed: int = 0
) -> np.ndarray:
    """Return community labels (compacted to ``0..c-1``).

    Vertices are visited in a random order each round (the standard tie-
    and oscillation-breaking device); ties between label frequencies are
    broken uniformly at random.  Terminates when a full round changes no
    label or after *max_rounds*.
    """
    n = graph.num_nodes
    labels = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    for _ in range(max_rounds):
        changed = False
        for v in rng.permutation(n).tolist():
            neigh = graph.out_neigh(v)
            if len(neigh) == 0:
                continue
            freq = Counter(labels[neigh].tolist())
            best_count = max(freq.values())
            best_labels = [lab for lab, c in freq.items() if c == best_count]
            new = best_labels[int(rng.integers(len(best_labels)))]
            if new != labels[v]:
                labels[v] = new
                changed = True
        if not changed:
            break
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)

"""Link prediction and its accuracy assessment (paper section 6.7).

The protocol of section 6.7, verbatim in set algebra:

1. start from a graph with known links ``E``;
2. remove a random subset ``E_rndm ⊆ E`` — the links to be predicted —
   leaving ``E_sparse = E \\ E_rndm`` (so ``E_sparse ∪ E_rndm = E`` and
   ``E_sparse ∩ E_rndm = ∅``);
3. score candidate pairs ``e ∈ (V × V) \\ E_sparse`` with a similarity
   scheme ``S`` computed on the sparsified graph;
4. the effectiveness of ``S`` is ``eff = |E_predict ∩ E_rndm|`` where
   ``E_predict`` are the ``|E_rndm|`` highest-scored pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from ..graph.builder import build_undirected
from ..graph.csr import CSRGraph
from .similarity import SIMILARITY_MEASURES, similarity_all_pairs

__all__ = ["LinkPredictionResult", "sparsify", "predict_links", "evaluate_scheme"]


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction accuracy experiment."""

    measure: str
    removed: int
    predicted_correct: int
    pairs_scored: int

    @property
    def effectiveness(self) -> float:
        """``|E_predict ∩ E_rndm| / |E_rndm|`` — normalized eff of §6.7."""
        return self.predicted_correct / self.removed if self.removed else 0.0


def sparsify(
    graph: CSRGraph, fraction: float, seed: int = 0
) -> Tuple[CSRGraph, Set[Tuple[int, int]]]:
    """Remove a random *fraction* of edges; return ``(G_sparse, E_rndm)``."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    edges = graph.edge_array()
    rng = np.random.default_rng(seed)
    k = max(1, int(len(edges) * fraction))
    removed_idx = rng.choice(len(edges), size=k, replace=False)
    mask = np.zeros(len(edges), dtype=bool)
    mask[removed_idx] = True
    removed = {tuple(e) for e in edges[mask].tolist()}
    sparse = build_undirected(graph.num_nodes, edges[~mask])
    return sparse, removed


def predict_links(
    sparse: CSRGraph, budget: int, measure: str = "jaccard"
) -> List[Tuple[int, int, float]]:
    """Top-*budget* non-adjacent pairs by similarity score on ``G_sparse``."""
    scored = [
        (u, v, s)
        for u, v, s in similarity_all_pairs(sparse, measure)
        if not sparse.has_edge(u, v)
    ]
    scored.sort(key=lambda t: (-t[2], t[0], t[1]))
    return scored[:budget]


def evaluate_scheme(
    graph: CSRGraph, measure: str = "jaccard", fraction: float = 0.1, seed: int = 0
) -> LinkPredictionResult:
    """Run the full section 6.7 protocol for one similarity scheme."""
    if measure not in SIMILARITY_MEASURES:
        known = ", ".join(sorted(SIMILARITY_MEASURES))
        raise KeyError(f"unknown measure {measure!r}; known: {known}")
    sparse, removed = sparsify(graph, fraction, seed)
    predictions = predict_links(sparse, budget=len(removed), measure=measure)
    hits = sum(
        1
        for u, v, _ in predictions
        if (u, v) in removed or (v, u) in removed
    )
    return LinkPredictionResult(
        measure=measure,
        removed=len(removed),
        predicted_correct=hits,
        pairs_scored=len(predictions),
    )

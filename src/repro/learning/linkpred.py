"""Link prediction and its accuracy assessment (paper section 6.7).

The protocol of section 6.7, verbatim in set algebra:

1. start from a graph with known links ``E``;
2. remove a random subset ``E_rndm ⊆ E`` — the links to be predicted —
   leaving ``E_sparse = E \\ E_rndm`` (so ``E_sparse ∪ E_rndm = E`` and
   ``E_sparse ∩ E_rndm = ∅``);
3. score candidate pairs ``e ∈ (V × V) \\ E_sparse`` with a similarity
   scheme ``S`` computed on the sparsified graph;
4. the effectiveness of ``S`` is ``eff = |E_predict ∩ E_rndm|`` where
   ``E_predict`` are the ``|E_rndm|`` highest-scored pairs.

Sketch measures (e.g. ``"jaccard-kmv"``) run through the same protocol, so
:func:`effectiveness_loss` quantifies exactly what ProbGraph claims — how
much prediction quality an estimated similarity gives up against its exact
counterpart at a given sketch budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple, Type

import numpy as np

from ..graph.builder import build_undirected
from ..graph.csr import CSRGraph
from .similarity import (
    SIMILARITY_MEASURES,
    SKETCH_MEASURES,
    known_measures,
    similarity_all_pairs,
)

__all__ = [
    "LinkPredictionResult",
    "EffectivenessLoss",
    "sparsify",
    "predict_links",
    "evaluate_scheme",
    "effectiveness_loss",
]


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction accuracy experiment."""

    measure: str
    removed: int
    predicted_correct: int
    pairs_scored: int

    @property
    def effectiveness(self) -> float:
        """``|E_predict ∩ E_rndm| / |E_rndm|`` — normalized eff of §6.7."""
        return self.predicted_correct / self.removed if self.removed else 0.0


def sparsify(
    graph: CSRGraph, fraction: float, seed: int = 0
) -> Tuple[CSRGraph, Set[Tuple[int, int]]]:
    """Remove a random *fraction* of edges; return ``(G_sparse, E_rndm)``."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    edges = graph.edge_array()
    rng = np.random.default_rng(seed)
    k = max(1, int(len(edges) * fraction))
    removed_idx = rng.choice(len(edges), size=k, replace=False)
    mask = np.zeros(len(edges), dtype=bool)
    mask[removed_idx] = True
    removed = {tuple(e) for e in edges[mask].tolist()}
    sparse = build_undirected(graph.num_nodes, edges[~mask])
    return sparse, removed


def predict_links(
    sparse: CSRGraph, budget: int, measure: str = "jaccard",
    kmv_cls: Optional[Type] = None,
) -> List[Tuple[int, int, float]]:
    """Top-*budget* non-adjacent pairs by similarity score on ``G_sparse``."""
    scored = [
        (u, v, s)
        for u, v, s in similarity_all_pairs(sparse, measure, kmv_cls=kmv_cls)
        if not sparse.has_edge(u, v)
    ]
    scored.sort(key=lambda t: (-t[2], t[0], t[1]))
    return scored[:budget]


def evaluate_scheme(
    graph: CSRGraph, measure: str = "jaccard", fraction: float = 0.1,
    seed: int = 0, kmv_cls: Optional[Type] = None,
) -> LinkPredictionResult:
    """Run the full section 6.7 protocol for one similarity scheme.

    Accepts both exact and sketch measures; ``kmv_cls`` tunes the sketch
    budget of the latter (ignored by exact measures).
    """
    if measure not in SIMILARITY_MEASURES and measure not in SKETCH_MEASURES:
        known = ", ".join(known_measures())
        raise KeyError(f"unknown measure {measure!r}; known: {known}")
    sparse, removed = sparsify(graph, fraction, seed)
    predictions = predict_links(sparse, budget=len(removed), measure=measure,
                                kmv_cls=kmv_cls)
    hits = sum(
        1
        for u, v, _ in predictions
        if (u, v) in removed or (v, u) in removed
    )
    return LinkPredictionResult(
        measure=measure,
        removed=len(removed),
        predicted_correct=hits,
        pairs_scored=len(predictions),
    )


@dataclass
class EffectivenessLoss:
    """Exact-vs-sketch link-prediction comparison on identical splits."""

    exact: LinkPredictionResult
    approx: LinkPredictionResult

    @property
    def loss(self) -> float:
        """``eff(exact) - eff(approx)`` — positive means the sketch lost
        prediction quality; ≤ 0 means it matched (or got lucky)."""
        return self.exact.effectiveness - self.approx.effectiveness


def effectiveness_loss(
    graph: CSRGraph,
    exact_measure: str = "jaccard",
    approx_measure: str = "jaccard-kmv",
    fraction: float = 0.1,
    seed: int = 0,
    kmv_cls: Optional[Type] = None,
) -> EffectivenessLoss:
    """Effectiveness loss of a sketch measure against its exact twin.

    Both schemes score the *same* sparsified graph and removed-edge set
    (same ``seed``), so the difference isolates the estimator error — the
    ProbGraph question "how much accuracy does the sketch budget cost?".
    """
    return EffectivenessLoss(
        exact=evaluate_scheme(graph, exact_measure, fraction, seed),
        approx=evaluate_scheme(graph, approx_measure, fraction, seed,
                               kmv_cls=kmv_cls),
    )

"""Louvain community detection (paper section 4.1.2, appendix A).

Blondel et al.'s modularity-maximization method: local moving (each vertex
greedily joins the neighboring community with the largest modularity gain)
alternating with graph aggregation, until modularity stops improving — the
paper's second community-detection representative, based on *modularity*.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.builder import build_undirected
from ..graph.csr import CSRGraph

__all__ = ["louvain", "modularity"]


def modularity(graph: CSRGraph, communities: np.ndarray) -> float:
    """Newman modularity Q of a community assignment."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    degrees = graph.degrees()
    internal: Dict[int, float] = {}
    degree_sum: Dict[int, float] = {}
    for v in graph.vertices():
        c = int(communities[v])
        degree_sum[c] = degree_sum.get(c, 0.0) + degrees[v]
    for u, v in graph.edges():
        if communities[u] == communities[v]:
            c = int(communities[u])
            internal[c] = internal.get(c, 0.0) + 1.0
    q = 0.0
    for c, dsum in degree_sum.items():
        q += internal.get(c, 0.0) / m - (dsum / (2.0 * m)) ** 2
    return q


def _local_move(
    graph: CSRGraph, weights: Dict[Tuple[int, int], float], m2: float,
    max_rounds: int,
) -> np.ndarray:
    n = graph.num_nodes
    comm = np.arange(n, dtype=np.int64)
    w_deg = np.zeros(n)
    for (u, v), w in weights.items():
        w_deg[u] += w
        if u != v:
            w_deg[v] += w
        else:
            w_deg[u] += w  # self-loop counts twice in strength
    comm_total = w_deg.copy().astype(np.float64)
    adj: List[Dict[int, float]] = [dict() for _ in range(n)]
    for (u, v), w in weights.items():
        if u == v:
            continue
        adj[u][v] = adj[u].get(v, 0.0) + w
        adj[v][u] = adj[v].get(u, 0.0) + w
    for _ in range(max_rounds):
        moved = False
        for v in range(n):
            cv = comm[v]
            # Weight from v to each neighboring community.
            links: Dict[int, float] = {}
            for u, w in adj[v].items():
                links[comm[u]] = links.get(comm[u], 0.0) + w
            comm_total[cv] -= w_deg[v]
            best_c, best_gain = cv, 0.0
            base = links.get(cv, 0.0) - comm_total[cv] * w_deg[v] / m2
            for c, w_in in links.items():
                gain = (w_in - comm_total[c] * w_deg[v] / m2) - base
                if gain > best_gain + 1e-12:
                    best_gain, best_c = gain, c
            comm_total[best_c] += w_deg[v]
            if best_c != cv:
                comm[v] = best_c
                moved = True
        if not moved:
            break
    return comm


def louvain(graph: CSRGraph, max_levels: int = 5, max_rounds: int = 10) -> np.ndarray:
    """Run Louvain; returns final community labels on the original vertices."""
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mapping = np.arange(n, dtype=np.int64)  # original vertex → current super
    weights: Dict[Tuple[int, int], float] = {}
    for u, v in graph.edges():
        weights[(u, v)] = weights.get((u, v), 0.0) + 1.0
    m2 = 2.0 * graph.num_edges
    if m2 == 0:
        return mapping
    current = graph
    for _ in range(max_levels):
        comm = _local_move(current, weights, m2, max_rounds)
        uniq, compact = np.unique(comm, return_inverse=True)
        if len(uniq) == current.num_nodes:
            break  # nothing merged — converged
        mapping = compact[mapping]
        # Aggregate: communities become super-vertices.
        new_weights: Dict[Tuple[int, int], float] = {}
        for (u, v), w in weights.items():
            cu, cv = int(compact[u]), int(compact[v])
            key = (min(cu, cv), max(cu, cv))
            new_weights[key] = new_weights.get(key, 0.0) + w
        weights = new_weights
        edges = [(u, v) for (u, v) in weights if u != v]
        current = build_undirected(len(uniq), edges)
        if len(uniq) <= 1:
            break
    _, final = np.unique(mapping, return_inverse=True)
    return final.astype(np.int64)

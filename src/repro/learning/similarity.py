"""Vertex similarity measures (paper sections 4.1.2, 6.5, appendix A).

Seven measures, all built from the common-neighbor kernel ``|N(u) ∩ N(v)|``
— which is why the paper calls vertex similarity "a building block of many
more complex schemes" and uses it to showcase the choice between *merge*
and *galloping* intersections (modularity ``5+``):

============================  =======================================
Jaccard                       ``|N∩| / |N∪|``
Overlap                       ``|N∩| / min(Δ(u), Δ(v))``
Common Neighbors              ``|N∩|``
Adamic Adar                   ``Σ_{w ∈ N∩} 1 / log Δ(w)``
Resource Allocation           ``Σ_{w ∈ N∩} 1 / Δ(w)``
Total Neighbors               ``|N∪|``
Preferential Attachment       ``Δ(u) · Δ(v)``
============================  =======================================

Sketch-based measures (:data:`SKETCH_MEASURES`) skip the exact
common-neighbor kernel entirely: ``"jaccard-kmv"`` estimates the Jaccard
similarity from per-vertex KMV signatures
(:meth:`~repro.approx.kmv.KMVSketchSet.jaccard_estimate`) built lazily and
cached per call, so an all-pairs scan hashes each neighborhood **once** and
every pair costs O(K) instead of O(Δu + Δv) — the ProbGraph vertex-
similarity workload.  Estimates are exact whenever ``|N(u) ∪ N(v)| ≤ K``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..core.ops import intersect_galloping, intersect_merge
from ..graph.csr import CSRGraph

__all__ = [
    "SIMILARITY_MEASURES",
    "SKETCH_MEASURES",
    "KMVNeighborhoodCache",
    "known_measures",
    "similarity",
    "similarity_all_pairs",
    "score_pairs",
]


def _common(graph: CSRGraph, u: int, v: int, algorithm: str) -> np.ndarray:
    a, b = graph.out_neigh(u), graph.out_neigh(v)
    if algorithm == "merge":
        return intersect_merge(a, b)
    if algorithm == "galloping":
        return intersect_galloping(a, b)
    raise ValueError(f"unknown intersection algorithm {algorithm!r}")


def _jaccard(graph, u, v, common):
    union = graph.out_degree(u) + graph.out_degree(v) - len(common)
    return len(common) / union if union else 0.0


def _overlap(graph, u, v, common):
    denom = min(graph.out_degree(u), graph.out_degree(v))
    return len(common) / denom if denom else 0.0


def _common_neighbors(graph, u, v, common):
    return float(len(common))


def _adamic_adar(graph, u, v, common):
    total = 0.0
    for w in common.tolist():
        d = graph.out_degree(w)
        if d > 1:
            total += 1.0 / math.log(d)
    return total


def _resource_allocation(graph, u, v, common):
    total = 0.0
    for w in common.tolist():
        d = graph.out_degree(w)
        if d > 0:
            total += 1.0 / d
    return total


def _total_neighbors(graph, u, v, common):
    return float(graph.out_degree(u) + graph.out_degree(v) - len(common))


def _preferential_attachment(graph, u, v, common):
    return float(graph.out_degree(u) * graph.out_degree(v))


SIMILARITY_MEASURES: Dict[str, Callable] = {
    "jaccard": _jaccard,
    "overlap": _overlap,
    "common_neighbors": _common_neighbors,
    "adamic_adar": _adamic_adar,
    "resource_allocation": _resource_allocation,
    "total_neighbors": _total_neighbors,
    "preferential_attachment": _preferential_attachment,
}


class KMVNeighborhoodCache:
    """Per-graph KMV sketches of vertex neighborhoods, built lazily.

    One instance is created per scoring call (or shared across calls by
    the caller); each neighborhood is hashed at most once no matter how
    many pairs touch it.
    """

    def __init__(self, graph: CSRGraph, kmv_cls: Optional[Type] = None):
        if kmv_cls is None:
            from ..approx.kmv import KMVSketchSet  # deferred: keeps the
            # learning package importable without pulling repro.approx
            kmv_cls = KMVSketchSet
        self.graph = graph
        self.kmv_cls = kmv_cls
        self._sketches: Dict[int, object] = {}

    def get(self, v: int):
        sketch = self._sketches.get(v)
        if sketch is None:
            sketch = self.kmv_cls.from_sorted_array(self.graph.out_neigh(v))
            self._sketches[v] = sketch
        return sketch


def _jaccard_kmv(cache: KMVNeighborhoodCache, u: int, v: int) -> float:
    return cache.get(u).jaccard_estimate(cache.get(v))


#: Sketch-based measures, scored as ``fn(cache, u, v)`` over a
#: :class:`KMVNeighborhoodCache` instead of the exact ∩ kernel.
SKETCH_MEASURES: Dict[str, Callable] = {
    "jaccard-kmv": _jaccard_kmv,
}


def known_measures() -> List[str]:
    """All measure names — exact and sketch-based — sorted."""
    return sorted(set(SIMILARITY_MEASURES) | set(SKETCH_MEASURES))


def _unknown_measure(measure: str) -> KeyError:
    known = ", ".join(known_measures())
    return KeyError(f"unknown measure {measure!r}; known: {known}")


def similarity(
    graph: CSRGraph, u: int, v: int, measure: str = "jaccard",
    algorithm: str = "merge", kmv_cls: Optional[Type] = None,
) -> float:
    """Similarity of one vertex pair under the chosen measure.

    ``algorithm`` picks the ∩ kernel: ``"merge"`` (O(Δu + Δv)) or
    ``"galloping"`` (O(min log max)) — section 6.5's tuning knob.  Sketch
    measures ignore ``algorithm``; ``kmv_cls`` overrides their signature
    budget (e.g. ``kmv_set_class(32)``).
    """
    if measure in SKETCH_MEASURES:
        cache = KMVNeighborhoodCache(graph, kmv_cls)
        return SKETCH_MEASURES[measure](cache, u, v)
    try:
        fn = SIMILARITY_MEASURES[measure]
    except KeyError:
        raise _unknown_measure(measure) from None
    common = _common(graph, u, v, algorithm)
    return fn(graph, u, v, common)


def score_pairs(
    graph: CSRGraph,
    pairs: Sequence[Tuple[int, int]],
    measure: str = "jaccard",
    algorithm: str = "merge",
    kmv_cls: Optional[Type] = None,
) -> np.ndarray:
    """Vectorized-driver scoring of many pairs (one ∩ per pair).

    Sketch measures amortize one :class:`KMVNeighborhoodCache` over the
    whole batch: each touched neighborhood is hashed once, each pair then
    costs O(K).
    """
    out = np.empty(len(pairs), dtype=np.float64)
    if measure in SKETCH_MEASURES:
        fn = SKETCH_MEASURES[measure]
        cache = KMVNeighborhoodCache(graph, kmv_cls)
        for i, (u, v) in enumerate(pairs):
            out[i] = fn(cache, u, v)
        return out
    try:
        fn = SIMILARITY_MEASURES[measure]
    except KeyError:
        raise _unknown_measure(measure) from None
    for i, (u, v) in enumerate(pairs):
        common = _common(graph, u, v, algorithm)
        out[i] = fn(graph, u, v, common)
    return out


def _two_hop_candidates(graph: CSRGraph, u: int) -> List[int]:
    """Vertices ``> u`` reachable in exactly 2 hops (share ≥ 1 neighbor)."""
    cands = set()
    for w in graph.out_neigh(u).tolist():
        cands.update(x for x in graph.out_neigh(w).tolist() if x > u)
    return sorted(cands)


def similarity_all_pairs(
    graph: CSRGraph, measure: str = "jaccard", algorithm: str = "merge",
    min_common: int = 1, kmv_cls: Optional[Type] = None,
) -> List[Tuple[int, int, float]]:
    """Scores for all 2-hop pairs (pairs sharing ≥ *min_common* neighbors).

    Enumerating only 2-hop pairs avoids the dense n² pair space — standard
    practice for neighborhood-based similarity.  For sketch measures the
    ``min_common`` filter uses the sketch ``intersect_count`` *estimate*
    (every 2-hop pair trivially passes the default ``min_common=1``, so
    the enumerated pair set matches the exact measures' there).
    """
    if measure in SKETCH_MEASURES:
        fn = SKETCH_MEASURES[measure]
        cache = KMVNeighborhoodCache(graph, kmv_cls)
        results: List[Tuple[int, int, float]] = []
        for u in graph.vertices():
            for v in _two_hop_candidates(graph, u):
                if min_common > 1:
                    est = cache.get(u).intersect_count(cache.get(v))
                    if est < min_common:
                        continue
                results.append((u, v, fn(cache, u, v)))
        return results
    try:
        fn = SIMILARITY_MEASURES[measure]
    except KeyError:
        raise _unknown_measure(measure) from None
    results = []
    for u in graph.vertices():
        for v in _two_hop_candidates(graph, u):
            common = _common(graph, u, v, algorithm)
            if len(common) >= min_common:
                results.append((u, v, fn(graph, u, v, common)))
    return results

"""Vertex similarity measures (paper sections 4.1.2, 6.5, appendix A).

Seven measures, all built from the common-neighbor kernel ``|N(u) ∩ N(v)|``
— which is why the paper calls vertex similarity "a building block of many
more complex schemes" and uses it to showcase the choice between *merge*
and *galloping* intersections (modularity ``5+``):

============================  =======================================
Jaccard                       ``|N∩| / |N∪|``
Overlap                       ``|N∩| / min(Δ(u), Δ(v))``
Common Neighbors              ``|N∩|``
Adamic Adar                   ``Σ_{w ∈ N∩} 1 / log Δ(w)``
Resource Allocation           ``Σ_{w ∈ N∩} 1 / Δ(w)``
Total Neighbors               ``|N∪|``
Preferential Attachment       ``Δ(u) · Δ(v)``
============================  =======================================
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.ops import intersect_galloping, intersect_merge
from ..graph.csr import CSRGraph

__all__ = ["SIMILARITY_MEASURES", "similarity", "similarity_all_pairs", "score_pairs"]


def _common(graph: CSRGraph, u: int, v: int, algorithm: str) -> np.ndarray:
    a, b = graph.out_neigh(u), graph.out_neigh(v)
    if algorithm == "merge":
        return intersect_merge(a, b)
    if algorithm == "galloping":
        return intersect_galloping(a, b)
    raise ValueError(f"unknown intersection algorithm {algorithm!r}")


def _jaccard(graph, u, v, common):
    union = graph.out_degree(u) + graph.out_degree(v) - len(common)
    return len(common) / union if union else 0.0


def _overlap(graph, u, v, common):
    denom = min(graph.out_degree(u), graph.out_degree(v))
    return len(common) / denom if denom else 0.0


def _common_neighbors(graph, u, v, common):
    return float(len(common))


def _adamic_adar(graph, u, v, common):
    total = 0.0
    for w in common.tolist():
        d = graph.out_degree(w)
        if d > 1:
            total += 1.0 / math.log(d)
    return total


def _resource_allocation(graph, u, v, common):
    total = 0.0
    for w in common.tolist():
        d = graph.out_degree(w)
        if d > 0:
            total += 1.0 / d
    return total


def _total_neighbors(graph, u, v, common):
    return float(graph.out_degree(u) + graph.out_degree(v) - len(common))


def _preferential_attachment(graph, u, v, common):
    return float(graph.out_degree(u) * graph.out_degree(v))


SIMILARITY_MEASURES: Dict[str, Callable] = {
    "jaccard": _jaccard,
    "overlap": _overlap,
    "common_neighbors": _common_neighbors,
    "adamic_adar": _adamic_adar,
    "resource_allocation": _resource_allocation,
    "total_neighbors": _total_neighbors,
    "preferential_attachment": _preferential_attachment,
}


def similarity(
    graph: CSRGraph, u: int, v: int, measure: str = "jaccard",
    algorithm: str = "merge",
) -> float:
    """Similarity of one vertex pair under the chosen measure.

    ``algorithm`` picks the ∩ kernel: ``"merge"`` (O(Δu + Δv)) or
    ``"galloping"`` (O(min log max)) — section 6.5's tuning knob.
    """
    try:
        fn = SIMILARITY_MEASURES[measure]
    except KeyError:
        known = ", ".join(sorted(SIMILARITY_MEASURES))
        raise KeyError(f"unknown measure {measure!r}; known: {known}") from None
    common = _common(graph, u, v, algorithm)
    return fn(graph, u, v, common)


def score_pairs(
    graph: CSRGraph,
    pairs: Sequence[Tuple[int, int]],
    measure: str = "jaccard",
    algorithm: str = "merge",
) -> np.ndarray:
    """Vectorized-driver scoring of many pairs (one ∩ per pair)."""
    fn = SIMILARITY_MEASURES[measure]
    out = np.empty(len(pairs), dtype=np.float64)
    for i, (u, v) in enumerate(pairs):
        common = _common(graph, u, v, algorithm)
        out[i] = fn(graph, u, v, common)
    return out


def similarity_all_pairs(
    graph: CSRGraph, measure: str = "jaccard", algorithm: str = "merge",
    min_common: int = 1,
) -> List[Tuple[int, int, float]]:
    """Scores for all 2-hop pairs (pairs sharing ≥ *min_common* neighbors).

    Enumerating only 2-hop pairs avoids the dense n² pair space — standard
    practice for neighborhood-based similarity.
    """
    fn = SIMILARITY_MEASURES[measure]
    results: List[Tuple[int, int, float]] = []
    for u in graph.vertices():
        # Candidates: vertices ≥ u reachable in exactly 2 hops.
        cands = set()
        for w in graph.out_neigh(u).tolist():
            cands.update(x for x in graph.out_neigh(w).tolist() if x > u)
        for v in sorted(cands):
            common = _common(graph, u, v, algorithm)
            if len(common) >= min_common:
                results.append((u, v, fn(graph, u, v, common)))
    return results

"""Reference graph-mining algorithms (paper section 6)."""

from .approx import (
    ApproxCountResult,
    SketchPivotBKResult,
    approx_four_clique_count,
    approx_triangle_count,
    kclique_count_sets,
    sketch_pivot_bron_kerbosch,
)
from .baselines import (
    danisch_kclique_count,
    framework_kclique_count,
    gbbs_kclique_count,
)
from .bronkerbosch import BK_VARIANTS, BKResult, bk_das, bron_kerbosch, run_bk_variant
from .densest import densest_subgraph
from .fsm import FrequentPattern, canonical_form, frequent_subgraphs, mni_support
from .kclique import KCliqueResult, kclique_count, kclique_list
from .kcliquestar import kclique_star_count, kclique_stars
from .kcore import approx_core_numbers, core_histogram, core_numbers, k_core
from .triangles import triangle_count_node_iterator, triangle_count_rank_merge

__all__ = [
    "ApproxCountResult",
    "SketchPivotBKResult",
    "approx_triangle_count",
    "approx_four_clique_count",
    "kclique_count_sets",
    "sketch_pivot_bron_kerbosch",
    "BKResult",
    "bron_kerbosch",
    "bk_das",
    "run_bk_variant",
    "BK_VARIANTS",
    "KCliqueResult",
    "kclique_count",
    "kclique_list",
    "kclique_stars",
    "kclique_star_count",
    "core_numbers",
    "approx_core_numbers",
    "k_core",
    "core_histogram",
    "densest_subgraph",
    "triangle_count_node_iterator",
    "triangle_count_rank_merge",
    "FrequentPattern",
    "frequent_subgraphs",
    "mni_support",
    "canonical_form",
    "gbbs_kclique_count",
    "danisch_kclique_count",
    "framework_kclique_count",
]

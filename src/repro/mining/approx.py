"""Approximate counting kernels (ProbGraph workload; paper modularity ``5+``).

The kernels here are *representation-generic*: they call only the
:class:`~repro.core.interface.SetBase` surface, so passing one of the exact
registry classes reproduces the exact counts while passing a probabilistic
class (``"bloom"``/``"kmv"``) turns them into ProbGraph-style estimators.
Each driver also runs the exact raw-array baseline and reports
``(estimate, exact, relative error, speedup)`` so accuracy is always
measured, never assumed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Type

from ..core.interface import SetBase
from ..graph.csr import CSRGraph
from ..graph.transforms import orient_by_rank
from ..preprocess.ordering import compute_ordering
from .kclique import kclique_count
from .triangles import triangle_count_node_iterator

__all__ = [
    "ApproxCountResult",
    "kclique_count_sets",
    "approx_triangle_count",
    "approx_four_clique_count",
]


@dataclass
class ApproxCountResult:
    """Outcome of one approximate counting run, paired with its exact truth."""

    kernel: str
    set_class: str
    estimate: int
    exact: int
    estimate_seconds: float
    exact_seconds: float

    @property
    def relative_error(self) -> float:
        """``|estimate - exact| / max(exact, 1)``.

        The denominator floors at 1, so on a graph with no matches the
        value equals the raw over-count rather than dividing by zero.
        """
        return abs(self.estimate - self.exact) / max(self.exact, 1)

    @property
    def speedup(self) -> float:
        """Exact-baseline seconds over estimator seconds."""
        if self.estimate_seconds <= 0:
            return float("inf")
        return self.exact_seconds / self.estimate_seconds

    def row(self) -> List[str]:
        """One table row for the benchmark printers."""
        return [
            self.kernel,
            self.set_class,
            f"{self.estimate:,}",
            f"{self.exact:,}",
            f"{100 * self.relative_error:.2f}%",
            f"{self.speedup:.2f}x",
        ]


def kclique_count_sets(
    graph: CSRGraph, k: int, set_cls: Type[SetBase], ordering: str = "DGR"
) -> int:
    """k-clique counting written purely in set algebra (Listing 7 shape).

    The recursion is the kClist scheme of :mod:`repro.mining.kclique`, but
    candidate sets are ``set_cls`` instances, so the final-level
    ``intersect_count`` goes through the representation's (possibly
    estimated) counting path — this is where ProbGraph gets its speedup.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    order_res = compute_ordering(graph, ordering)
    dag = orient_by_rank(graph, order_res.rank)
    sets = [dag.neighborhood_set(v, set_cls) for v in dag.vertices()]

    def rec(i: int, cand: SetBase) -> int:
        total = 0
        for v in cand:
            if i + 1 == k:
                total += cand.intersect_count(sets[v])
            else:
                total += rec(i + 1, cand.intersect(sets[v]))
        return total

    if k == 2:
        return sum(s.cardinality() for s in sets)
    return sum(rec(2, sets[u]) for u in dag.vertices())


def approx_triangle_count(graph: CSRGraph, set_cls: Type[SetBase]) -> ApproxCountResult:
    """Triangle-count estimate via the *unmodified* node-iterator kernel.

    The exact baseline runs the *same* node-iterator scheme on raw sorted
    arrays, so the reported speedup isolates the set representation rather
    than comparing different counting algorithms.
    """
    t0 = time.perf_counter()
    estimate = triangle_count_node_iterator(graph, set_cls=set_cls)
    estimate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact = triangle_count_node_iterator(graph)
    exact_seconds = time.perf_counter() - t0
    return ApproxCountResult(
        kernel="tc",
        set_class=set_cls.__name__,
        estimate=estimate,
        exact=exact,
        estimate_seconds=estimate_seconds,
        exact_seconds=exact_seconds,
    )


def approx_four_clique_count(
    graph: CSRGraph, set_cls: Type[SetBase], ordering: str = "DGR"
) -> ApproxCountResult:
    """4-clique-count estimate via the set-algebra kClist recursion."""
    t0 = time.perf_counter()
    estimate = kclique_count_sets(graph, 4, set_cls, ordering)
    estimate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact = kclique_count(graph, 4, ordering).count
    exact_seconds = time.perf_counter() - t0
    return ApproxCountResult(
        kernel="4clique",
        set_class=set_cls.__name__,
        estimate=estimate,
        exact=exact,
        estimate_seconds=estimate_seconds,
        exact_seconds=exact_seconds,
    )

"""Approximate counting kernels (ProbGraph workload; paper modularity ``5+``).

The kernels here are *representation-generic*: they call only the
:class:`~repro.core.interface.SetBase` surface, so passing one of the exact
registry classes reproduces the exact counts while passing a probabilistic
class (``"bloom"``/``"kmv"``) turns them into ProbGraph-style estimators.
Each driver also runs the exact raw-array baseline and reports
``(estimate, exact, relative error, speedup)`` so accuracy is always
measured, never assumed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Type

from ..core.bit_set import BitSet
from ..core.interface import SetBase
from ..core.sorted_set import SortedSet
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from .bronkerbosch import BKResult, bron_kerbosch
from .kclique import kclique_count
from .triangles import triangle_count_node_iterator

__all__ = [
    "ApproxCountResult",
    "SketchPivotBKResult",
    "kclique_count_sets",
    "approx_triangle_count",
    "approx_four_clique_count",
    "sketch_pivot_bron_kerbosch",
]


@dataclass
class ApproxCountResult:
    """Outcome of one approximate counting run, paired with its exact truth."""

    kernel: str
    set_class: str
    estimate: int
    exact: int
    estimate_seconds: float
    exact_seconds: float

    @property
    def relative_error(self) -> float:
        """``|estimate - exact| / max(exact, 1)``.

        The denominator floors at 1, so on a graph with no matches the
        value equals the raw over-count rather than dividing by zero.
        """
        return abs(self.estimate - self.exact) / max(self.exact, 1)

    @property
    def speedup(self) -> float:
        """Exact-baseline seconds over estimator seconds."""
        if self.estimate_seconds <= 0:
            return float("inf")
        return self.exact_seconds / self.estimate_seconds

    def row(self) -> List[str]:
        """One table row for the benchmark printers."""
        return [
            self.kernel,
            self.set_class,
            f"{self.estimate:,}",
            f"{self.exact:,}",
            f"{100 * self.relative_error:.2f}%",
            f"{self.speedup:.2f}x",
        ]


def kclique_count_sets(
    graph: CSRGraph, k: int, set_cls: Type[SetBase], ordering: str = "DGR",
    reconcile: bool = False,
    cache: Optional[MaterializationCache] = None,
) -> int:
    """k-clique counting written purely in set algebra (Listing 7 shape).

    The recursion is the kClist scheme of :mod:`repro.mining.kclique`, but
    candidate sets are ``set_cls`` instances, so the final-level
    ``intersect_count`` goes through the representation's (possibly
    estimated) counting path — this is where ProbGraph gets its speedup.

    With ``reconcile=True`` the ProbGraph per-level reconciliation is
    applied: intermediate candidate sets are computed *exactly* — as
    :class:`~repro.core.sorted_set.SortedSet` candidates over an exact
    twin of the oriented DAG — and only the top (innermost counting) level
    goes through the sketch ``intersect_count`` estimator.  This stops the
    lean-budget error from compounding down the recursion — for Bloom
    filters each approximate ``intersect`` yields a *superset* candidate
    set, so with a lean budget the plain recursion systematically
    over-counts, while the reconciled one carries only a single level of
    estimator noise.

    Both oriented materializations (the ``set_cls`` DAG and, under
    ``reconcile``, its exact twin) go through *cache*, so a suite run
    shares them across kernels and budgets.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if cache is None:
        cache = MaterializationCache()
    _, dag = cache.oriented(graph, set_cls, ordering)

    def rec(i: int, cand: SetBase) -> int:
        total = 0
        for v in cand:
            if i + 1 == k:
                total += cand.intersect_count(dag[v])
            else:
                total += rec(i + 1, cand.intersect(dag[v]))
        return total

    if k == 2:
        return sum(dag.out_degree(v) for v in dag.vertices())
    if reconcile:
        _, exact_dag = cache.oriented(graph, SortedSet, ordering)

        def rec_reconciled(i: int, cand: SetBase) -> int:
            # Exact candidate sets at every level; the estimator runs only
            # at the counting level, over a sketch built from the exact
            # members.
            total = 0
            if i + 1 == k:
                cand_sketch = set_cls.from_sorted_array(cand.to_array())
                for v in cand.to_array().tolist():
                    total += cand_sketch.intersect_count(dag[v])
                return total
            for v in cand.to_array().tolist():
                total += rec_reconciled(i + 1, cand.intersect(exact_dag[v]))
            return total

        return sum(
            rec_reconciled(2, exact_dag[u]) for u in exact_dag.vertices()
        )
    return sum(rec(2, dag[u]) for u in dag.vertices())


def approx_triangle_count(
    graph: CSRGraph, set_cls: Type[SetBase],
    cache: Optional[MaterializationCache] = None,
) -> ApproxCountResult:
    """Triangle-count estimate via the *unmodified* node-iterator kernel.

    The exact baseline runs the *same* node-iterator scheme on the exact
    sorted-array representation, so the reported speedup isolates the set
    representation rather than comparing different counting algorithms.
    """
    t0 = time.perf_counter()
    estimate = triangle_count_node_iterator(graph, set_cls=set_cls, cache=cache)
    estimate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact = triangle_count_node_iterator(graph, cache=cache)
    exact_seconds = time.perf_counter() - t0
    return ApproxCountResult(
        kernel="tc",
        set_class=set_cls.__name__,
        estimate=estimate,
        exact=exact,
        estimate_seconds=estimate_seconds,
        exact_seconds=exact_seconds,
    )


def approx_four_clique_count(
    graph: CSRGraph, set_cls: Type[SetBase], ordering: str = "DGR",
    reconcile: bool = False,
    cache: Optional[MaterializationCache] = None,
) -> ApproxCountResult:
    """4-clique-count estimate via the set-algebra kClist recursion.

    ``reconcile`` enables the per-level reconciliation of
    :func:`kclique_count_sets` (exact candidate sets, top-level-only
    estimates).
    """
    t0 = time.perf_counter()
    estimate = kclique_count_sets(graph, 4, set_cls, ordering,
                                  reconcile=reconcile, cache=cache)
    estimate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact = kclique_count(graph, 4, ordering, cache=cache).count
    exact_seconds = time.perf_counter() - t0
    return ApproxCountResult(
        kernel="4clique" + ("+reconcile" if reconcile else ""),
        set_class=set_cls.__name__,
        estimate=estimate,
        exact=exact,
        estimate_seconds=estimate_seconds,
        exact_seconds=exact_seconds,
    )


@dataclass
class SketchPivotBKResult:
    """Sketch-pivot Bron–Kerbosch run paired with its exact twin.

    The two runs share ordering and set representation; only the pivot
    scan differs.  ``identical`` is the headline guarantee — the clique
    *output* must match exactly, with only the recursion shape (number of
    recursive calls) free to move.
    """

    pivot_class: str
    num_cliques: int
    exact_num_cliques: int
    identical: bool
    estimate_calls: int
    exact_calls: int
    estimate_seconds: float
    exact_seconds: float

    @property
    def speedup(self) -> float:
        """Exact-pivot seconds over sketch-pivot seconds."""
        if self.estimate_seconds <= 0:
            return float("inf")
        return self.exact_seconds / self.estimate_seconds

    @property
    def call_overhead(self) -> float:
        """Extra recursive calls caused by mis-ranked pivots (ratio)."""
        if self.exact_calls <= 0:
            return 0.0
        return self.estimate_calls / self.exact_calls


def sketch_pivot_bron_kerbosch(
    graph: CSRGraph,
    pivot_set_cls: Type[SetBase],
    ordering: str = "DGR",
    set_cls: Type[SetBase] = BitSet,
    collect: bool = True,
) -> SketchPivotBKResult:
    """Run sketch-pivot BK next to exact BK and verify the outputs match.

    With ``collect=True`` (the default) the canonical clique *sets* are
    compared; otherwise only the counts.  A ``False`` ``identical`` would
    indicate a bug — pivot choice cannot legally change BK-Pivot's output.
    """
    t0 = time.perf_counter()
    est: BKResult = bron_kerbosch(
        graph, ordering, set_cls, collect=collect, pivot_set_cls=pivot_set_cls
    )
    estimate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact: BKResult = bron_kerbosch(graph, ordering, set_cls, collect=collect)
    exact_seconds = time.perf_counter() - t0
    if collect:
        identical = (
            sorted(tuple(sorted(c)) for c in est.cliques)
            == sorted(tuple(sorted(c)) for c in exact.cliques)
        )
    else:
        identical = est.num_cliques == exact.num_cliques
    return SketchPivotBKResult(
        pivot_class=pivot_set_cls.__name__,
        num_cliques=est.num_cliques,
        exact_num_cliques=exact.num_cliques,
        identical=identical,
        estimate_calls=est.recursive_calls,
        exact_calls=exact.recursive_calls,
        estimate_seconds=estimate_seconds,
        exact_seconds=exact_seconds,
    )

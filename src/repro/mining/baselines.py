"""Comparison-target baselines for Figures 9 and section 8.12.

The paper compares GMS's k-clique listing against:

* **GBBS** — the Graph Based Benchmark Suite's k-clique kernel: the same
  intersection-driven recursion but node-parallel over the degeneracy
  order (the exact variant GBBS supports, section 8.11);
* **Danisch et al.** — the original edge-parallel kClist, which rebuilds an
  *induced subgraph structure* (relabeled adjacency arrays of ``Δ²``-style
  scratch space) at every recursion level — the overhead the GMS
  reformulation removes (section 6.3);
* **pattern-matching frameworks** (Peregrine/RStream flavor) — generic
  exploration: grow vertex-set embeddings one neighbor at a time, checking
  the pattern predicate per candidate and deduplicating embeddings, which
  is 10–100× slower than the specialized algorithms (section 8.12).

These are *honest* re-implementations of each design's control structure,
so the relative ordering emerges from the real extra work each performs —
but all of them now speak the same :class:`~repro.core.interface.SetBase`
algebra over a materialized :class:`~repro.graph.set_graph.SetGraph`, so
the baselines, too, run under every registered set representation.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Type

from ..core.interface import SetBase
from ..core.sorted_set import SortedSet
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from .kclique import KCliqueResult

__all__ = [
    "gbbs_kclique_count",
    "danisch_kclique_count",
    "framework_kclique_count",
]


def gbbs_kclique_count(
    graph: CSRGraph,
    k: int,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> KCliqueResult:
    """GBBS-style k-clique: node-parallel, DGR order, intersections."""
    cls = set_cls or SortedSet
    if cache is None:
        cache = MaterializationCache()
    t0 = time.perf_counter()
    order_res, dag = cache.oriented(graph, cls, "DGR")
    reorder = time.perf_counter() - t0

    def rec(i: int, candidates: SetBase) -> int:
        if i == k:
            return candidates.cardinality()
        total = 0
        for v in candidates.to_array().tolist():
            total += rec(i + 1, candidates.intersect(dag[v]))
        return total

    total = 0
    costs: List[float] = []
    t1 = time.perf_counter()
    for u in dag.vertices():
        tv = time.perf_counter()
        total += rec(2, dag[u])
        costs.append(time.perf_counter() - tv)
    return KCliqueResult(
        variant="GBBS", k=k, count=total, reorder_seconds=reorder,
        mine_seconds=time.perf_counter() - t1, task_costs=costs,
    )


def danisch_kclique_count(
    graph: CSRGraph,
    k: int,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> KCliqueResult:
    """Edge-parallel kClist with per-level induced-subgraph construction.

    At every recursion level the original allocates and fills a relabeled
    adjacency structure for the candidate subgraph before recursing — the
    work the GMS reformulation's direct set intersections avoid.
    """
    cls = set_cls or SortedSet
    if cache is None:
        cache = MaterializationCache()
    t0 = time.perf_counter()
    order_res, dag = cache.oriented(graph, cls, "DGR")
    reorder = time.perf_counter() - t0

    def build_local(candidates: SetBase) -> Dict[int, SetBase]:
        # The induced DAG on the candidates — rebuilt at every level.
        return {
            int(v): dag[int(v)].intersect(candidates)
            for v in candidates.to_array().tolist()
        }

    def rec(i: int, candidates: SetBase) -> int:
        if i == k:
            return candidates.cardinality()
        local = build_local(candidates)
        total = 0
        for v in candidates.to_array().tolist():
            total += rec(i + 1, local[v])
        return total

    total = 0
    costs: List[float] = []
    t1 = time.perf_counter()
    if k == 2:
        total = sum(dag.out_degree(v) for v in dag.vertices())
    for u in dag.vertices():
        if k == 2:
            break
        neigh_u = dag[u]
        for v in neigh_u.to_array().tolist():
            tv = time.perf_counter()
            if k == 3:
                total += neigh_u.intersect_count(dag[v])
            else:
                c3 = neigh_u.intersect(dag[v])
                if not c3.is_empty():
                    total += rec(3, c3)
            costs.append(time.perf_counter() - tv)
    return KCliqueResult(
        variant="Danisch", k=k, count=total, reorder_seconds=reorder,
        mine_seconds=time.perf_counter() - t1, task_costs=costs,
    )


def framework_kclique_count(
    graph: CSRGraph, k: int, max_embeddings: int = 2_000_000
) -> KCliqueResult:
    """Generic pattern-matching-framework exploration (Peregrine/RStream).

    Grows unordered vertex-set embeddings one adjacent vertex at a time,
    evaluates the clique predicate on each candidate extension, and
    deduplicates embeddings in a global set — the programming-model
    generality the paper identifies as the source of the 10–100×
    performance gap (section 8.12).
    """
    t1 = time.perf_counter()
    level: Set[FrozenSet[int]] = {
        frozenset((u, v)) for u, v in graph.edges()
    }
    size = 2
    while size < k and level:
        if len(level) > max_embeddings:
            raise MemoryError(
                f"framework baseline exceeded {max_embeddings} embeddings"
            )
        nxt: Set[FrozenSet[int]] = set()
        for emb in level:
            # Expand by neighbors of any member; check the clique predicate
            # on the *whole* candidate each time (no pattern-specific
            # pruning — the framework treats the pattern as a black box).
            for u in emb:
                for w in graph.out_neigh(u).tolist():
                    if w in emb:
                        continue
                    if all(graph.has_edge(w, x) for x in emb):
                        nxt.add(emb | {w})
        level = nxt
        size += 1
    count = len(level) if k > 2 else len(level)
    return KCliqueResult(
        variant="Framework", k=k, count=count, reorder_seconds=0.0,
        mine_seconds=time.perf_counter() - t1,
    )

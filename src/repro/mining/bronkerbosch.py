"""Maximal clique listing: the Bron–Kerbosch family (paper section 6.2).

Implements Algorithm 6 — Bron–Kerbosch with Tomita pivoting over an ordered
outer loop — together with every variant the evaluation compares:

=================  =====================================================
``BK-DAS``         Re-implementation of the Das et al. baseline: exact
                   degeneracy (DGR) outer order, hash-table sets, pivot
                   selection over *full* neighborhoods.
``BK-GMS-DEG``     GMS code with simple degree ordering.
``BK-GMS-DGR``     GMS code with exact degeneracy ordering — the enhanced
                   Eppstein et al. variant.
``BK-GMS-ADG``     GMS code with the (2+ε)-approximate degeneracy order —
                   the new algorithm proposed by the paper (section 7.5).
``BK-GMS-ADG-S``   BK-GMS-ADG plus the subgraph (``H``) optimization:
                   precompute, once per outer vertex, the subgraph induced
                   by ``P ∪ X`` and run pivoting and the pruning
                   intersections against the smaller ``N_H`` neighborhoods.
=================  =====================================================

All GMS variants are parameterized by the set representation (``5+``
modularity hook); the paper's default — and fastest — choice is compressed
bitvectors (roaring bitmaps) for ``P``/``X`` and the neighborhoods.  In this
pure-Python port the big-int :class:`~repro.core.bit_set.BitSet` plays that
role: its word-parallel ``&``/``|`` run in C, exactly like roaring's bitmap
containers, and it is the fastest representation at the miniature dataset
scale (``RoaringSet`` has identical semantics and wins for large sparse
universes; see the set-representation ablation bench).

The initial per-vertex candidate sets follow the splitting observation of
section 6.2: ``P = N(v) ∩ {v_{i+1}..v_n}`` and ``X = N(v) ∩ {v_1..v_{i-1}}``
are computed by *splitting* ``N(v)`` by rank instead of materializing the
range sets.

Sketch-assisted pivoting (``pivot_set_cls``): the Tomita pivot scan only
feeds an **argmax** over ``|P ∩ N(u)|``, so a bounded-error estimate of the
count is sufficient — the SISA/ProbGraph observation that estimated
``intersect_count`` is enough wherever a count only selects a winner.
Passing an approximate set class (``"bloom"``/``"kmv"``) as
``pivot_set_cls`` routes *only* that scan through sketch estimators while
``P``/``X`` and the candidate pruning stay exact.  Any ``u ∈ P ∪ X`` is a
valid pivot for BK-Pivot, so the enumerated maximal-clique set is provably
identical to the exact run — a mis-ranked pivot can only change the
recursion shape (number of recursive calls), never the output.

The ``P`` sketch is maintained *incrementally*, ProbGraph style: it is
built from scratch once per outer vertex, derived for each child call by a
sketch-level ``intersect`` with the neighbor's sketch, and updated with
``remove(v)`` as the sibling loop removes ``v`` from ``P`` — never rebuilt
per recursive call.  Because the sketch only feeds counts (the pivot scan
iterates the *exact* ``P``/``X`` members), any drift the incremental
maintenance accumulates (e.g. Bloom's stale bits after removal) is
harmless: the chosen pivot is always a member of ``P ∪ X``.  The
``sketch_builds`` software counter meters this invariant — builds scale
with the number of outer vertices, not with the number of recursive calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

import numpy as np

from ..core.bit_set import BitSet
from ..core.hash_set import HashSet
from ..core.interface import SetBase
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from ..graph.transforms import split_neighbors
from ..preprocess.ordering import OrderingResult

__all__ = ["BKResult", "bron_kerbosch", "bk_das", "BK_VARIANTS", "run_bk_variant"]


@dataclass
class BKResult:
    """Outcome of one maximal-clique-listing run."""

    variant: str
    num_cliques: int
    cliques: Optional[List[List[int]]]
    reorder_seconds: float
    mine_seconds: float
    task_costs: List[float] = field(default_factory=list)
    ordering_rounds: int = 1
    recursive_calls: int = 0
    max_clique_size: int = 0

    @property
    def total_seconds(self) -> float:
        return self.reorder_seconds + self.mine_seconds

    def throughput(self) -> float:
        """Maximal cliques mined per second (the Figure 1 metric)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.num_cliques / self.total_seconds


class _BKEngine:
    """Shared recursive kernel; adjacency is any vertex → SetBase mapping.

    ``pivot_adjacency``/``pivot_set_cls`` optionally route the pivot scan
    through sketch estimates (see module docstring); when unset, the scan
    uses the exact ``adjacency``.
    """

    def __init__(self, adjacency, collect: bool,
                 pivot_adjacency=None, pivot_set_cls=None):
        self.adjacency = adjacency
        self.pivot_adjacency = pivot_adjacency
        self.pivot_set_cls = pivot_set_cls
        self.cliques: Optional[List[List[int]]] = [] if collect else None
        self.num_cliques = 0
        self.calls = 0
        self.max_size = 0

    def expand(
        self,
        P: SetBase,
        R: List[int],
        X: SetBase,
        P_sketch: Optional[SetBase] = None,
    ) -> None:
        """BK-Pivot(P, R, X) — Algorithm 6, lines 18–28.

        ``P_sketch`` is the incrementally maintained pivot-scan sketch of
        ``P`` (when sketch pivoting is active): child calls derive their
        sketch with one sketch-level ``intersect``, and the sibling loop
        mirrors every ``P.remove(v)`` with ``P_sketch.remove(v)`` — the
        sketch is never rebuilt from ``P``'s members inside the recursion.
        """
        self.calls += 1
        if P.is_empty() and X.is_empty():
            self.num_cliques += 1
            if len(R) > self.max_size:
                self.max_size = len(R)
            if self.cliques is not None:
                self.cliques.append(list(R))
            return
        pivot = self._choose_pivot(P, X, P_sketch)
        candidates = P.diff(self.adjacency[pivot]).to_array()
        for v in candidates.tolist():
            neigh_v = self.adjacency[v]
            R.append(v)
            child_sketch = (
                P_sketch.intersect(self.pivot_adjacency[v])
                if P_sketch is not None
                else None
            )
            self.expand(
                P.intersect(neigh_v), R, X.intersect(neigh_v), child_sketch
            )
            R.pop()
            P.remove(v)
            if P_sketch is not None:
                P_sketch.remove(v)  # incremental maintenance (ProbGraph)
            X.add(v)

    def _choose_pivot(
        self, P: SetBase, X: SetBase, P_sketch: Optional[SetBase] = None
    ) -> int:
        """Tomita pivot: ``u ∈ P ∪ X`` maximizing ``|P ∩ N(u)|``."""
        if P_sketch is not None and self.pivot_adjacency is not None:
            return self._choose_pivot_sketch(P, X, P_sketch)
        best_u = -1
        best = -1
        adjacency = self.adjacency
        count = P.intersect_count
        for u in P.to_array().tolist():
            c = count(adjacency[u])
            if c > best:
                best, best_u = c, u
        for u in X.to_array().tolist():
            c = count(adjacency[u])
            if c > best:
                best, best_u = c, u
        return best_u

    def _choose_pivot_sketch(
        self, P: SetBase, X: SetBase, P_sketch: SetBase
    ) -> int:
        """Estimated Tomita pivot: argmax of sketch ``|P ∩ N(u)|`` counts.

        The maintained sketch is amortized over the whole ``P ∪ X`` scan;
        each per-candidate count costs O(sketch) instead of O(|P| + Δ(u)).
        The scan iterates the **exact** ``P``/``X`` members (only the
        counts come from the sketch), so the winner is always a member of
        ``P ∪ X`` and enumeration correctness is independent of both the
        estimate error and any drift the incremental sketch maintenance
        accumulated.
        """
        adjacency = self.pivot_adjacency
        count = P_sketch.intersect_count
        best_u = -1
        best = -1
        for u in P.to_array().tolist():
            c = count(adjacency[u])
            if c > best:
                best, best_u = c, u
        for u in X.to_array().tolist():
            c = count(adjacency[u])
            if c > best:
                best, best_u = c, u
        return best_u


def bron_kerbosch(
    graph: CSRGraph,
    ordering: str = "ADG",
    set_cls: Type[SetBase] = BitSet,
    subgraph_opt: bool = False,
    collect: bool = False,
    eps: float = 0.1,
    pivot_set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> BKResult:
    """Run the GMS Bron–Kerbosch variant selected by the arguments.

    Parameters
    ----------
    ordering:
        Outer-loop vertex order: ``"DEG"``, ``"DGR"``, ``"ADG"``, ``"ID"``…
    set_cls:
        Set representation for ``P``, ``X`` and the neighborhoods.
    subgraph_opt:
        Enable the per-outer-vertex induced-subgraph (``H``) caching of
        section 6.2 (the ``-S`` variants).
    collect:
        Also return the cliques themselves (not just the count).
    eps:
        Approximation parameter for the ADG ordering.
    pivot_set_cls:
        Optional (typically approximate) set representation for the pivot
        scan only: ``|P ∩ N(u)|`` is estimated with this class's
        ``intersect_count`` while ``P``/``X`` and the candidate pruning
        stay in ``set_cls``.  The maximal-clique output is identical to
        the exact run for any choice (the count only feeds an argmax over
        valid pivots).  Under ``subgraph_opt`` the pivot sketches are built
        once over the *full* neighborhoods rather than per-outer-vertex
        ``H`` subgraphs; the targeted quantity is unchanged because
        ``P ⊆ B`` implies ``P ∩ N(u) = P ∩ N_H(u)`` for every ``u ∈ B``.
    cache:
        Optional materialization cache: the ordering and the
        ``set_cls``/``pivot_set_cls`` neighborhood :class:`SetGraph`\\ s
        are resolved through it, so suite runs share them across kernels
        (the sets are read-only here — P/X are fresh per outer vertex).
    """
    if cache is None:
        cache = MaterializationCache()
    t0 = time.perf_counter()
    kwargs = {"eps": eps} if ordering == "ADG" else {}
    order_res: OrderingResult = cache.ordering(graph, ordering, **kwargs)
    reorder_seconds = time.perf_counter() - t0

    rank = order_res.rank
    neighborhoods = cache.set_graph(graph, set_cls)
    pivot_neighborhoods = None
    if pivot_set_cls is not None:
        pivot_neighborhoods = cache.set_graph(graph, pivot_set_cls)
    engine = _BKEngine(neighborhoods, collect,
                       pivot_adjacency=pivot_neighborhoods,
                       pivot_set_cls=pivot_set_cls)
    task_costs: List[float] = []
    t1 = time.perf_counter()
    for v in order_res.order.tolist():
        tv = time.perf_counter()
        later, earlier = split_neighbors(graph.out_neigh(v), rank, rank[v])
        P = set_cls.from_sorted_array(later)
        X = set_cls.from_sorted_array(earlier)
        if subgraph_opt:
            # Swap in the per-vertex H subgraph; P, X ⊆ H's vertex set for
            # the whole subtree, so every intersection below uses N_H.
            engine.adjacency = _induced_adjacency(
                neighborhoods, later, earlier, set_cls
            )
        else:
            engine.adjacency = neighborhoods
        # The only from-scratch pivot-sketch build of this subtree: the
        # recursion maintains it incrementally from here on.
        P_sketch = (
            pivot_set_cls.from_sorted_array(later)
            if pivot_set_cls is not None
            else None
        )
        engine.expand(P, [v], X, P_sketch)
        task_costs.append(time.perf_counter() - tv)
    mine_seconds = time.perf_counter() - t1

    name = f"BK-GMS-{order_res.name}" + ("-S" if subgraph_opt else "")
    if pivot_set_cls is not None:
        name += f"-SP[{pivot_set_cls.__name__}]"
    return BKResult(
        variant=name,
        num_cliques=engine.num_cliques,
        cliques=engine.cliques,
        reorder_seconds=reorder_seconds,
        mine_seconds=mine_seconds,
        task_costs=task_costs,
        ordering_rounds=order_res.rounds,
        recursive_calls=engine.calls,
        max_clique_size=engine.max_size,
    )


def _induced_adjacency(
    neighborhoods,  # any vertex → SetBase mapping (dict or SetGraph)
    later: np.ndarray,
    earlier: np.ndarray,
    set_cls: Type[SetBase],
) -> Dict[int, SetBase]:
    """Build the ``H`` subgraph of section 6.2 for one outer vertex.

    ``H`` has vertex set ``B = P ∪ X`` and keeps, for every ``w ∈ B``, only
    the neighbors inside ``B``: ``N_H(w) = N(w) ∩ B``.  All pivoting and
    pruning intersections inside the subtree may use ``N_H`` because
    ``P, X ⊆ B`` throughout.  Built with one bulk intersection per member,
    reusing the already-materialized neighborhood sets.
    """
    base = np.concatenate([earlier, later])
    base.sort()
    base_set = set_cls.from_sorted_array(base)
    return {
        int(w): neighborhoods[int(w)].intersect(base_set) for w in base.tolist()
    }


def bk_das(
    graph: CSRGraph,
    collect: bool = False,
    cache: Optional[MaterializationCache] = None,
) -> BKResult:
    """The Das et al. shared-memory BK baseline (re-implementation).

    Faithful to the original's design choices: the exact degeneracy order
    (computed sequentially), vertex sets stored as *sorted arrays* with
    merge-based ``set_intersection`` kernels (the std::vector layout of the
    original code), pivot selection over full neighborhoods, and the
    initial ``P``/``X`` computed with generic set operations against an
    incrementally maintained "remaining vertices" set — i.e. *without* the
    GMS splitting, bitvector, and subgraph optimizations.
    """
    if cache is None:
        cache = MaterializationCache()
    t0 = time.perf_counter()
    order_res = cache.ordering(graph, "DGR")
    reorder_seconds = time.perf_counter() - t0

    from ..core.sorted_set import SortedSet

    neighborhoods = cache.set_graph(graph, SortedSet)
    engine = _BKEngine(neighborhoods, collect)
    remaining = SortedSet.from_sorted_array(np.arange(graph.num_nodes))
    task_costs: List[float] = []
    t1 = time.perf_counter()
    for v in order_res.order.tolist():
        tv = time.perf_counter()
        remaining.remove(v)
        neigh = neighborhoods[v]
        P = neigh.intersect(remaining)
        X = neigh.diff(remaining)
        X.remove(v)
        engine.expand(P, [v], X)
        task_costs.append(time.perf_counter() - tv)
    mine_seconds = time.perf_counter() - t1
    return BKResult(
        variant="BK-DAS",
        num_cliques=engine.num_cliques,
        cliques=engine.cliques,
        reorder_seconds=reorder_seconds,
        mine_seconds=mine_seconds,
        task_costs=task_costs,
        ordering_rounds=order_res.rounds,
        recursive_calls=engine.calls,
        max_clique_size=engine.max_size,
    )


#: The named variants of the evaluation (Figures 1, 4, 11).
BK_VARIANTS = (
    "BK-DAS",
    "BK-GMS-DEG",
    "BK-GMS-DGR",
    "BK-GMS-ADG",
    "BK-GMS-ADG-S",
)


def run_bk_variant(
    graph: CSRGraph,
    variant: str,
    set_cls: Type[SetBase] = BitSet,
    collect: bool = False,
    cache: Optional[MaterializationCache] = None,
) -> BKResult:
    """Dispatch a named BK variant (see :data:`BK_VARIANTS`)."""
    if variant == "BK-DAS":
        return bk_das(graph, collect=collect, cache=cache)
    if variant == "BK-GMS-DEG":
        return bron_kerbosch(graph, "DEG", set_cls, collect=collect,
                             cache=cache)
    if variant == "BK-GMS-DGR":
        return bron_kerbosch(graph, "DGR", set_cls, collect=collect,
                             cache=cache)
    if variant == "BK-GMS-ADG":
        return bron_kerbosch(graph, "ADG", set_cls, collect=collect,
                             cache=cache)
    if variant == "BK-GMS-ADG-S":
        return bron_kerbosch(graph, "ADG", set_cls, subgraph_opt=True,
                             collect=collect, cache=cache)
    raise ValueError(f"unknown BK variant {variant!r}; known: {BK_VARIANTS}")

"""Dense-subgraph discovery: densest subgraph via Charikar peeling.

Part of the GMS "dense subgraph discovery" problem family (section 4.1.1).
The greedy peeling algorithm repeatedly removes a minimum-degree vertex and
returns the intermediate subgraph with the highest average density
``m'/n'`` — a 1/2-approximation of the densest subgraph, computable in
O(n + m) with the same bucket structure as degeneracy peeling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..preprocess.ordering import degeneracy_order

__all__ = ["densest_subgraph"]


def densest_subgraph(graph: CSRGraph) -> Tuple[np.ndarray, float]:
    """Return ``(vertices, density)`` of the Charikar peeling solution.

    ``density`` is ``|E(S)| / |S|``; the returned set achieves at least half
    of the optimum.
    """
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64), 0.0
    order, _ = degeneracy_order(graph)
    # Peeling removes vertices in degeneracy order; replay the removals and
    # track the density of every suffix.
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    # Edges internal to the suffix starting at i: both endpoints at
    # position >= i; count by the earlier endpoint's position.
    edge_positions = []
    for u, v in graph.edges():
        edge_positions.append(min(position[u], position[v]))
    edge_positions = np.asarray(edge_positions, dtype=np.int64)
    best_density = 0.0
    best_start = 0
    m_suffix = len(edge_positions)
    removed_edges = np.bincount(edge_positions, minlength=n)
    for start in range(n):
        size = n - start
        density = m_suffix / size if size else 0.0
        if density > best_density:
            best_density = density
            best_start = start
        m_suffix -= int(removed_edges[start])
    return np.sort(order[best_start:]), float(best_density)

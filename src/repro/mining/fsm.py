"""Frequent subgraph mining (paper sections 4.1.1 and appendix A).

FSM finds all (connected) patterns occurring in the input graph with
support above a threshold.  Per the paper's decomposition, an FSM algorithm
is (1) a strategy for exploring the tree of candidate patterns — **BFS**
(level by level, à la gSpan's apriori cousins) or **DFS** (pattern-growth)
— and (2) an isomorphism kernel deciding where a candidate embeds, for
which we reuse :mod:`repro.isomorphism` (VF2, non-induced — the standard
FSM semantics).

Support is measured with the anti-monotone **MNI** (minimum node image)
measure: the support of a pattern is the minimum, over its vertices, of the
number of distinct target vertices that vertex maps to across all
embeddings.  Anti-monotonicity makes threshold pruning sound.

Patterns are deduplicated with a canonical form (lexicographically minimal
adjacency encoding over all vertex permutations — exact, viable for the
small patterns FSM explores).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..graph.builder import build_undirected
from ..graph.csr import CSRGraph
from ..isomorphism.vf2 import vf2_embeddings

__all__ = ["FrequentPattern", "frequent_subgraphs", "canonical_form", "mni_support"]

Edge = Tuple[int, int]


@dataclass
class FrequentPattern:
    """One frequent pattern with its support."""

    edges: Tuple[Edge, ...]
    num_vertices: int
    support: int
    embeddings: int

    def to_graph(self) -> CSRGraph:
        return build_undirected(self.num_vertices, list(self.edges))


def canonical_form(num_vertices: int, edges: Tuple[Edge, ...]) -> Tuple:
    """Exact canonical form: minimal sorted-edge tuple over permutations."""
    edge_set = {(min(u, v), max(u, v)) for u, v in edges}
    best: Optional[Tuple] = None
    for perm in permutations(range(num_vertices)):
        relabeled = tuple(
            sorted((min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in edge_set)
        )
        if best is None or relabeled < best:
            best = relabeled
    return (num_vertices, best)


def mni_support(graph: CSRGraph, num_vertices: int, edges: Tuple[Edge, ...],
                max_embeddings: int = 20000) -> Tuple[int, int]:
    """Return ``(MNI support, #embeddings)`` of the pattern in *graph*."""
    pattern = build_undirected(num_vertices, list(edges))
    images: List[Set[int]] = [set() for _ in range(num_vertices)]
    count = 0
    for mapping in vf2_embeddings(graph, pattern, induced=False,
                                  limit=max_embeddings):
        count += 1
        for q, t in enumerate(mapping):
            images[q].add(t)
    if count == 0:
        return 0, 0
    return min(len(s) for s in images), count


def _extensions(num_vertices: int, edges: Tuple[Edge, ...]) -> List[
    Tuple[int, Tuple[Edge, ...]]
]:
    """All one-edge extensions: close an open pair or attach a new vertex."""
    existing = {(min(u, v), max(u, v)) for u, v in edges}
    out = []
    # Close an internal pair.
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if (u, v) not in existing:
                out.append((num_vertices, tuple(sorted(existing | {(u, v)}))))
    # Attach a fresh vertex to each existing one.
    for u in range(num_vertices):
        out.append(
            (num_vertices + 1, tuple(sorted(existing | {(u, num_vertices)})))
        )
    return out


def frequent_subgraphs(
    graph: CSRGraph,
    min_support: int,
    max_edges: int = 3,
    strategy: str = "bfs",
) -> List[FrequentPattern]:
    """Mine all connected patterns with MNI support ≥ *min_support*.

    ``strategy`` selects the exploration order — ``"bfs"`` (all patterns
    with ``e`` edges before ``e+1``) or ``"dfs"`` (pattern growth).  Both
    return the same pattern set; they differ in memory/locality, which is
    the trade-off the paper's specification calls out.
    """
    if strategy not in ("bfs", "dfs"):
        raise ValueError("strategy must be 'bfs' or 'dfs'")
    seed: Tuple[int, Tuple[Edge, ...]] = (2, ((0, 1),))
    seen: Set[Tuple] = set()
    results: List[FrequentPattern] = []

    def evaluate(nv: int, edges: Tuple[Edge, ...]) -> Optional[FrequentPattern]:
        key = canonical_form(nv, edges)
        if key in seen:
            return None
        seen.add(key)
        support, count = mni_support(graph, nv, edges)
        if support < min_support:
            return None
        pattern = FrequentPattern(
            edges=edges, num_vertices=nv, support=support, embeddings=count
        )
        results.append(pattern)
        return pattern

    if strategy == "bfs":
        frontier = []
        if evaluate(*seed) is not None:
            frontier = [seed]
        level = 1
        while frontier and level < max_edges:
            nxt = []
            for nv, edges in frontier:
                for cand_nv, cand_edges in _extensions(nv, edges):
                    if evaluate(cand_nv, cand_edges) is not None:
                        nxt.append((cand_nv, cand_edges))
            frontier = nxt
            level += 1
    else:

        def grow(nv: int, edges: Tuple[Edge, ...]) -> None:
            if len(edges) >= max_edges:
                return
            for cand_nv, cand_edges in _extensions(nv, edges):
                if evaluate(cand_nv, cand_edges) is not None:
                    grow(cand_nv, cand_edges)

        if evaluate(*seed) is not None:
            grow(*seed)
    return results

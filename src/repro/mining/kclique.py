"""k-clique listing and counting (paper section 6.3, Listing 7).

The GMS reformulation of the Danisch et al. kClist algorithm: reorder the
vertices (DGR or ADG), orient the graph along the order (``dir(G)``), and
recursively shrink candidate sets ``C_i`` with out-neighborhood
intersections::

    count(i, C_i):
        if i == k: return |C_i|
        return Σ_{v ∈ C_i} count(i + 1, N⁺(v) ∩ C_i)

Variants:

* ``"node"`` — node-parallel: one task per vertex, starting from
  ``C_2 = N⁺(u)``.
* ``"edge"`` — edge-parallel: one task per arc, starting from
  ``C_3 = N⁺(u) ∩ N⁺(v)`` — lower depth, more memory (section 7.2).

The kernels are written purely against the
:class:`~repro.core.interface.SetBase` algebra over a materialized
:class:`~repro.graph.set_graph.SetGraph` (the ``5+`` modularity hook): the
oriented out-neighborhoods are sets of the chosen representation, candidate
sets shrink via ``assign`` + ``intersect_inplace`` into one scratch set per
recursion level, and the innermost level goes through ``intersect_count`` —
so an approximate backend (``"bloom"``/``"kmv"``) turns the same code into a
ProbGraph-style estimator without a separate code path.

The GMS memory optimization bounds the space of every ``C_{i+1}`` by
``|C_i|`` (candidate sets only ever shrink, and the per-level scratch sets
are reused across siblings), instead of the ``Δ²``-sized scratch buffers of
the original code; there is no special-case code path for ``k = 3``,
matching the "all variants for k ≥ 3" observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Type

from ..core.interface import SetBase
from ..core.sorted_set import SortedSet
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache, SetGraph

__all__ = ["KCliqueResult", "kclique_count", "kclique_list"]


@dataclass
class KCliqueResult:
    """Outcome of one k-clique run."""

    variant: str
    k: int
    count: int
    reorder_seconds: float
    mine_seconds: float
    task_costs: List[float] = field(default_factory=list)
    ordering_rounds: int = 1

    @property
    def total_seconds(self) -> float:
        return self.reorder_seconds + self.mine_seconds

    def throughput(self) -> float:
        """k-cliques found per second (algorithmic-efficiency metric)."""
        return self.count / self.total_seconds if self.total_seconds > 0 else 0.0


def _count_rec(
    dag: SetGraph, i: int, k: int, candidates: SetBase, scratch: List[SetBase]
) -> int:
    """kClist recursion over set algebra with per-level scratch reuse.

    Level ``i + 1``'s candidate set is ``scratch[i + 1]``, overwritten for
    every sibling with the fused ``intersect_assign`` (backends skip the
    intermediate copy the unfused ``assign`` + ``intersect_inplace`` pair
    would make); by the time level ``i`` loops to its next candidate, the
    whole subtree below has returned, so reuse is safe.  The innermost
    level is a pure ``intersect_count`` — the hook where sketch backends
    estimate.
    """
    if i == k:
        return candidates.cardinality()
    if i + 1 == k:
        return sum(
            candidates.intersect_count(dag[v])
            for v in candidates.to_array().tolist()
        )
    total = 0
    nxt = scratch[i + 1]
    for v in candidates.to_array().tolist():
        nxt.intersect_assign(candidates, dag[v])
        if not nxt.is_empty():
            total += _count_rec(dag, i + 1, k, nxt, scratch)
    return total


def _materialize(
    graph: CSRGraph,
    ordering: str,
    set_cls: Type[SetBase],
    eps: float,
    cache: Optional[MaterializationCache],
):
    """Resolve ordering + oriented DAG through the materialization layer."""
    if cache is None:
        cache = MaterializationCache()
    kwargs = {"eps": eps} if ordering == "ADG" else {}
    return cache.oriented(graph, set_cls, ordering, **kwargs)


def kclique_count(
    graph: CSRGraph,
    k: int,
    ordering: str = "DGR",
    parallel: str = "edge",
    eps: float = 0.1,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> KCliqueResult:
    """Count k-cliques with the chosen ordering and parallelization.

    ``k = 2`` degenerates to edge counting; ``k = 3`` is triangle counting
    (no special-cased code path).  ``set_cls`` selects the set
    representation (default :class:`~repro.core.sorted_set.SortedSet`, the
    CSR-like sorted-array layout); an approximate class yields a ProbGraph
    estimate.  ``cache`` (a :class:`~repro.graph.set_graph.SetGraph`
    materialization cache) lets suite runs share the oriented DAG across
    kernels and repeats.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if parallel not in ("node", "edge"):
        raise ValueError("parallel must be 'node' or 'edge'")
    cls = set_cls or SortedSet
    t0 = time.perf_counter()
    order_res, dag = _materialize(graph, ordering, cls, eps, cache)
    reorder_seconds = time.perf_counter() - t0

    # One scratch candidate set per recursion level (the kClist memory
    # bound): level i's candidates only ever shrink from level i-1's.
    scratch = [cls.empty() for _ in range(k + 1)]
    total = 0
    task_costs: List[float] = []
    t1 = time.perf_counter()
    if parallel == "node" or k == 2:
        for u in dag.vertices():
            tv = time.perf_counter()
            c2 = dag[u]
            if not c2.is_empty():
                total += _count_rec(dag, 2, k, c2, scratch)
            task_costs.append(time.perf_counter() - tv)
    else:
        nxt = scratch[3]
        for u in dag.vertices():
            neigh_u = dag[u]
            for v in neigh_u.to_array().tolist():
                tv = time.perf_counter()
                if k == 3:
                    total += neigh_u.intersect_count(dag[v])
                else:
                    nxt.intersect_assign(neigh_u, dag[v])
                    if not nxt.is_empty():
                        total += _count_rec(dag, 3, k, nxt, scratch)
                task_costs.append(time.perf_counter() - tv)
    mine_seconds = time.perf_counter() - t1
    return KCliqueResult(
        variant=f"KC-{order_res.name}-{parallel}",
        k=k,
        count=total,
        reorder_seconds=reorder_seconds,
        mine_seconds=mine_seconds,
        task_costs=task_costs,
        ordering_rounds=order_res.rounds,
    )


def kclique_list(
    graph: CSRGraph,
    k: int,
    ordering: str = "DGR",
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> List[List[int]]:
    """List (not just count) all k-cliques, as sorted vertex lists."""
    if k < 2:
        raise ValueError("k must be >= 2")
    cls = set_cls or SortedSet
    _, dag = _materialize(graph, ordering, cls, 0.1, cache)
    out: List[List[int]] = []

    def rec(prefix: List[int], i: int, candidates: SetBase) -> None:
        if i == k:
            for v in candidates.to_array().tolist():
                out.append(sorted(prefix + [v]))
            return
        for v in candidates.to_array().tolist():
            rec(prefix + [v], i + 1, candidates.intersect(dag[v]))

    for u in dag.vertices():
        c2 = dag[u]
        if k == 2:
            for v in c2.to_array().tolist():
                out.append(sorted([u, v]))
        else:
            rec([u], 2, c2)
    return out

"""k-clique listing and counting (paper section 6.3, Listing 7).

The GMS reformulation of the Danisch et al. kClist algorithm: reorder the
vertices (DGR or ADG), orient the graph along the order (``dir(G)``), and
recursively shrink candidate sets ``C_i`` with out-neighborhood
intersections::

    count(i, C_i):
        if i == k: return |C_i|
        return Σ_{v ∈ C_i} count(i + 1, N⁺(v) ∩ C_i)

Variants:

* ``"node"`` — node-parallel: one task per vertex, starting from
  ``C_2 = N⁺(u)``.
* ``"edge"`` — edge-parallel: one task per arc, starting from
  ``C_3 = N⁺(u) ∩ N⁺(v)`` — lower depth, more memory (section 7.2).

The GMS memory optimization bounds the space of every ``C_{i+1}`` by
``|C_i|`` (candidate arrays only ever shrink), instead of the ``Δ²``-sized
scratch buffers of the original code; there is no special-case code path
for ``k = 3``, matching the "all variants for k ≥ 3" observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.transforms import orient_by_rank
from ..preprocess.ordering import compute_ordering

__all__ = ["KCliqueResult", "kclique_count", "kclique_list"]


@dataclass
class KCliqueResult:
    """Outcome of one k-clique run."""

    variant: str
    k: int
    count: int
    reorder_seconds: float
    mine_seconds: float
    task_costs: List[float] = field(default_factory=list)
    ordering_rounds: int = 1

    @property
    def total_seconds(self) -> float:
        return self.reorder_seconds + self.mine_seconds

    def throughput(self) -> float:
        """k-cliques found per second (algorithmic-efficiency metric)."""
        return self.count / self.total_seconds if self.total_seconds > 0 else 0.0


def _count_rec(dag: CSRGraph, i: int, k: int, candidates: np.ndarray) -> int:
    if i == k:
        return len(candidates)
    total = 0
    for v in candidates.tolist():
        nxt = np.intersect1d(dag.out_neigh(v), candidates, assume_unique=True)
        if len(nxt) >= 1:
            total += _count_rec(dag, i + 1, k, nxt)
    return total


def kclique_count(
    graph: CSRGraph,
    k: int,
    ordering: str = "DGR",
    parallel: str = "edge",
    eps: float = 0.1,
) -> KCliqueResult:
    """Count k-cliques with the chosen ordering and parallelization.

    ``k = 2`` degenerates to edge counting; ``k = 3`` is triangle counting
    (no special-cased code path).
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if parallel not in ("node", "edge"):
        raise ValueError("parallel must be 'node' or 'edge'")
    t0 = time.perf_counter()
    kwargs = {"eps": eps} if ordering == "ADG" else {}
    order_res = compute_ordering(graph, ordering, **kwargs)
    dag = orient_by_rank(graph, order_res.rank)
    reorder_seconds = time.perf_counter() - t0

    total = 0
    task_costs: List[float] = []
    t1 = time.perf_counter()
    if parallel == "node" or k == 2:
        for u in dag.vertices():
            tv = time.perf_counter()
            c2 = dag.out_neigh(u)
            if len(c2) >= 1:
                total += _count_rec(dag, 2, k, c2)
            task_costs.append(time.perf_counter() - tv)
    else:
        for u in dag.vertices():
            neigh_u = dag.out_neigh(u)
            for v in neigh_u.tolist():
                tv = time.perf_counter()
                c3 = np.intersect1d(neigh_u, dag.out_neigh(v), assume_unique=True)
                if len(c3) >= 1 or k == 3:
                    total += _count_rec(dag, 3, k, c3)
                task_costs.append(time.perf_counter() - tv)
    mine_seconds = time.perf_counter() - t1
    return KCliqueResult(
        variant=f"KC-{order_res.name}-{parallel}",
        k=k,
        count=total,
        reorder_seconds=reorder_seconds,
        mine_seconds=mine_seconds,
        task_costs=task_costs,
        ordering_rounds=order_res.rounds,
    )


def kclique_list(
    graph: CSRGraph, k: int, ordering: str = "DGR"
) -> List[List[int]]:
    """List (not just count) all k-cliques, as sorted vertex lists."""
    if k < 2:
        raise ValueError("k must be >= 2")
    order_res = compute_ordering(graph, ordering)
    dag = orient_by_rank(graph, order_res.rank)
    out: List[List[int]] = []

    def rec(prefix: List[int], i: int, candidates: np.ndarray) -> None:
        if i == k:
            for v in candidates.tolist():
                out.append(sorted(prefix + [v]))
            return
        for v in candidates.tolist():
            nxt = np.intersect1d(dag.out_neigh(v), candidates, assume_unique=True)
            rec(prefix + [v], i + 1, nxt)

    for u in dag.vertices():
        c2 = dag.out_neigh(u)
        if k == 2:
            for v in c2.tolist():
                out.append(sorted([u, v]))
        else:
            rec([u], 2, c2)
    return out

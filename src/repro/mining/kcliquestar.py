"""k-clique-star listing (paper section 6.6).

A *k-clique-star* is a k-clique together with the set of additional
vertices adjacent to **all** clique members (the "star").  The paper's
observation: each star vertex forms a (k+1)-clique with the k-clique, so
the search can reuse the k-clique machinery — mine k-cliques, then derive
each star with set intersections, membership, and difference.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from .kclique import kclique_list

__all__ = ["kclique_stars", "kclique_star_count"]


def kclique_stars(
    graph: CSRGraph, k: int, min_star: int = 1
) -> List[Tuple[List[int], List[int]]]:
    """List ``(clique, star)`` pairs for all k-cliques with ``|star| ≥ min_star``.

    The star of a clique ``C`` is ``(∩_{v ∈ C} N(v)) \\ C`` — exactly the
    vertices completing ``C`` into a (k+1)-clique, per section 6.6.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    results: List[Tuple[List[int], List[int]]] = []
    for clique in kclique_list(graph, k):
        star = graph.out_neigh(clique[0])
        for v in clique[1:]:
            star = np.intersect1d(star, graph.out_neigh(v), assume_unique=True)
            if len(star) == 0:
                break
        star = np.setdiff1d(star, np.asarray(clique), assume_unique=True)
        if len(star) >= min_star:
            results.append((clique, star.tolist()))
    return results


def kclique_star_count(graph: CSRGraph, k: int, min_star: int = 1) -> int:
    """Number of k-clique-stars with at least *min_star* star vertices."""
    return len(kclique_stars(graph, k, min_star))

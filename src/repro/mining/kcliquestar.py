"""k-clique-star listing (paper section 6.6).

A *k-clique-star* is a k-clique together with the set of additional
vertices adjacent to **all** clique members (the "star").  The paper's
observation: each star vertex forms a (k+1)-clique with the k-clique, so
the search can reuse the k-clique machinery — mine k-cliques, then derive
each star with set intersections, membership, and difference, all through
the :class:`~repro.core.interface.SetBase` algebra over a materialized
:class:`~repro.graph.set_graph.SetGraph`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type

from ..core.interface import SetBase
from ..core.sorted_set import SortedSet
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from .kclique import kclique_list

__all__ = ["kclique_stars", "kclique_star_count"]


def kclique_stars(
    graph: CSRGraph,
    k: int,
    min_star: int = 1,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> List[Tuple[List[int], List[int]]]:
    """List ``(clique, star)`` pairs for all k-cliques with ``|star| ≥ min_star``.

    The star of a clique ``C`` is ``(∩_{v ∈ C} N(v)) \\ C`` — exactly the
    vertices completing ``C`` into a (k+1)-clique, per section 6.6.  The
    running intersection shrinks in place (one scratch set per clique), and
    the final ``\\ C`` is the ``diff_element`` overload of Listing 1.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    cls = set_cls or SortedSet
    if cache is None:
        cache = MaterializationCache()
    sets = cache.set_graph(graph, cls)
    results: List[Tuple[List[int], List[int]]] = []
    for clique in kclique_list(graph, k, set_cls=cls, cache=cache):
        star = cls.empty()
        star.intersect_assign(sets[clique[0]], sets[clique[1]])
        for v in clique[2:]:
            if star.is_empty():
                break
            star.intersect_inplace(sets[v])
        for v in clique:
            star.remove(v)
        if star.cardinality() >= min_star:
            results.append((clique, star.to_array().tolist()))
    return results


def kclique_star_count(
    graph: CSRGraph,
    k: int,
    min_star: int = 1,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> int:
    """Number of k-clique-stars with at least *min_star* star vertices."""
    return len(kclique_stars(graph, k, min_star, set_cls=set_cls, cache=cache))

"""k-core decomposition and dense-subgraph discovery (paper sections 4.1.1, 6.1).

The degeneracy order directly yields the k-cores of a graph: iterate in
order and keep vertices whose core number is at least ``k``.  GMS provides
the exact decomposition (via DGR peeling) and the (2+ε)-approximate variant
built on ADG (section 6.1 / appendix A).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.transforms import induced_subgraph
from ..preprocess.ordering import approx_coreness, coreness

__all__ = ["core_numbers", "k_core", "approx_core_numbers", "core_histogram"]


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Exact core number of every vertex (O(n + m) peeling)."""
    return coreness(graph)


def approx_core_numbers(graph: CSRGraph, eps: float = 0.5) -> np.ndarray:
    """(2+ε)-approximate core numbers derived from the ADG rounds."""
    return approx_coreness(graph, eps)


def k_core(graph: CSRGraph, k: int) -> Tuple[CSRGraph, np.ndarray]:
    """Return the k-core subgraph and its vertex IDs (original labels).

    The k-core is the maximal subgraph in which every vertex has degree at
    least ``k``; it is empty when ``k`` exceeds the degeneracy.
    """
    cores = coreness(graph)
    members = np.nonzero(cores >= k)[0]
    if len(members) == 0:
        return graph.__class__(
            np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
        ), members
    return induced_subgraph(graph, members)[0], members


def core_histogram(graph: CSRGraph) -> List[Tuple[int, int]]:
    """``(k, #vertices with core number k)`` pairs, ascending in k."""
    cores = coreness(graph)
    if len(cores) == 0:
        return []
    counts = np.bincount(cores)
    return [(k, int(c)) for k, c in enumerate(counts) if c > 0]

"""Triangle counting (paper Figure 2 example kernel; Table 8 rows).

Two classic schemes, both expressed with set algebra:

* **node iterator** — for every edge ``(v, w)``, add ``|N(v) ∩ N(w)|``;
  every triangle is counted once per corner, so divide by 3 at the end
  (exactly the ``tc`` example of Figure 2).
* **rank merge** (a.k.a. *forward*) — orient edges by a degree order and
  intersect *out*-neighborhoods, counting every triangle exactly once;
  the ``O(m^{3/2})`` scheme of Table 8.

Both accept a pluggable set class (modularity hook ``5+``) or run on raw
sorted arrays for speed.
"""

from __future__ import annotations

from typing import Optional, Type

import numpy as np

from ..core.interface import SetBase
from ..graph.csr import CSRGraph
from ..graph.transforms import orient_by_rank
from ..preprocess.ordering import degree_order

__all__ = ["triangle_count_node_iterator", "triangle_count_rank_merge"]


def triangle_count_node_iterator(
    graph: CSRGraph, set_cls: Optional[Type[SetBase]] = None
) -> int:
    """Count triangles with the node-iterator scheme (Figure 2's ``tc``)."""
    total = 0
    if set_cls is None:
        for v in graph.vertices():
            neigh_v = graph.out_neigh(v)
            for w in neigh_v.tolist():
                total += len(np.intersect1d(neigh_v, graph.out_neigh(w),
                                            assume_unique=True))
    else:
        sets = [graph.neighborhood_set(v, set_cls) for v in graph.vertices()]
        for v in graph.vertices():
            sv = sets[v]
            for w in graph.out_neigh(v).tolist():
                total += sv.intersect_count(sets[w])
    # Each triangle {a, b, c} is found once per ordered corner pair: 6 times
    # over the symmetric adjacency, i.e. tc/3 with the paper's per-edge loop
    # over directed arcs being tc/6 here (we loop over both arc directions).
    return total // 6


def triangle_count_rank_merge(
    graph: CSRGraph, set_cls: Optional[Type[SetBase]] = None
) -> int:
    """Count triangles with the rank-merge (forward) scheme."""
    rank = degree_order(graph).rank
    dag = orient_by_rank(graph, rank)
    total = 0
    if set_cls is None:
        for u in dag.vertices():
            neigh_u = dag.out_neigh(u)
            for v in neigh_u.tolist():
                total += len(np.intersect1d(neigh_u, dag.out_neigh(v),
                                            assume_unique=True))
    else:
        sets = [dag.neighborhood_set(v, set_cls) for v in dag.vertices()]
        for u in dag.vertices():
            su = sets[u]
            for v in dag.out_neigh(u).tolist():
                total += su.intersect_count(sets[v])
    return total

"""Triangle counting (paper Figure 2 example kernel; Table 8 rows).

Two classic schemes, both expressed with set algebra over a materialized
:class:`~repro.graph.set_graph.SetGraph`:

* **node iterator** — for every edge ``(v, w)``, add ``|N(v) ∩ N(w)|``;
  every triangle is counted once per corner, so divide by 3 at the end
  (exactly the ``tc`` example of Figure 2).
* **rank merge** (a.k.a. *forward*) — orient edges by a degree order and
  intersect *out*-neighborhoods, counting every triangle exactly once;
  the ``O(m^{3/2})`` scheme of Table 8.

Both take a pluggable set class (modularity hook ``5+``); the default is
the CSR-like :class:`~repro.core.sorted_set.SortedSet`.  Every candidate
count goes through ``SetBase.intersect_count``, so approximate backends
(``"bloom"``/``"kmv"``) estimate with the same kernel code.
"""

from __future__ import annotations

from typing import Optional, Type

from ..core.interface import SetBase
from ..core.sorted_set import SortedSet
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache

__all__ = ["triangle_count_node_iterator", "triangle_count_rank_merge"]


def triangle_count_node_iterator(
    graph: CSRGraph,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> int:
    """Count triangles with the node-iterator scheme (Figure 2's ``tc``)."""
    cls = set_cls or SortedSet
    if cache is None:
        cache = MaterializationCache()
    sets = cache.set_graph(graph, cls)
    total = 0
    for v in graph.vertices():
        sv = sets[v]
        for w in graph.out_neigh(v).tolist():
            total += sv.intersect_count(sets[w])
    # Each triangle {a, b, c} is found once per ordered corner pair: 6 times
    # over the symmetric adjacency, i.e. tc/3 with the paper's per-edge loop
    # over directed arcs being tc/6 here (we loop over both arc directions).
    return total // 6


def triangle_count_rank_merge(
    graph: CSRGraph,
    set_cls: Optional[Type[SetBase]] = None,
    cache: Optional[MaterializationCache] = None,
) -> int:
    """Count triangles with the rank-merge (forward) scheme."""
    cls = set_cls or SortedSet
    if cache is None:
        cache = MaterializationCache()
    _, dag = cache.oriented(graph, cls, "DEG")
    total = 0
    for u in dag.vertices():
        su = dag[u]
        for v in su.to_array().tolist():
            total += su.intersect_count(dag[v])
    return total

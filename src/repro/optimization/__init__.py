"""Optimization problems of the GMS specification (section 4.1.4)."""

from .coloring import ColoringResult, johansson, jones_plassmann, verify_coloring
from .mincut import contract_once, karger_stein
from .mst import MSTResult, boruvka

__all__ = [
    "ColoringResult",
    "jones_plassmann",
    "johansson",
    "verify_coloring",
    "MSTResult",
    "boruvka",
    "karger_stein",
    "contract_once",
]

"""Graph coloring (paper section 4.1.4, appendix A).

Three algorithm families from the GMS specification:

* **Jones–Plassmann (JP)** — vertex-prioritization: a random (or
  ordering-derived) priority; in each parallel round, every vertex that is
  a local maximum among its uncolored neighbors takes the smallest color
  absent from its neighborhood.  The number of rounds is the depth proxy.
* **Hasenplaugh et al. orderings** — JP driven by smarter priorities:
  largest-degree-first (LF), smallest-degree-last (SL = degeneracy order),
  or first-fit (FF = vertex IDs).
* **Johansson's randomized palette** — each uncolored vertex picks a random
  color from a palette of size ``Δ + 1``; conflicts (a neighbor picked the
  same color) retry in the next round.

All return a proper coloring; :func:`verify_coloring` checks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..preprocess.ordering import degeneracy_order

__all__ = ["ColoringResult", "jones_plassmann", "johansson", "verify_coloring"]


@dataclass
class ColoringResult:
    """A proper coloring with its quality and round count."""

    method: str
    colors: np.ndarray
    rounds: int

    @property
    def num_colors(self) -> int:
        return int(self.colors.max()) + 1 if len(self.colors) else 0


def _priorities(graph: CSRGraph, priority: str, seed: int) -> np.ndarray:
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    if priority == "random":
        return rng.permutation(n).astype(np.float64)
    if priority == "FF":  # first-fit: plain IDs
        return np.arange(n, dtype=np.float64)[::-1]
    if priority == "LF":  # largest degree first
        return graph.degrees().astype(np.float64) + rng.random(n) * 0.5
    if priority == "SL":  # smallest degree last = degeneracy order
        order, _ = degeneracy_order(graph)
        pri = np.empty(n, dtype=np.float64)
        pri[order] = np.arange(n)  # later removal = higher priority
        return pri
    raise ValueError(
        f"unknown priority {priority!r}; known: random, FF, LF, SL"
    )


def jones_plassmann(
    graph: CSRGraph, priority: str = "random", seed: int = 0
) -> ColoringResult:
    """JP coloring with a pluggable priority (Hasenplaugh's orderings)."""
    n = graph.num_nodes
    pri = _priorities(graph, priority, seed)
    colors = np.full(n, -1, dtype=np.int64)
    uncolored = set(range(n))
    rounds = 0
    while uncolored:
        rounds += 1
        # All local maxima color independently (conceptually in parallel).
        batch = []
        for v in uncolored:
            is_max = True
            for u in graph.out_neigh(v).tolist():
                if colors[u] < 0 and u != v and pri[u] > pri[v]:
                    is_max = False
                    break
            if is_max:
                batch.append(v)
        for v in batch:
            taken = {int(colors[u]) for u in graph.out_neigh(v).tolist()
                     if colors[u] >= 0}
            c = 0
            while c in taken:
                c += 1
            colors[v] = c
        uncolored.difference_update(batch)
    return ColoringResult(f"JP-{priority}", colors, rounds)


def johansson(graph: CSRGraph, seed: int = 0, max_rounds: int = 1000) -> ColoringResult:
    """Johansson's randomized (Δ+1)-palette coloring with conflict retry."""
    n = graph.num_nodes
    palette = graph.max_degree() + 1
    rng = np.random.default_rng(seed)
    colors = np.full(n, -1, dtype=np.int64)
    uncolored = np.ones(n, dtype=bool)
    rounds = 0
    while uncolored.any():
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("johansson failed to converge")
        tentative = colors.copy()
        for v in np.nonzero(uncolored)[0].tolist():
            taken = {int(colors[u]) for u in graph.out_neigh(v).tolist()
                     if colors[u] >= 0}
            free = [c for c in range(palette) if c not in taken]
            tentative[v] = free[int(rng.integers(len(free)))]
        # Keep only conflict-free picks (all picks happen "simultaneously").
        for v in np.nonzero(uncolored)[0].tolist():
            ok = True
            for u in graph.out_neigh(v).tolist():
                if uncolored[u] and tentative[u] == tentative[v] and u < v:
                    ok = False
                    break
                if not uncolored[u] and colors[u] == tentative[v]:
                    ok = False
                    break
            if ok:
                colors[v] = tentative[v]
        uncolored = colors < 0
    return ColoringResult("Johansson", colors, rounds)


def verify_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """Check that no edge is monochromatic and all vertices are colored."""
    if len(colors) != graph.num_nodes or (len(colors) and colors.min() < 0):
        return False
    return all(colors[u] != colors[v] for u, v in graph.edges())

"""Minimum cut: Karger–Stein recursive contraction (paper Table 4).

The paper includes minimum cut as its "superlinear-P" optimization
representative, via an augmented Karger–Stein algorithm.  This is the
classic recursive-contraction scheme: contract random edges until
``n/√2 + 1`` vertices remain, recurse twice, return the better cut; with
O(log² n) repetitions the minimum cut is found with high probability.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["karger_stein", "contract_once"]

_EdgeList = List[Tuple[int, int]]


def _contract_to(
    edges: _EdgeList, labels: List[int], target: int, rng: np.random.Generator
) -> Tuple[_EdgeList, List[int], int]:
    """Contract random edges until only *target* super-vertices remain."""
    parent = list(range(len(labels)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    alive = len({find(v) for v in range(len(labels))})
    order = rng.permutation(len(edges))
    for idx in order.tolist():
        if alive <= target:
            break
        u, v = edges[idx]
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[rv] = ru
            alive -= 1
    remaining = [(u, v) for u, v in edges if find(u) != find(v)]
    roots = sorted({find(v) for v in range(len(labels))})
    compact = {r: i for i, r in enumerate(roots)}
    new_edges = [(compact[find(u)], compact[find(v)]) for u, v in remaining]
    new_labels = list(range(len(roots)))
    return new_edges, new_labels, len(roots)


def _recursive_cut(
    edges: _EdgeList, n: int, rng: np.random.Generator
) -> int:
    if n <= 6:
        # Contract fully a few times; the best result is exact w.h.p. at
        # this size (and we try all O(1) contractions repeatedly).
        best = len(edges)
        for _ in range(12):
            e2, l2, n2 = _contract_to(edges, list(range(n)), 2, rng)
            best = min(best, len(e2))
        return best
    target = int(math.ceil(n / math.sqrt(2))) + 1
    best = len(edges)
    for _ in range(2):
        e2, l2, n2 = _contract_to(edges, list(range(n)), target, rng)
        best = min(best, _recursive_cut(e2, n2, rng))
    return best


def contract_once(graph: CSRGraph, seed: int = 0) -> int:
    """One full Karger contraction — the O(n²) building block."""
    rng = np.random.default_rng(seed)
    edges = [tuple(e) for e in graph.edge_array().tolist()]
    e2, _, _ = _contract_to(edges, list(range(graph.num_nodes)), 2, rng)
    return len(e2)


def karger_stein(graph: CSRGraph, repetitions: int | None = None, seed: int = 0) -> int:
    """Minimum-cut value via repeated Karger–Stein recursion.

    ``repetitions`` defaults to ``⌈log² n⌉`` — the high-probability bound.
    Requires a connected graph (a disconnected graph has cut 0, which is
    returned immediately).
    """
    n = graph.num_nodes
    if n < 2:
        return 0
    edges = [tuple(e) for e in graph.edge_array().tolist()]
    if not _is_connected(graph):
        return 0
    if repetitions is None:
        repetitions = max(1, int(math.ceil(math.log2(max(n, 2)) ** 2)))
    rng = np.random.default_rng(seed)
    best = len(edges)
    for _ in range(repetitions):
        best = min(best, _recursive_cut(edges, n, rng))
    return best


def _is_connected(graph: CSRGraph) -> bool:
    n = graph.num_nodes
    if n == 0:
        return True
    seen = np.zeros(n, dtype=bool)
    stack = [0]
    seen[0] = True
    count = 1
    while stack:
        u = stack.pop()
        for v in graph.out_neigh(u).tolist():
            if not seen[v]:
                seen[v] = True
                count += 1
                stack.append(v)
    return count == n

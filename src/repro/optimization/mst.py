"""Borůvka's minimum spanning tree / forest (paper Table 4, appendix A).

The paper's representative low-complexity optimization problem.  Borůvka
proceeds in O(log n) rounds: every component selects its cheapest outgoing
edge, all selected edges join the forest, components merge (union–find).
The round count is the parallel-depth proxy of the concurrency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["MSTResult", "boruvka"]


@dataclass
class MSTResult:
    """Minimum spanning forest."""

    edges: List[Tuple[int, int]]
    total_weight: float
    rounds: int
    num_components: int


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def boruvka(
    graph: CSRGraph, weights: Optional[np.ndarray] = None
) -> MSTResult:
    """Compute a minimum spanning forest.

    ``weights`` aligns with ``graph.edge_array()`` rows; defaults to
    deterministic pseudo-random weights (seeded by edge endpoints) so that
    unweighted graphs still have a unique MSF.
    """
    n = graph.num_nodes
    edge_arr = graph.edge_array()
    m = len(edge_arr)
    if weights is None:
        # Deterministic distinct-ish weights derived from endpoints.
        weights = (
            (edge_arr[:, 0] * 2654435761 + edge_arr[:, 1] * 40503) % 1000003
        ).astype(np.float64) + 1.0
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != m:
        raise ValueError("weights must align with graph.edge_array()")
    # Tie-break by edge index to make the forest unique.
    uf = _UnionFind(n)
    in_forest = np.zeros(m, dtype=bool)
    rounds = 0
    components = n
    while True:
        rounds += 1
        cheapest: dict = {}
        for i in range(m):
            if in_forest[i]:
                continue
            u, v = int(edge_arr[i, 0]), int(edge_arr[i, 1])
            ru, rv = uf.find(u), uf.find(v)
            if ru == rv:
                continue
            key = (weights[i], i)
            for r in (ru, rv):
                if r not in cheapest or key < cheapest[r][0]:
                    cheapest[r] = (key, i)
        if not cheapest:
            break
        merged_any = False
        for _, i in cheapest.values():
            u, v = int(edge_arr[i, 0]), int(edge_arr[i, 1])
            if uf.union(u, v):
                in_forest[i] = True
                components -= 1
                merged_any = True
        if not merged_any:
            break
    forest_edges = [
        (int(edge_arr[i, 0]), int(edge_arr[i, 1]))
        for i in np.nonzero(in_forest)[0]
    ]
    return MSTResult(
        edges=forest_edges,
        total_weight=float(weights[in_forest].sum()),
        rounds=rounds,
        num_components=components,
    )

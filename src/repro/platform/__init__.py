"""Benchmarking platform: pipeline, CLI, harness (paper section 5)."""

from .aggregate import aggregate_results
from .bench import (
    ARTIFACT_DIR,
    parallel_reorder_seconds,
    print_table,
    simulated_parallel_seconds,
    write_artifact,
)
from .budget_sweep import run_budget_sweep
from .cli import (
    Args,
    add_parallel_args,
    add_sketch_budget_args,
    build_parser,
    parse_args,
    resolve_set_class,
    resolve_set_class_for_graph,
)
from .pipeline import Pipeline, PipelineReport, StageRecord
from .runner import diff_payloads, run_suite_parallel, strip_timing
from .session import MiningSession, Query, QueryResult
from .suite import (
    SUITE_KERNELS,
    ExperimentPlan,
    SuiteKernel,
    register_suite_kernel,
    run_suite,
)

__all__ = [
    "Pipeline",
    "PipelineReport",
    "StageRecord",
    "Args",
    "add_parallel_args",
    "add_sketch_budget_args",
    "build_parser",
    "parse_args",
    "resolve_set_class",
    "resolve_set_class_for_graph",
    "MiningSession",
    "Query",
    "QueryResult",
    "parallel_reorder_seconds",
    "run_budget_sweep",
    "simulated_parallel_seconds",
    "print_table",
    "write_artifact",
    "ARTIFACT_DIR",
    "ExperimentPlan",
    "SuiteKernel",
    "SUITE_KERNELS",
    "register_suite_kernel",
    "run_suite",
    "run_suite_parallel",
    "strip_timing",
    "diff_payloads",
    "aggregate_results",
]

"""Cross-dataset artifact aggregation (``python -m repro aggregate``).

The suite (:mod:`repro.platform.suite`) and the budget sweep
(:mod:`repro.platform.budget_sweep`) both persist per-dataset JSON
artifacts under ``results/``.  This module folds every
``suite_<dataset>.json`` and ``budget_sweep_<dataset>.json`` found there
into one ``results/aggregate.json`` with per-backend speed-vs-accuracy
summaries — the cross-dataset operating picture a single-dataset artifact
cannot show.

Aggregate schema (``results/aggregate.json``)::

    {
      "schema": "gms-aggregate/v2",
      "sources": {"suite": [paths...], "budget_sweep": [paths...]},
      "datasets": [names...],
      "backends": {
        "<set_class>": {
          "cells": int,            # suite cells + sweep rows folded in
          "exact": bool,           # every folded cell exact?
          "mean_rel_error": float, # accuracy across all folded counts
          "max_rel_error": float,
          "mean_seconds": float,   # raw speed across all folded cells
          "mean_speedup": float,   # vs the reference/exact twin, where known
          "per_kernel": {
            "<kernel>": {
              "cells": int, "mean_rel_error": float,
              "mean_seconds": float,
              # work-distribution stats from the gms-suite/v2 per-cell
              # extras (absent for kernels that report none):
              "tasks": int,             # summed kClist/BK outer tasks
              "recursive_calls": int,   # summed BK recursion size
              "cost_imbalance": float,  # mean of per-cell max/mean
                                        # task-cost ratios (1.0 = flat)
            }, ...
          },
        }, ...
      },
      "parallel": [              # measured-vs-modeled speedups, one row
        {                        # per suite run with an execution block
          "dataset": str, "workers": int, "schedule": str,
          "measured_seconds": float, "cells_seconds_total": float,
          "measured_speedup": float,
          "modeled_speedup": float,    # scheduler model, same policy
          "model_accuracy": float,     # measured / modeled speedup
        }, ...
      ],
    }

Backends are keyed by the *plan-level* registry name for suite cells
(``"bloom"``, ``"kmv"``, ``"bitset"``, …) and by the resolved class name
for budget-sweep rows (which sweep many budget-derived classes of one
family); both views coexist in the same table.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from collections import defaultdict
from typing import Dict, List, Optional

from . import bench
from .bench import print_table, write_artifact

__all__ = ["AGGREGATE_SCHEMA", "aggregate_results", "main"]

#: Aggregate schema identifier, bumped on breaking layout changes.
#: v2 (over v1): per-kernel work-distribution stats folded from the
#: gms-suite/v2 cell extras, plus the "parallel" measured-vs-modeled table.
AGGREGATE_SCHEMA = "gms-aggregate/v2"


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class _BackendFold:
    """Accumulates one backend's cells across every artifact."""

    def __init__(self) -> None:
        self.rel_errors: List[float] = []
        self.seconds: List[float] = []
        self.speedups: List[float] = []
        self.exact = True
        self.per_kernel: Dict[str, Dict[str, List[float]]] = defaultdict(
            lambda: {"rel_errors": [], "seconds": [], "tasks": [],
                     "recursive_calls": [], "imbalances": []}
        )

    def add(
        self,
        kernel: str,
        rel_error: float,
        seconds: float,
        exact: bool,
        speedup: Optional[float] = None,
        extras: Optional[Dict[str, object]] = None,
    ) -> None:
        self.rel_errors.append(rel_error)
        self.seconds.append(seconds)
        self.exact = self.exact and exact
        if speedup is not None:
            self.speedups.append(speedup)
        bucket = self.per_kernel[kernel]
        bucket["rel_errors"].append(rel_error)
        bucket["seconds"].append(seconds)
        # gms-suite/v2 work profiles; v1 artifacts simply carry none.
        extras = extras or {}
        if "recursive_calls" in extras:
            bucket["recursive_calls"].append(int(extras["recursive_calls"]))
        costs = extras.get("task_costs") or []
        if costs:
            bucket["tasks"].append(len(costs))
            mean_cost = sum(costs) / len(costs)
            if mean_cost > 0:
                bucket["imbalances"].append(max(costs) / mean_cost)

    def summary(self) -> Dict[str, object]:
        return {
            "cells": len(self.rel_errors),
            "exact": self.exact,
            "mean_rel_error": _mean(self.rel_errors),
            "max_rel_error": max(self.rel_errors, default=0.0),
            "mean_seconds": _mean(self.seconds),
            "mean_speedup": _mean(self.speedups),
            "per_kernel": {
                kernel: self._kernel_summary(bucket)
                for kernel, bucket in sorted(self.per_kernel.items())
            },
        }

    @staticmethod
    def _kernel_summary(bucket: Dict[str, List[float]]) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "cells": len(bucket["rel_errors"]),
            "mean_rel_error": _mean(bucket["rel_errors"]),
            "mean_seconds": _mean(bucket["seconds"]),
        }
        if bucket["tasks"]:
            summary["tasks"] = int(sum(bucket["tasks"]))
            summary["cost_imbalance"] = _mean(bucket["imbalances"])
        if bucket["recursive_calls"]:
            summary["recursive_calls"] = int(sum(bucket["recursive_calls"]))
        return summary


def _fold_suite(payload: Dict[str, object], folds: Dict[str, _BackendFold]) -> None:
    # Reference-backend seconds per (kernel, ordering) anchor the speedups.
    ref = payload.get("reference_backend", "sorted")
    ref_seconds = {
        (c["kernel"], c["ordering"]): c["seconds"]
        for c in payload["cells"]
        if c["set_class"] == ref
    }
    for cell in payload["cells"]:
        base = ref_seconds.get((cell["kernel"], cell["ordering"]))
        speedup = (
            base / cell["seconds"]
            if base is not None and cell["seconds"] > 0
            else None
        )
        folds[cell["set_class"]].add(
            cell["kernel"], cell["rel_error"], cell["seconds"],
            cell["exact"], speedup, cell.get("extras"),
        )


def _parallel_row(payload: Dict[str, object]) -> Optional[Dict[str, object]]:
    """One measured-vs-modeled row from a payload's execution block."""
    execution = payload.get("execution")
    if not execution:
        return None  # gms-suite/v1 artifact
    modeled = execution["modeled"].get(
        execution["schedule"], execution["modeled"].get("dynamic", {})
    )
    modeled_speedup = modeled.get("speedup", 0.0)
    measured_speedup = execution["measured_speedup"]
    return {
        "dataset": payload["dataset"],
        "workers": execution["workers"],
        "schedule": execution["schedule"],
        "measured_seconds": execution["measured_seconds"],
        "cells_seconds_total": execution["cells_seconds_total"],
        "measured_speedup": measured_speedup,
        "modeled_speedup": modeled_speedup,
        "model_accuracy": (
            measured_speedup / modeled_speedup if modeled_speedup else 0.0
        ),
    }


def _fold_budget_sweep(
    payload: Dict[str, object], folds: Dict[str, _BackendFold]
) -> None:
    for row in payload["rows"]:
        fold = folds[row["set_class"]]
        # The sweep measures three kernels per row; fold each as one cell.
        fold.add("tc", row["tc_rel_error"], row["tc_seconds"], False)
        fold.add("4clique", row["fc_rel_error"], row["fc_seconds"], False)
        fold.add("4clique+reconcile", row["fc_reconciled_rel_error"],
                 row["fc_reconciled_seconds"], False)


def aggregate_results(
    results_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Merge every suite/budget-sweep artifact under *results_dir*.

    Returns the aggregate payload (see module docstring for the schema);
    raises :class:`FileNotFoundError` when no artifact is found — an empty
    aggregate would silently hide a miswired results directory.
    """
    # bench.ARTIFACT_DIR is read at call time (not import time) so test
    # harnesses that monkeypatch the shared artifact dir are honored here.
    base = results_dir or bench.ARTIFACT_DIR
    suite_paths = sorted(glob.glob(os.path.join(base, "suite_*.json")))
    sweep_paths = sorted(glob.glob(os.path.join(base, "budget_sweep_*.json")))
    if not suite_paths and not sweep_paths:
        raise FileNotFoundError(
            f"no suite_*.json or budget_sweep_*.json artifacts under {base!r}"
        )

    folds: Dict[str, _BackendFold] = defaultdict(_BackendFold)
    datasets = []
    parallel: List[Dict[str, object]] = []
    for path in suite_paths:
        with open(path) as handle:
            payload = json.load(handle)
        datasets.append(payload["dataset"])
        _fold_suite(payload, folds)
        row = _parallel_row(payload)
        if row is not None:
            parallel.append(row)
    for path in sweep_paths:
        with open(path) as handle:
            payload = json.load(handle)
        datasets.append(payload["dataset"])
        _fold_budget_sweep(payload, folds)

    return {
        "schema": AGGREGATE_SCHEMA,
        "sources": {
            "suite": [os.path.basename(p) for p in suite_paths],
            "budget_sweep": [os.path.basename(p) for p in sweep_paths],
        },
        "datasets": sorted(set(datasets)),
        "backends": {
            name: fold.summary() for name, fold in sorted(folds.items())
        },
        "parallel": parallel,
    }


def _print_aggregate(payload: Dict[str, object]) -> None:
    rows = [
        [
            name,
            summary["cells"],
            "yes" if summary["exact"] else "no",
            f"{100 * summary['mean_rel_error']:.2f}%",
            f"{100 * summary['max_rel_error']:.2f}%",
            f"{1000 * summary['mean_seconds']:.1f} ms",
            (f"{summary['mean_speedup']:.2f}x"
             if summary["mean_speedup"] else "-"),
        ]
        for name, summary in payload["backends"].items()
    ]
    print_table(
        f"Cross-dataset aggregate — {len(payload['datasets'])} dataset(s), "
        f"{len(payload['sources']['suite'])} suite + "
        f"{len(payload['sources']['budget_sweep'])} sweep artifact(s)",
        ["backend", "cells", "exact", "mean err", "max err", "mean time",
         "speedup"],
        rows,
    )
    parallel = payload.get("parallel") or []
    if parallel:
        print_table(
            "Measured vs modeled parallel speedup (runtime/scheduler.py)",
            ["dataset", "sched", "workers", "wall", "cells total",
             "measured", "modeled", "accuracy"],
            [
                [
                    row["dataset"],
                    row["schedule"],
                    row["workers"],
                    f"{1000 * row['measured_seconds']:.1f} ms",
                    f"{1000 * row['cells_seconds_total']:.1f} ms",
                    f"{row['measured_speedup']:.2f}x",
                    f"{row['modeled_speedup']:.2f}x",
                    f"{100 * row['model_accuracy']:.0f}%",
                ]
                for row in parallel
            ],
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro aggregate``."""
    parser = argparse.ArgumentParser(
        prog="repro aggregate",
        description="merge suite/budget-sweep artifacts into "
                    "results/aggregate.json",
    )
    parser.add_argument("--results-dir", default=None,
                        help="artifact directory (default: the shared "
                             "results/ dir, also via $REPRO_ARTIFACT_DIR)")
    ns = parser.parse_args(argv)
    try:
        payload = aggregate_results(ns.results_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    _print_aggregate(payload)
    if ns.results_dir:
        # Keep the aggregate next to the artifacts it merged.
        path = os.path.join(ns.results_dir, "aggregate.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    else:
        path = write_artifact("aggregate", payload)
    print(f"artifact: {path}")
    return 0

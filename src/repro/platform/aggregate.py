"""Cross-dataset artifact aggregation (``python -m repro aggregate``).

The suite (:mod:`repro.platform.suite`) and the budget sweep
(:mod:`repro.platform.budget_sweep`) both persist per-dataset JSON
artifacts under ``results/``.  This module folds every
``suite_<dataset>.json`` and ``budget_sweep_<dataset>.json`` found there
into one ``results/aggregate.json`` with per-backend speed-vs-accuracy
summaries — the cross-dataset operating picture a single-dataset artifact
cannot show.

Aggregate schema (``results/aggregate.json``)::

    {
      "schema": "gms-aggregate/v1",
      "sources": {"suite": [paths...], "budget_sweep": [paths...]},
      "datasets": [names...],
      "backends": {
        "<set_class>": {
          "cells": int,            # suite cells + sweep rows folded in
          "exact": bool,           # every folded cell exact?
          "mean_rel_error": float, # accuracy across all folded counts
          "max_rel_error": float,
          "mean_seconds": float,   # raw speed across all folded cells
          "mean_speedup": float,   # vs the reference/exact twin, where known
          "per_kernel": {
            "<kernel>": {"cells": int, "mean_rel_error": float,
                          "mean_seconds": float}, ...
          },
        }, ...
      },
    }

Backends are keyed by the *plan-level* registry name for suite cells
(``"bloom"``, ``"kmv"``, ``"bitset"``, …) and by the resolved class name
for budget-sweep rows (which sweep many budget-derived classes of one
family); both views coexist in the same table.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from collections import defaultdict
from typing import Dict, List, Optional

from . import bench
from .bench import print_table, write_artifact

__all__ = ["AGGREGATE_SCHEMA", "aggregate_results", "main"]

#: Aggregate schema identifier, bumped on breaking layout changes.
AGGREGATE_SCHEMA = "gms-aggregate/v1"


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class _BackendFold:
    """Accumulates one backend's cells across every artifact."""

    def __init__(self) -> None:
        self.rel_errors: List[float] = []
        self.seconds: List[float] = []
        self.speedups: List[float] = []
        self.exact = True
        self.per_kernel: Dict[str, Dict[str, List[float]]] = defaultdict(
            lambda: {"rel_errors": [], "seconds": []}
        )

    def add(
        self,
        kernel: str,
        rel_error: float,
        seconds: float,
        exact: bool,
        speedup: Optional[float] = None,
    ) -> None:
        self.rel_errors.append(rel_error)
        self.seconds.append(seconds)
        self.exact = self.exact and exact
        if speedup is not None:
            self.speedups.append(speedup)
        bucket = self.per_kernel[kernel]
        bucket["rel_errors"].append(rel_error)
        bucket["seconds"].append(seconds)

    def summary(self) -> Dict[str, object]:
        return {
            "cells": len(self.rel_errors),
            "exact": self.exact,
            "mean_rel_error": _mean(self.rel_errors),
            "max_rel_error": max(self.rel_errors, default=0.0),
            "mean_seconds": _mean(self.seconds),
            "mean_speedup": _mean(self.speedups),
            "per_kernel": {
                kernel: {
                    "cells": len(bucket["rel_errors"]),
                    "mean_rel_error": _mean(bucket["rel_errors"]),
                    "mean_seconds": _mean(bucket["seconds"]),
                }
                for kernel, bucket in sorted(self.per_kernel.items())
            },
        }


def _fold_suite(payload: Dict[str, object], folds: Dict[str, _BackendFold]) -> None:
    # Reference-backend seconds per (kernel, ordering) anchor the speedups.
    ref = payload.get("reference_backend", "sorted")
    ref_seconds = {
        (c["kernel"], c["ordering"]): c["seconds"]
        for c in payload["cells"]
        if c["set_class"] == ref
    }
    for cell in payload["cells"]:
        base = ref_seconds.get((cell["kernel"], cell["ordering"]))
        speedup = (
            base / cell["seconds"]
            if base is not None and cell["seconds"] > 0
            else None
        )
        folds[cell["set_class"]].add(
            cell["kernel"], cell["rel_error"], cell["seconds"],
            cell["exact"], speedup,
        )


def _fold_budget_sweep(
    payload: Dict[str, object], folds: Dict[str, _BackendFold]
) -> None:
    for row in payload["rows"]:
        fold = folds[row["set_class"]]
        # The sweep measures three kernels per row; fold each as one cell.
        fold.add("tc", row["tc_rel_error"], row["tc_seconds"], False)
        fold.add("4clique", row["fc_rel_error"], row["fc_seconds"], False)
        fold.add("4clique+reconcile", row["fc_reconciled_rel_error"],
                 row["fc_reconciled_seconds"], False)


def aggregate_results(
    results_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Merge every suite/budget-sweep artifact under *results_dir*.

    Returns the aggregate payload (see module docstring for the schema);
    raises :class:`FileNotFoundError` when no artifact is found — an empty
    aggregate would silently hide a miswired results directory.
    """
    # bench.ARTIFACT_DIR is read at call time (not import time) so test
    # harnesses that monkeypatch the shared artifact dir are honored here.
    base = results_dir or bench.ARTIFACT_DIR
    suite_paths = sorted(glob.glob(os.path.join(base, "suite_*.json")))
    sweep_paths = sorted(glob.glob(os.path.join(base, "budget_sweep_*.json")))
    if not suite_paths and not sweep_paths:
        raise FileNotFoundError(
            f"no suite_*.json or budget_sweep_*.json artifacts under {base!r}"
        )

    folds: Dict[str, _BackendFold] = defaultdict(_BackendFold)
    datasets = []
    for path in suite_paths:
        with open(path) as handle:
            payload = json.load(handle)
        datasets.append(payload["dataset"])
        _fold_suite(payload, folds)
    for path in sweep_paths:
        with open(path) as handle:
            payload = json.load(handle)
        datasets.append(payload["dataset"])
        _fold_budget_sweep(payload, folds)

    return {
        "schema": AGGREGATE_SCHEMA,
        "sources": {
            "suite": [os.path.basename(p) for p in suite_paths],
            "budget_sweep": [os.path.basename(p) for p in sweep_paths],
        },
        "datasets": sorted(set(datasets)),
        "backends": {
            name: fold.summary() for name, fold in sorted(folds.items())
        },
    }


def _print_aggregate(payload: Dict[str, object]) -> None:
    rows = [
        [
            name,
            summary["cells"],
            "yes" if summary["exact"] else "no",
            f"{100 * summary['mean_rel_error']:.2f}%",
            f"{100 * summary['max_rel_error']:.2f}%",
            f"{1000 * summary['mean_seconds']:.1f} ms",
            (f"{summary['mean_speedup']:.2f}x"
             if summary["mean_speedup"] else "-"),
        ]
        for name, summary in payload["backends"].items()
    ]
    print_table(
        f"Cross-dataset aggregate — {len(payload['datasets'])} dataset(s), "
        f"{len(payload['sources']['suite'])} suite + "
        f"{len(payload['sources']['budget_sweep'])} sweep artifact(s)",
        ["backend", "cells", "exact", "mean err", "max err", "mean time",
         "speedup"],
        rows,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro aggregate``."""
    parser = argparse.ArgumentParser(
        prog="repro aggregate",
        description="merge suite/budget-sweep artifacts into "
                    "results/aggregate.json",
    )
    parser.add_argument("--results-dir", default=None,
                        help="artifact directory (default: the shared "
                             "results/ dir, also via $REPRO_ARTIFACT_DIR)")
    ns = parser.parse_args(argv)
    try:
        payload = aggregate_results(ns.results_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    _print_aggregate(payload)
    if ns.results_dir:
        # Keep the aggregate next to the artifacts it merged.
        path = os.path.join(ns.results_dir, "aggregate.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    else:
        path = write_artifact("aggregate", payload)
    print(f"artifact: {path}")
    return 0

"""Benchmark harness helpers shared by all table/figure reproductions.

Provides the simulated-parallel-runtime composition used throughout the
evaluation benches: a mining run yields *measured per-task costs* plus a
*reordering phase*; the harness combines them into the runtime a p-thread
machine would see, using the paper's own model (section 7.2):

``T(p) = T_reorder(p) + makespan(task_costs, p)``

where the reordering term honors each scheme's parallel structure — DGR is
inherently sequential (n peeling iterations), DEG is a parallel sort, ADG
runs O(log n) parallel rounds (Lemma 7.1).

Also provides the row/table printers that render the paper-shaped output
of every bench, and a JSON artifact writer.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, is_dataclass
from typing import Dict, List, Optional, Sequence

from ..runtime.scheduler import simulate_makespan

__all__ = [
    "parallel_reorder_seconds",
    "simulated_parallel_seconds",
    "print_table",
    "write_artifact",
    "ARTIFACT_DIR",
]

#: Per-round synchronization overhead of batch-parallel reordering [s].
ROUND_SYNC_SECONDS = 50e-6

ARTIFACT_DIR = os.environ.get(
    "REPRO_ARTIFACT_DIR", os.path.join(os.path.dirname(__file__), "..", "..", "..",
                                       "results")
)


def parallel_reorder_seconds(
    ordering: str, sequential_seconds: float, rounds: int, threads: int
) -> float:
    """Parallel-runtime estimate of one reordering scheme.

    * ``DGR`` — the exact peeling is a sequential chain of n iterations
      (the paper's motivation for ADG): no speedup.
    * ``ADG`` — O(m) work over ``rounds`` fully parallel rounds
      (Lemma 7.1): ``W/p + rounds · sync``.
    * ``DEG``/``TRI``/others — one parallel sort/scan: ``W/p + sync``.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if ordering == "DGR":
        return sequential_seconds
    if ordering == "ADG":
        return sequential_seconds / threads + rounds * ROUND_SYNC_SECONDS
    return sequential_seconds / threads + ROUND_SYNC_SECONDS


def simulated_parallel_seconds(
    result,
    threads: int = 16,
    policy: str = "dynamic",
    ordering: Optional[str] = None,
) -> float:
    """Total simulated wall time of a mining result on *threads* workers.

    ``result`` is any object exposing ``reorder_seconds``, ``task_costs``,
    ``ordering_rounds`` and ``variant`` (BKResult, KCliqueResult).  The
    ordering name is inferred from the variant string unless given.
    """
    name = ordering or _ordering_of(result.variant)
    reorder = parallel_reorder_seconds(
        name, result.reorder_seconds, getattr(result, "ordering_rounds", 1),
        threads,
    )
    mine = simulate_makespan(result.task_costs, threads, policy)
    if not result.task_costs:
        mine = result.mine_seconds / threads
    return reorder + mine


def _ordering_of(variant: str) -> str:
    for token in ("ADG", "DGR", "DEG", "TRI", "ID"):
        if token in variant:
            return token
    # BK-DAS and the external baselines use the exact degeneracy order.
    return "DGR"


def print_table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Render one paper-shaped results table to stdout."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def write_artifact(name: str, payload: object) -> str:
    """Persist a bench's data as JSON under the results directory."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"{name}.json")

    def default(obj):
        if is_dataclass(obj) and not isinstance(obj, type):
            return asdict(obj)
        if hasattr(obj, "tolist"):
            return obj.tolist()
        return str(obj)

    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=default)
    return path

"""CLI-driven sketch-budget sweep (the ProbGraph operating-curve bench).

This is the first benchmark wired end-to-end through the shared GMS CLI
surface: arguments come from :func:`repro.platform.cli.parse_args`, the
headline representation is resolved through
:func:`~repro.platform.cli.resolve_set_class_for_graph` (so
``--bloom-bits`` / ``--kmv-k`` / ``--bloom-shared-bits`` all apply), and the
rows are persisted with :func:`~repro.platform.bench.write_artifact` as
``results/budget_sweep_<dataset>.json`` for the CI artifact-upload step.

The sweep walks three budget families over one dataset:

* per-element Bloom budgets (``--bloom-bits`` grid),
* per-graph *shared* Bloom budgets (``m = m_total / n``, one factory call),
* KMV signature sizes (``--kmv-k`` grid),

measuring for each: triangle-count and 4-clique relative error (plain and
reconciled), sketch-pivot Bron–Kerbosch output fidelity plus recursion
overhead, and — for the KMV family — the link-prediction effectiveness
loss of ``"jaccard-kmv"`` against exact Jaccard.

Run it as ``python -m repro budget-sweep --dataset sc-ht-mini`` or
``python benchmarks/bench_budget_sweep.py <same flags>``.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Type

from ..core.interface import SetBase
from ..graph import load_dataset
from ..learning.linkpred import EffectivenessLoss, evaluate_scheme
from ..mining.approx import kclique_count_sets, sketch_pivot_bron_kerbosch
from ..mining.kclique import kclique_count
from ..mining.triangles import (
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)
from .bench import print_table, write_artifact
from .cli import Args, parse_args, resolve_set_class, resolve_set_class_for_graph

__all__ = ["DEFAULT_BLOOM_GRID", "DEFAULT_KMV_GRID", "run_budget_sweep", "main"]

#: Default per-element Bloom budgets swept (bits per element).
DEFAULT_BLOOM_GRID = (4, 8, 16, 32)
#: Default shared-budget totals swept, in bits per *vertex* of total budget
#: (the factory turns ``per_vertex * n`` into one fixed filter size).
DEFAULT_SHARED_GRID = (8, 32, 128)
#: Default KMV signature sizes swept.
DEFAULT_KMV_GRID = (8, 32, 128)


def _timed(fn, repeats: int):
    """Run *fn* ``repeats`` times; return ``(value, best_seconds)``.

    Estimates are deterministic, so only the timing benefits from the
    extra runs (best-of-N, standard bench practice).
    """
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def _measure_row(
    graph, family: str, label: str, cls: Type[SetBase],
    tc_exact: int, fc_exact: int, ordering: str, repeats: int,
) -> Dict[str, object]:
    """One sweep row: tc + 4-clique (plain and reconciled) + BK fidelity."""
    tc_est, tc_seconds = _timed(
        lambda: triangle_count_node_iterator(graph, set_cls=cls), repeats
    )
    fc_est, fc_seconds = _timed(
        lambda: kclique_count_sets(graph, 4, cls, ordering), repeats
    )
    fc_rec, fc_rec_seconds = _timed(
        lambda: kclique_count_sets(graph, 4, cls, ordering, reconcile=True),
        repeats,
    )

    # Fidelity and call counts are deterministic — one run suffices.
    bk = sketch_pivot_bron_kerbosch(graph, cls, ordering=ordering)

    return {
        "family": family,
        "label": label,
        "set_class": cls.__name__,
        "tc_estimate": tc_est,
        "tc_rel_error": abs(tc_est - tc_exact) / max(tc_exact, 1),
        "tc_seconds": tc_seconds,
        "fc_estimate": fc_est,
        "fc_rel_error": abs(fc_est - fc_exact) / max(fc_exact, 1),
        "fc_seconds": fc_seconds,
        "fc_reconciled_estimate": fc_rec,
        "fc_reconciled_rel_error": abs(fc_rec - fc_exact) / max(fc_exact, 1),
        "fc_reconciled_seconds": fc_rec_seconds,
        "bk_identical": bk.identical,
        "bk_num_cliques": bk.num_cliques,
        "bk_call_overhead": bk.call_overhead,
    }


def run_budget_sweep(
    args: Args,
    bloom_grid: Sequence[int] = DEFAULT_BLOOM_GRID,
    shared_grid: Sequence[int] = DEFAULT_SHARED_GRID,
    kmv_grid: Sequence[int] = DEFAULT_KMV_GRID,
) -> Dict[str, object]:
    """Run the sweep described by *args*; return the artifact payload.

    The CLI budget flags extend the default grids (so ``--bloom-bits 6``
    adds a ``b=6`` point), and the headline row is whatever
    :func:`~repro.platform.cli.resolve_set_class_for_graph` yields for the
    flags — the exact configuration a kernel run with them would use.
    """
    graph = load_dataset(args.dataset)
    ordering = args.ordering
    repeats = args.repeats

    tc_exact = triangle_count_rank_merge(graph)
    fc_exact = kclique_count(graph, 4, ordering).count

    rows: List[Dict[str, object]] = []

    for b in sorted({*bloom_grid, *((args.bloom_bits,) if args.bloom_bits else ())}):
        cls = resolve_set_class("bloom", bloom_bits=b)
        rows.append(_measure_row(graph, "bloom", f"b={b}", cls,
                                 tc_exact, fc_exact, ordering, repeats))

    shared_totals = sorted(
        {*(per_v * graph.num_nodes for per_v in shared_grid),
         *((args.bloom_shared_bits,) if args.bloom_shared_bits else ())}
    )
    # Small graphs floor several totals to the same per-set size — dedupe
    # on the resolved class so the sweep never measures one budget twice
    # under different labels.
    seen_shared_bits = set()
    for total in shared_totals:
        cls = resolve_set_class("bloom", bloom_shared_bits=total,
                                num_sets=graph.num_nodes)
        if cls.SHARED_BITS in seen_shared_bits:
            continue
        seen_shared_bits.add(cls.SHARED_BITS)
        row = _measure_row(graph, "bloom-shared",
                           f"m_total={total}", cls, tc_exact, fc_exact,
                           ordering, repeats)
        row["shared_bits_per_set"] = cls.SHARED_BITS
        rows.append(row)

    # The exact half of the effectiveness comparison is K-independent —
    # run it once and pair it with each KMV grid point's approx run.
    eff_exact = evaluate_scheme(graph, "jaccard", fraction=0.1, seed=0)
    for K in sorted({*kmv_grid, *((args.kmv_k,) if args.kmv_k else ())}):
        cls = resolve_set_class("kmv", kmv_k=K)
        row = _measure_row(graph, "kmv", f"K={K}", cls,
                           tc_exact, fc_exact, ordering, repeats)
        loss = EffectivenessLoss(
            exact=eff_exact,
            approx=evaluate_scheme(graph, "jaccard-kmv", fraction=0.1,
                                   seed=0, kmv_cls=cls),
        )
        row["linkpred_eff_exact"] = loss.exact.effectiveness
        row["linkpred_eff_kmv"] = loss.approx.effectiveness
        row["linkpred_eff_loss"] = loss.loss
        rows.append(row)

    # Headline row: the exact configuration the CLI flags select.  When it
    # coincides with a grid row (e.g. --set-class bloom --bloom-bits 8),
    # reuse that row's measurements instead of re-running the whole kernel
    # battery for a duplicate class.
    headline_cls = resolve_set_class_for_graph(
        graph, args.set_class, bloom_bits=args.bloom_bits, kmv_k=args.kmv_k,
        bloom_shared_bits=args.bloom_shared_bits, bloom_fpr=args.bloom_fpr,
    )
    match = next(
        (r for r in rows if r["set_class"] == headline_cls.__name__), None
    )
    if match is not None:
        headline = dict(match, family="headline", label=args.set_class)
    else:
        headline = _measure_row(graph, "headline", args.set_class,
                                headline_cls, tc_exact, fc_exact, ordering,
                                repeats)
    rows.insert(0, headline)

    payload: Dict[str, object] = {
        "dataset": args.dataset,
        "args": asdict(args),
        "ordering": ordering,
        "repeats": max(1, repeats),
        "tc_exact": tc_exact,
        "fc_exact": fc_exact,
        "num_nodes": graph.num_nodes,
        "rows": rows,
    }
    return payload


def _print_payload(payload: Dict[str, object]) -> None:
    rows = payload["rows"]
    table = [
        [
            r["family"],
            r["label"],
            f"{100 * r['tc_rel_error']:.2f}%",
            f"{100 * r['fc_rel_error']:.2f}%",
            f"{100 * r['fc_reconciled_rel_error']:.2f}%",
            "yes" if r["bk_identical"] else "NO",
            f"{r['bk_call_overhead']:.2f}x",
            (f"{r['linkpred_eff_loss']:+.3f}"
             if "linkpred_eff_loss" in r else "-"),
        ]
        for r in rows
    ]
    print_table(
        f"Sketch budget sweep — {payload['dataset']} "
        f"[{payload['ordering']} ordering] "
        f"(tc exact {payload['tc_exact']:,}, 4c exact {payload['fc_exact']:,})",
        ["family", "budget", "tc err", "4c err", "4c err (rec.)",
         "bk identical", "bk calls", "eff loss"],
        table,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro budget-sweep`` and the bench script."""
    args = parse_args(argv, description="CLI-driven sketch-budget sweep")
    payload = run_budget_sweep(args)
    _print_payload(payload)
    path = write_artifact(f"budget_sweep_{args.dataset}", payload)
    print(f"\nartifact: {path}")
    bad = [r for r in payload["rows"] if not r["bk_identical"]]
    return 1 if bad else 0

"""GMS-style CLI argument handling (``GMS::CLI::Args`` of Listing 3).

Benchmarks and examples share a single argument surface: dataset selection,
set representation, vertex ordering, thread counts for the simulated
scaling runs, and output control.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

from ..core.registry import SET_CLASSES
from ..preprocess.ordering import ORDERINGS

__all__ = ["Args", "build_parser", "parse_args"]


@dataclass
class Args:
    """Parsed benchmark arguments."""

    dataset: str = "gearbox-mini"
    set_class: str = "bitset"
    ordering: str = "ADG"
    eps: float = 0.1
    threads: List[int] = None  # type: ignore[assignment]
    k: int = 4
    repeats: int = 3
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.threads is None:
            self.threads = [1, 2, 4, 8, 16, 32]


def build_parser(description: str = "GMS reproduction benchmark") -> argparse.ArgumentParser:
    """Construct the shared argument parser."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--dataset", default="gearbox-mini", help="registry dataset name"
    )
    parser.add_argument(
        "--set-class",
        default="bitset",
        choices=sorted(SET_CLASSES),
        help="set representation (the 5+ modularity hook)",
    )
    parser.add_argument(
        "--ordering",
        default="ADG",
        choices=sorted(ORDERINGS),
        help="vertex reordering preprocessing (stage 3)",
    )
    parser.add_argument("--eps", type=float, default=0.1,
                        help="ADG approximation parameter")
    parser.add_argument("--k", type=int, default=4, help="clique size k")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32],
        help="simulated thread counts",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def parse_args(argv: Optional[List[str]] = None,
               description: str = "GMS reproduction benchmark") -> Args:
    """Parse *argv* into an :class:`Args`."""
    ns = build_parser(description).parse_args(argv)
    return Args(
        dataset=ns.dataset,
        set_class=ns.set_class,
        ordering=ns.ordering,
        eps=ns.eps,
        threads=list(ns.threads),
        k=ns.k,
        repeats=ns.repeats,
        verbose=ns.verbose,
    )

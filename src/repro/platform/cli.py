"""GMS-style CLI argument handling (``GMS::CLI::Args`` of Listing 3).

Benchmarks and examples share a single argument surface: dataset selection,
set representation, vertex ordering, thread counts for the simulated
scaling runs, sketch budgets for the probabilistic representations, and
output control.
"""

from __future__ import annotations

import argparse
import warnings
from dataclasses import dataclass
from typing import List, Optional, Type

from ..core.dispatch import DISPATCH_MODES
from ..core.interface import SetBase
from ..core.registry import get_set_class, set_class_names
from ..preprocess.ordering import ORDERINGS

__all__ = [
    "Args",
    "add_dispatch_args",
    "add_parallel_args",
    "add_sketch_budget_args",
    "build_parser",
    "parse_args",
    "resolve_set_class",
    "resolve_set_class_for_graph",
]

#: Chunking policies of the real process-pool runner — now the full
#: simulated :data:`repro.runtime.scheduler.SCHEDULER_POLICIES` set:
#: 'stealing' keeps per-worker deques in the parent and migrates cells
#: between them on completion events (steal-half from the longest deque),
#: so all three modeled policies are also measured.
RUNNER_SCHEDULES = ("static", "dynamic", "stealing")

#: Pool pre-warm transports: 'pickle' ships graph/materialization state
#: by value to every worker; 'shm' exports the arrays once into named
#: shared-memory segments (:mod:`repro.platform.shm`) and ships only
#: descriptors — workers map the segments zero-copy.
TRANSPORTS = ("pickle", "shm")


def add_parallel_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared parallel-execution flags.

    Used by the benchmark parser and the ``python -m repro suite``
    subcommand so ``--workers``/``--schedule``/``--cache-budget-bytes``
    mean the same thing everywhere.
    """
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for suite execution "
                             "(1 = sequential, in-process)")
    parser.add_argument("--schedule", default="dynamic",
                        choices=RUNNER_SCHEDULES,
                        help="cell chunking policy for --workers > 1: "
                             "'static' = contiguous shards, 'dynamic' = "
                             "one cell per pool task (greedy queue), "
                             "'stealing' = per-worker deques with "
                             "steal-half migration")
    parser.add_argument("--cache-budget-bytes", type=int, default=0,
                        help="MaterializationCache LRU budget in bytes "
                             "(per process; sized via SetGraph."
                             "storage_bytes; 0 = unbounded)")
    parser.add_argument("--transport", default="pickle",
                        choices=TRANSPORTS,
                        help="pool pre-warm transport: 'pickle' copies "
                             "graph state into every worker, 'shm' maps "
                             "shared-memory segments zero-copy")


def add_dispatch_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared set-op dispatch flag.

    ``--dispatch adaptive`` swaps every *exact* set backend for the
    density-adaptive :class:`~repro.core.dispatch.AdaptiveSet` (per-
    neighborhood bitmap-vs-array organization, per-call merge-vs-gallop
    algorithm).  Sketch backends keep their budget-tuned classes.  Results
    are bit-identical either way — only the kernels serving them change.
    """
    parser.add_argument("--dispatch", default="static",
                        choices=DISPATCH_MODES,
                        help="set-op dispatch: 'static' keeps the chosen "
                             "set class everywhere; 'adaptive' picks the "
                             "organization per neighborhood and the "
                             "intersection algorithm per call")


def add_sketch_budget_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared sketch-budget flags for the approximate backends.

    Used by both the benchmark parser below and the ``python -m repro
    approx`` subcommand so the flags stay in sync.
    """
    parser.add_argument("--bloom-bits", type=int, default=0,
                        help="Bloom budget in bits per element "
                             "(set-class 'bloom'; 0 = class default)")
    parser.add_argument("--bloom-shared-bits", type=int, default=0,
                        help="total Bloom budget in bits shared across the "
                             "whole graph: m = total/n fixed for every "
                             "neighborhood, making all pairs eligible for "
                             "the popcount estimator (0 = per-set sizing)")
    parser.add_argument("--bloom-fpr", type=float, default=0.0,
                        help="target false-positive rate for the Bloom "
                             "probes: auto-sizes a shared per-graph budget "
                             "by inverting the Swamidass-Baldi fill model "
                             "for the average neighborhood size (takes "
                             "precedence over the explicit bit budgets; "
                             "0 = disabled)")
    parser.add_argument("--kmv-k", type=int, default=0,
                        help="KMV signature size "
                             "(set-class 'kmv'; 0 = class default)")


@dataclass
class Args:
    """Parsed benchmark arguments."""

    dataset: str = "gearbox-mini"
    set_class: str = "bitset"
    ordering: str = "ADG"
    eps: float = 0.1
    threads: List[int] = None  # type: ignore[assignment]
    k: int = 4
    repeats: int = 3
    verbose: bool = False
    # Sketch budgets for the approximate backends; 0 keeps class defaults.
    bloom_bits: int = 0
    kmv_k: int = 0
    bloom_shared_bits: int = 0
    bloom_fpr: float = 0.0
    # Real (not simulated) parallel execution of the experiment suite.
    workers: int = 1
    schedule: str = "dynamic"
    cache_budget_bytes: int = 0
    transport: str = "pickle"
    # Set-op dispatch policy ('static' or 'adaptive').
    dispatch: str = "static"

    def __post_init__(self) -> None:
        if self.threads is None:
            self.threads = [1, 2, 4, 8, 16, 32]

    def resolve_set_class(
        self, num_sets: int = 0, avg_set_size: float = 0.0
    ) -> Type[SetBase]:
        """Resolve ``set_class`` honoring the sketch-budget overrides.

        ``num_sets`` (usually the graph's vertex count) is required for the
        shared Bloom budget to take effect — without it the per-set sizing
        flags apply; ``avg_set_size`` (the mean neighborhood size) is
        additionally required for the ``--bloom-fpr`` auto-sizing.  Use
        :meth:`resolve_set_class_for_graph` when a graph is at hand.
        """
        return resolve_set_class(
            self.set_class, bloom_bits=self.bloom_bits, kmv_k=self.kmv_k,
            bloom_shared_bits=self.bloom_shared_bits, num_sets=num_sets,
            bloom_fpr=self.bloom_fpr, avg_set_size=avg_set_size,
            dispatch=self.dispatch,
        )

    def resolve_set_class_for_graph(self, graph) -> Type[SetBase]:
        """Deprecated: use :func:`resolve_set_class_for_graph` (module
        function) or a :class:`~repro.platform.session.MiningSession`,
        which owns backend resolution and memoizes it per graph."""
        warnings.warn(
            "Args.resolve_set_class_for_graph is deprecated; call "
            "repro.platform.cli.resolve_set_class_for_graph(graph, ...) "
            "directly, or route queries through a MiningSession "
            "(repro.platform.session) which owns backend resolution",
            DeprecationWarning,
            stacklevel=2,
        )
        return resolve_set_class_for_graph(
            graph, self.set_class, bloom_bits=self.bloom_bits,
            kmv_k=self.kmv_k, bloom_shared_bits=self.bloom_shared_bits,
            bloom_fpr=self.bloom_fpr,
        )


def build_parser(description: str = "GMS reproduction benchmark") -> argparse.ArgumentParser:
    """Construct the shared argument parser."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--dataset", default="gearbox-mini", help="registry dataset name"
    )
    parser.add_argument(
        "--set-class",
        default="bitset",
        choices=set_class_names(),
        help="set representation (the 5+ modularity hook)",
    )
    parser.add_argument(
        "--ordering",
        default="ADG",
        choices=sorted(ORDERINGS),
        help="vertex reordering preprocessing (stage 3)",
    )
    parser.add_argument("--eps", type=float, default=0.1,
                        help="ADG approximation parameter")
    add_sketch_budget_args(parser)
    add_parallel_args(parser)
    add_dispatch_args(parser)
    parser.add_argument("--k", type=int, default=4, help="clique size k")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32],
        help="simulated thread counts",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def parse_args(argv: Optional[List[str]] = None,
               description: str = "GMS reproduction benchmark") -> Args:
    """Parse *argv* into an :class:`Args`."""
    ns = build_parser(description).parse_args(argv)
    return Args(
        dataset=ns.dataset,
        set_class=ns.set_class,
        ordering=ns.ordering,
        eps=ns.eps,
        threads=list(ns.threads),
        k=ns.k,
        repeats=ns.repeats,
        verbose=ns.verbose,
        bloom_bits=ns.bloom_bits,
        kmv_k=ns.kmv_k,
        bloom_shared_bits=ns.bloom_shared_bits,
        bloom_fpr=ns.bloom_fpr,
        workers=ns.workers,
        schedule=ns.schedule,
        cache_budget_bytes=ns.cache_budget_bytes,
        transport=ns.transport,
        dispatch=ns.dispatch,
    )


def resolve_set_class(
    set_class: str, *, bloom_bits: int = 0, kmv_k: int = 0,
    bloom_shared_bits: int = 0, num_sets: int = 0,
    bloom_fpr: float = 0.0, avg_set_size: float = 0.0,
    dispatch: str = "static",
) -> Type[SetBase]:
    """Resolve a set-class name, applying any sketch-budget overrides.

    ``bloom_bits``/``kmv_k`` of 0 keep the registered class defaults; other
    values derive a budget-configured subclass via the approx factories.
    The overrides key on the resolved class's family, so user-registered
    Bloom/KMV subclasses honor the flags too.  A nonzero
    ``bloom_shared_bits`` *and* ``num_sets`` derive a shared-budget class
    (one fixed ``m = bloom_shared_bits / num_sets`` for all instances),
    taking precedence over the per-element ``bloom_bits``.

    A nonzero ``bloom_fpr`` (with ``num_sets`` and ``avg_set_size``) takes
    precedence over both explicit bit budgets: the per-set filter size is
    auto-derived by inverting the Swamidass–Baldi fill model
    (:func:`~repro.approx.estimators.bloom_bits_for_fpr`) for a set of the
    average size, and the shared total is that size times ``num_sets`` —
    the operator states the accuracy target, the platform picks the budget.

    ``dispatch="adaptive"`` swaps any resolved *exact* class for
    :class:`~repro.core.dispatch.AdaptiveSet`; the sketch backends are
    exempt — their accuracy contract is tied to the budget-configured
    class resolved below, and results must stay estimator-for-estimator
    comparable across dispatch modes.
    """
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch mode {dispatch!r}; known: "
            + ", ".join(DISPATCH_MODES)
        )
    cls = get_set_class(set_class)
    if dispatch == "adaptive" and cls.IS_EXACT:
        from ..core.dispatch import AdaptiveSet

        return AdaptiveSet
    from ..approx import BloomFilterSet, KMVSketchSet

    if issubclass(cls, BloomFilterSet):
        if bloom_fpr and num_sets and avg_set_size:
            from ..approx.estimators import bloom_bits_for_fpr

            per_set = bloom_bits_for_fpr(
                max(1, int(round(avg_set_size))), bloom_fpr, cls.NUM_HASHES
            )
            # Round the per-set size *up* to a power of two before scaling
            # to the shared total, so the factory's power-of-two floor
            # lands exactly here and the realized FPR stays ≤ the target.
            per_set = 1 << max(per_set - 1, 0).bit_length()
            return cls.with_shared_budget(
                max(64, per_set) * num_sets, num_sets
            )
        if bloom_shared_bits and num_sets:
            return cls.with_shared_budget(bloom_shared_bits, num_sets)
        if bloom_bits:
            return cls.with_budget(bits_per_element=bloom_bits)
        return cls
    if kmv_k and issubclass(cls, KMVSketchSet):
        return cls.with_k(kmv_k)
    return cls


def resolve_set_class_for_graph(
    graph, set_class: str, *, bloom_bits: int = 0, kmv_k: int = 0,
    bloom_shared_bits: int = 0, bloom_fpr: float = 0.0,
    dispatch: str = "static",
) -> Type[SetBase]:
    """Resolve a set-class name with the shared budget split over *graph*.

    The ``m = m_total / n`` choice happens here, once per graph — this is
    the only place the graph size (and, for ``bloom_fpr``, the average
    degree) and the budget meet.  This is the functional form of the old
    ``Args.resolve_set_class_for_graph`` method (now a deprecated shim):
    the suite, the parallel runner's workers, and
    :class:`~repro.platform.session.MiningSession` all resolve through it.
    """
    n = graph.num_nodes
    avg = 2.0 * graph.num_edges / n if n else 0.0
    return resolve_set_class(
        set_class, bloom_bits=bloom_bits, kmv_k=kmv_k,
        bloom_shared_bits=bloom_shared_bits, num_sets=n,
        bloom_fpr=bloom_fpr, avg_set_size=avg, dispatch=dispatch,
    )

"""Asyncio HTTP/JSON front door for a resident :class:`MiningSession`.

``python -m repro serve --http PORT`` turns the session REPL's
single-operator model into graph-mining-as-a-service: one process holds
one pre-warmed session (shared materialization cache, resident worker
pool, merged counters), and remote clients talk JSON over HTTP/1.1.
Everything is stdlib — :mod:`asyncio` sockets with a hand-rolled
HTTP/1.1 request parser — so the serving tier adds no dependencies the
mining tiers don't already have.

Endpoints
---------
``POST /query``
    Body is a :meth:`Query.with_overrides` dict plus ``kernel`` and
    ``dataset`` (and optionally ``variants``, a list of override dicts
    answered as one batch).  Compiled through the fluent
    :class:`~repro.platform.session.Query` builder and answered
    *synchronously* — the response carries the full
    :class:`~repro.platform.session.QueryResult` as JSON.
``POST /suite``
    Body describes an :class:`~repro.platform.suite.ExperimentPlan`
    (``datasets``, ``kernels``, ``set_classes``, ``orderings``, ``k``,
    ``eps``, ``repeats``, budgets, ``dispatch``, or ``{"smoke": true}``).
    Answers ``202`` with a job id immediately; the plan executes in the
    background on the session pool, one dataset at a time so queued
    queries interleave between datasets.
``GET /jobs/<id>`` / ``GET /jobs``
    Poll a job (state, per-cell progress, artifact paths, error) / list
    all jobs the store knows, including those from previous server
    processes (the store is persistent — see
    :mod:`repro.platform.jobs`).
``GET /stats``
    The session's :meth:`~MiningSession.stats` plus admission-control,
    per-tenant, and job-store gauges.
``GET /healthz``
    Liveness: ``200`` with uptime and the resident pool state.

Concurrency model
-----------------
The session object is not thread-safe, so *all* session work — queries
and suite jobs alike — funnels through one single-thread executor via
``run_in_executor``.  The event loop stays free to answer polls and
health checks while a kernel runs.  Suite jobs execute per-dataset
sub-plans (``replace(plan, datasets=(d,))``) rather than the whole plan
in one executor hop, so a long sweep yields the session between
datasets and synchronous queries interleave instead of starving.

Admission control bounds the query path: at most ``max_inflight``
requests in service plus ``backlog`` admitted-but-waiting; beyond that
``POST /query`` answers ``429`` with a ``Retry-After`` estimated from
the recent service rate.  Job submissions are bounded separately by
``max_pending_jobs``.

Multi-tenancy
-------------
Requests carry ``X-Repro-Tenant`` (default ``"public"``).  A tenant
table (``--tenants`` JSON file) maps names to
:class:`TenantQuota` budgets; quotas are threaded into each request
through the same override mechanism clients use — bloom-bit budgets are
clamped in the override dict before it reaches
:meth:`Query.with_overrides`, cache quotas ride ``cache_budget_bytes``
into pool workers, and worker-share quotas clamp
:meth:`MiningSession.run_plan`'s ``max_workers``.  Unknown tenants get
the unlimited default quota; every tenant gets a usage ledger visible
in ``GET /stats``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..graph import DATASETS
from .jobs import JobStore
from .session import MiningSession, QueryResult
from .suite import (
    ExperimentPlan,
    _exact_mismatches,
    expand_cells,
)

__all__ = [
    "AdmissionControl",
    "HttpError",
    "MiningHTTPServer",
    "TenantQuota",
    "load_tenants",
    "running_server",
    "serve_http",
]

logger = logging.getLogger(__name__)

#: Largest request body accepted, in bytes — a mining request is a small
#: JSON document; anything bigger is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20

_JSON_HEADERS = {"Content-Type": "application/json"}

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request-level failure mapped straight to an HTTP response."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class AdmissionControl:
    """Bounded-queue admission for the synchronous query path.

    ``max_inflight`` requests may be *in service* at once (in practice
    they serialize on the session executor; the bound caps how much work
    is committed, not true parallelism), and up to ``backlog`` more may
    be admitted and waiting.  Beyond that, :meth:`try_acquire` refuses
    and the server answers ``429`` — shedding load at the door instead
    of letting the queue grow without bound, with ``Retry-After``
    estimated from an EWMA of recent service times.

    Thread-safe: the event loop acquires/releases, tests and stats
    readers probe from other threads.
    """

    def __init__(self, max_inflight: int, backlog: int) -> None:
        self.max_inflight = max(1, max_inflight)
        self.backlog = max(0, backlog)
        self.active = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self._ewma_seconds = 0.05
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self.active >= self.max_inflight + self.backlog:
                self.rejected += 1
                return False
            self.active += 1
            self.admitted += 1
            return True

    def release(self, service_seconds: Optional[float] = None) -> None:
        with self._lock:
            self.active = max(0, self.active - 1)
            self.completed += 1
            if service_seconds is not None:
                self._ewma_seconds = (
                    0.8 * self._ewma_seconds + 0.2 * service_seconds
                )

    def retry_after(self) -> int:
        """Whole seconds a refused client should wait before retrying.

        The queue ahead of the client drains at roughly one request per
        EWMA service time through the single session executor.
        """
        with self._lock:
            return max(1, math.ceil(self.active * self._ewma_seconds))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "backlog": self.backlog,
                "active": self.active,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "ewma_service_seconds": round(self._ewma_seconds, 6),
            }


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource budgets.  ``0`` / ``1.0`` mean unlimited.

    ``max_bloom_bits`` caps the per-element and shared Bloom bit budgets
    a request may ask for (explicit ``bits``/``shared_bits`` overrides
    are clamped down; ``fpr``-derived auto-sizing is the operator's own
    knob and passes through).  ``max_cache_bytes`` bounds the
    materialization-cache budget the request carries into pool workers
    (threaded through the ``cache_budget_bytes`` query override).
    ``worker_share`` scales the session's worker count for this tenant's
    suite jobs (clamped via :meth:`MiningSession.run_plan`'s
    ``max_workers``, floor 1).
    """

    max_bloom_bits: int = 0
    max_cache_bytes: int = 0
    worker_share: float = 1.0

    def clamp_overrides(
        self, overrides: Mapping[str, object]
    ) -> Tuple[Dict[str, object], Dict[str, object]]:
        """Apply the quota to one override dict.

        Returns ``(clamped_overrides, clamped_fields)`` where the second
        dict records every field the quota actually changed (old → new),
        so responses can tell the tenant their request was degraded
        rather than silently serving different numbers.
        """
        clamped = dict(overrides)
        applied: Dict[str, object] = {}
        if self.max_bloom_bits > 0:
            for key in ("bits", "shared_bits"):
                asked = int(clamped.get(key, 0) or 0)
                if asked > self.max_bloom_bits:
                    applied[key] = {"requested": asked,
                                    "granted": self.max_bloom_bits}
                    clamped[key] = self.max_bloom_bits
        if self.max_cache_bytes > 0:
            asked = int(clamped.get("cache_budget_bytes", 0) or 0)
            # 0 asks for the session default (possibly unbounded), which a
            # capped tenant may not have — quota becomes the budget.
            if asked == 0 or asked > self.max_cache_bytes:
                applied["cache_budget_bytes"] = {
                    "requested": asked or None,
                    "granted": self.max_cache_bytes,
                }
                clamped["cache_budget_bytes"] = self.max_cache_bytes
        return clamped, applied

    def max_workers(self, session_workers: int) -> Optional[int]:
        """The worker clamp for this tenant, or ``None`` for no clamp."""
        if self.worker_share >= 1.0:
            return None
        return max(1, int(session_workers * self.worker_share))


def load_tenants(path: Optional[str]) -> Dict[str, TenantQuota]:
    """Read a ``--tenants`` JSON file: ``{name: {quota fields...}}``."""
    if not path:
        return {}
    with open(path) as handle:
        raw = json.load(handle)
    table = {}
    for name, fields in raw.items():
        unknown = set(fields) - {"max_bloom_bits", "max_cache_bytes",
                                 "worker_share"}
        if unknown:
            raise ValueError(
                f"tenant {name!r}: unknown quota field(s) {sorted(unknown)}"
            )
        table[name] = TenantQuota(**fields)
    return table


class _TenantLedger:
    """Mutable per-tenant usage gauges surfaced by ``GET /stats``."""

    __slots__ = ("queries", "jobs", "rejected", "clamped",
                 "query_seconds", "cells")

    def __init__(self) -> None:
        self.queries = 0
        self.jobs = 0
        self.rejected = 0
        self.clamped = 0
        self.query_seconds = 0.0
        self.cells = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "jobs": self.jobs,
            "rejected": self.rejected,
            "clamped": self.clamped,
            "query_seconds": round(self.query_seconds, 6),
            "cells": self.cells,
        }


# ---------------------------------------------------------------------------
# HTTP plumbing (hand-rolled HTTP/1.1 over asyncio streams)
# ---------------------------------------------------------------------------


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, object]:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def _read_request(reader: asyncio.StreamReader) -> Optional[_Request]:
    """Parse one HTTP/1.1 request, or ``None`` on clean EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if b":" not in line:
            raise HttpError(400, f"malformed header line {line!r}")
        key, value = line.decode("latin-1").split(":", 1)
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return _Request(method=method, path=path, headers=headers, body=body)


def _encode_response(status: int, payload: Dict[str, object],
                     keep_alive: bool,
                     extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    body = json.dumps(payload, default=str).encode()
    headers = {
        **_JSON_HEADERS,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
        **(extra_headers or {}),
    }
    head = "".join(f"{k}: {v}\r\n" for k, v in headers.items())
    reason = _REASONS.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n{head}\r\n".encode() + body


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


def _result_json(result: QueryResult) -> Dict[str, object]:
    counters = result.counters
    return {
        "kernel": result.kernel,
        "dataset": result.dataset,
        "backend": result.backend,
        "resolved_class": result.resolved_class,
        "ordering": result.ordering,
        "value": result.value,
        "exact": result.exact,
        "seconds": result.seconds,
        "wall_seconds": result.wall_seconds,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "counters": {
            "set_ops": counters.set_ops,
            "point_ops": counters.point_ops,
            "sketch_builds": counters.sketch_builds,
            "memory_traffic": counters.memory_traffic,
        },
        "cell": result.cell,
    }


_PLAN_FIELDS = {
    "datasets", "kernels", "set_classes", "orderings", "k", "eps",
    "repeats", "bloom_bits", "kmv_k", "bloom_shared_bits", "bloom_fpr",
    "dispatch",
}

_TUPLE_PLAN_FIELDS = ("datasets", "kernels", "set_classes", "orderings")


def _plan_from_body(body: Mapping[str, object]) -> ExperimentPlan:
    """Build (and pre-validate) an :class:`ExperimentPlan` from JSON."""
    fields = {k: v for k, v in body.items() if k != "smoke"}
    unknown = set(fields) - _PLAN_FIELDS
    if unknown:
        raise HttpError(
            400, f"unknown suite field(s) {sorted(unknown)}; "
                 f"known: {sorted(_PLAN_FIELDS | {'smoke'})}"
        )
    base = ExperimentPlan.smoke() if body.get("smoke") else ExperimentPlan()
    for key in _TUPLE_PLAN_FIELDS:
        if key in fields:
            value = fields[key]
            if not isinstance(value, (list, tuple)):
                raise HttpError(400, f"suite field {key!r} must be a list")
            fields[key] = tuple(str(v) for v in value)
    try:
        plan = replace(base, **fields)
        plan.validate_execution()
        # Force the sweep-selection errors (unknown kernel/ordering/...)
        # out now, as a 400, instead of inside the background job.
        plan.resolved_kernels()
        plan.resolved_orderings()
        plan.resolved_set_classes()
    except (KeyError, ValueError, TypeError) as exc:
        raise HttpError(400, f"invalid suite plan: {exc}")
    return plan


class MiningHTTPServer:
    """The serving tier: one session, many HTTP clients.

    Create, then :meth:`start` inside a running event loop (or use
    :func:`running_server` / :func:`serve_http`, which own the loop).
    The server never owns the session — callers create and close it —
    but it does own the job store, the job queue, and the single-thread
    session executor.
    """

    def __init__(self, session: MiningSession, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 4, backlog: int = 16,
                 max_pending_jobs: int = 8,
                 tenants: Optional[Dict[str, TenantQuota]] = None,
                 job_root: Optional[str] = None) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.admission = AdmissionControl(max_inflight, backlog)
        self.max_pending_jobs = max(1, max_pending_jobs)
        self.tenants = dict(tenants or {})
        self.store = JobStore(job_root)
        self.started_at: Optional[float] = None
        self.requests_served = 0
        self._ledgers: Dict[str, _TenantLedger] = {}
        self._ledger_lock = threading.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._session_executor: Optional[ThreadPoolExecutor] = None
        self._job_queue: Optional[asyncio.Queue] = None
        self._job_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: set = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        # One thread: the session (cache, counters, pool bookkeeping) is
        # not thread-safe, so every piece of session work serializes here.
        self._session_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gms-session"
        )
        self._job_queue = asyncio.Queue()
        self._job_task = asyncio.ensure_future(self._job_worker())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections would otherwise outlive the loop
        # and die noisily when it closes.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._job_task is not None:
            self._job_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._job_task
            self._job_task = None
        if self._session_executor is not None:
            self._session_executor.shutdown(wait=True)
            self._session_executor = None

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    def _on_session(self, fn):
        """Run *fn* on the session thread; await the result."""
        return self._loop.run_in_executor(self._session_executor, fn)

    def _ledger(self, tenant: str) -> _TenantLedger:
        with self._ledger_lock:
            ledger = self._ledgers.get(tenant)
            if ledger is None:
                ledger = self._ledgers[tenant] = _TenantLedger()
            return ledger

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.tenants.get(tenant, TenantQuota())

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as exc:
                    writer.write(_encode_response(
                        exc.status, {"error": exc.message}, False,
                        exc.headers,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                try:
                    status, payload, extra = await self._dispatch(request)
                except HttpError as exc:
                    status, payload, extra = (
                        exc.status, {"error": exc.message}, exc.headers
                    )
                except Exception as exc:  # request fails, server survives
                    logger.debug("request %s %s failed", request.method,
                                 request.path, exc_info=True)
                    status, payload, extra = (
                        500, {"error": f"{type(exc).__name__}: {exc}"}, {}
                    )
                self.requests_served += 1
                writer.write(_encode_response(
                    status, payload, keep_alive, extra
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError, asyncio.CancelledError):
            pass  # client went away mid-request, or the server is stopping
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, request: _Request
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        tenant = request.headers.get("x-repro-tenant", "public")
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/healthz":
            self._require_method(method, "GET")
            return 200, self._healthz(), {}
        if path == "/stats":
            self._require_method(method, "GET")
            return 200, await self._stats(), {}
        if path == "/query":
            self._require_method(method, "POST")
            return await self._handle_query(request, tenant)
        if path == "/suite":
            self._require_method(method, "POST")
            return await self._handle_suite(request, tenant)
        if path == "/jobs":
            self._require_method(method, "GET")
            return 200, {"jobs": [j.summary() for j in self.store.jobs()]}, {}
        if path.startswith("/jobs/"):
            self._require_method(method, "GET")
            job = self.store.get(path[len("/jobs/"):])
            if job is None:
                raise HttpError(404, "unknown job id")
            return 200, job.to_json(), {}
        raise HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"method {method} not allowed; "
                                 f"use {expected}",
                            headers={"Allow": expected})

    # -- endpoint: /healthz, /stats -----------------------------------------

    def _healthz(self) -> Dict[str, object]:
        if self.session.closed:
            raise HttpError(503, "session is closed")
        return {
            "status": "ok",
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "workers": self.session.workers,
            "transport": self.session.transport,
            "graphs": self.session.graphs(),
        }

    async def _stats(self) -> Dict[str, object]:
        session_stats = await self._on_session(self.session.stats)
        with self._ledger_lock:
            tenants = {
                name: {
                    "quota": asdict(self.quota_for(name)),
                    "usage": ledger.to_json(),
                }
                for name, ledger in sorted(self._ledgers.items())
            }
        return {
            "session": session_stats,
            "admission": self.admission.stats(),
            "tenants": tenants,
            "jobs": {
                "counts": self.store.counts(),
                "queued": (self._job_queue.qsize()
                           if self._job_queue else 0),
            },
            "requests_served": self.requests_served,
        }

    # -- endpoint: /query ---------------------------------------------------

    def _compile_query(self, body: Mapping[str, object],
                       quota: TenantQuota, ledger: _TenantLedger):
        """Body → (query, variants, clamp report), quota applied."""
        kernel = body.get("kernel")
        if not kernel:
            raise HttpError(400, "query body needs a 'kernel' field")
        if "dataset" not in body:
            raise HttpError(400, "query body needs a 'dataset' field")
        dataset = str(body["dataset"])
        if dataset not in DATASETS and dataset not in self.session.graphs():
            raise HttpError(
                404, f"unknown dataset {dataset!r}; "
                     f"known: {sorted(DATASETS)}"
            )
        overrides = {k: v for k, v in body.items()
                     if k not in ("kernel", "variants")}
        overrides, clamped = quota.clamp_overrides(overrides)
        raw_variants = body.get("variants")
        variants: Optional[List[Dict[str, object]]] = None
        if raw_variants is not None:
            if not isinstance(raw_variants, list):
                raise HttpError(400, "'variants' must be a list of objects")
            variants = []
            for variant in raw_variants:
                if not isinstance(variant, dict):
                    raise HttpError(400,
                                    "'variants' must be a list of objects")
                v_clamped, v_applied = quota.clamp_overrides(variant)
                variants.append(v_clamped)
                if v_applied:
                    clamped = {**clamped, **v_applied}
        try:
            query = self.session.query(str(kernel)).with_overrides(overrides)
            if variants:
                for variant in variants:
                    # Surface a bad variant as a 400 before any execution.
                    query.with_overrides(variant)
        except (KeyError, ValueError, TypeError) as exc:
            raise HttpError(400, f"invalid query: {exc}")
        if clamped:
            ledger.clamped += 1
        return query, variants, clamped

    async def _handle_query(
        self, request: _Request, tenant: str
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        ledger = self._ledger(tenant)
        quota = self.quota_for(tenant)
        query, variants, clamped = self._compile_query(
            request.json(), quota, ledger
        )
        if not self.admission.try_acquire():
            ledger.rejected += 1
            raise HttpError(
                429, "server is at capacity; retry later",
                headers={"Retry-After": str(self.admission.retry_after())},
            )
        t0 = time.perf_counter()
        try:
            if variants is not None:
                results = await self._on_session(
                    lambda: query.run_many(variants)
                )
                payload: Dict[str, object] = {
                    "results": [_result_json(r) for r in results]
                }
            else:
                result = await self._on_session(query.run)
                payload = {"result": _result_json(result)}
        finally:
            elapsed = time.perf_counter() - t0
            self.admission.release(elapsed)
        ledger.queries += 1
        ledger.query_seconds += elapsed
        payload["tenant"] = tenant
        if clamped:
            payload["quota_clamped"] = clamped
        return 200, payload, {}

    # -- endpoint: /suite + background jobs ---------------------------------

    async def _handle_suite(
        self, request: _Request, tenant: str
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        ledger = self._ledger(tenant)
        plan = _plan_from_body(request.json())
        for dataset in plan.datasets:
            if dataset not in DATASETS and (
                    dataset not in self.session.graphs()):
                raise HttpError(
                    400, f"unknown dataset {dataset!r}; "
                         f"known: {sorted(DATASETS)}"
                )
        if self._job_queue.qsize() >= self.max_pending_jobs:
            ledger.rejected += 1
            raise HttpError(
                429, f"job backlog is full ({self.max_pending_jobs} "
                     f"pending); retry later",
                headers={"Retry-After": str(
                    max(self.admission.retry_after(), 5)
                )},
            )
        cells_per_dataset = len(expand_cells(plan))
        job = self.store.create(
            plan=asdict(plan), tenant=tenant,
            cells_total=cells_per_dataset * len(plan.datasets),
            datasets_total=len(plan.datasets),
        )
        ledger.jobs += 1
        await self._job_queue.put((job, plan))
        return 202, {
            "job": job.id,
            "state": job.state,
            "poll": f"/jobs/{job.id}",
        }, {}

    async def _job_worker(self) -> None:
        """Drain the job queue, one job at a time, forever."""
        while True:
            job, plan = await self._job_queue.get()
            try:
                await self._execute_job(job, plan)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                logger.debug("job %s failed", job.id, exc_info=True)
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
                self.store.persist(job)
            finally:
                self._job_queue.task_done()

    async def _execute_job(self, job, plan: ExperimentPlan) -> None:
        quota = self.quota_for(job.tenant)
        max_workers = quota.max_workers(self.session.workers)
        cache_budget = (quota.max_cache_bytes
                        if quota.max_cache_bytes > 0 else None)
        job.state = "running"
        job.started_at = time.time()
        self.store.persist(job)
        for dataset in plan.datasets:
            job.progress["current_dataset"] = dataset
            self.store.persist(job)
            # One dataset per executor hop: between datasets the session
            # thread frees up, so admitted queries interleave with a long
            # sweep instead of waiting for the whole job.
            sub_plan = replace(plan, datasets=(dataset,))
            payload = (await self._on_session(
                lambda p=sub_plan: self.session.run_plan(
                    p, verbose=False, max_workers=max_workers,
                    cache_budget_bytes=cache_budget,
                )
            ))[0]
            path = self.store.write_artifact(job, dataset, payload)
            mismatches = _exact_mismatches(payload)
            job.exact_mismatches += len(mismatches)
            job.artifacts.append(path)
            job.progress["datasets_done"] += 1
            job.progress["cells_done"] += len(payload["cells"])
            job.progress["datasets"].append({
                "dataset": dataset,
                "cells": len(payload["cells"]),
                "measured_seconds": payload["execution"]["measured_seconds"],
                "exact_mismatches": len(mismatches),
            })
            self._ledger(job.tenant).cells += len(payload["cells"])
        job.progress["current_dataset"] = None
        job.state = "done"
        job.finished_at = time.time()
        self.store.persist(job)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_server(session: Optional[MiningSession] = None,
                   **server_kwargs):
    """A :class:`MiningHTTPServer` running on a background event loop.

    The process-internal twin of ``python -m repro serve --http`` —
    tests and the serving benchmark use it to stand a real socket server
    up (and tear it down) inside one process.  With ``session=None`` a
    private ``workers=1`` session is created and closed on exit.
    """
    own_session = session is None
    if own_session:
        session = MiningSession()
    server = MiningHTTPServer(session, **server_kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    startup_error: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        # Not a swallow: the exception is stored and re-raised to the
        # caller once the startup handshake completes.
        except BaseException as exc:  # gms: ignore[GMS004]
            startup_error.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="gms-http", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if startup_error:
        loop.close()
        if own_session:
            session.close()
        raise startup_error[0]
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        if own_session:
            session.close()


def serve_http(ns) -> int:
    """``python -m repro serve --http PORT`` — run until interrupted.

    *ns* is the parsed ``serve`` namespace (see
    :func:`repro.platform.serve.build_serve_parser`); the session is
    built from the shared parallel flags exactly like the REPL's.
    """
    tenants = load_tenants(ns.tenants)
    session = MiningSession(
        workers=ns.workers, schedule=ns.schedule,
        cache_budget_bytes=ns.cache_budget_bytes,
        transport=ns.transport, verbose=ns.verbose,
    )
    server = MiningHTTPServer(
        session, host=ns.host, port=ns.http,
        max_inflight=ns.max_inflight, backlog=ns.admission_backlog,
        max_pending_jobs=ns.max_pending_jobs, tenants=tenants,
        job_root=ns.job_root,
    )

    async def _main() -> None:
        await server.start()
        print(f"serving http on {server.host}:{server.port} "
              f"(workers={session.workers}, transport={session.transport}, "
              f"jobs under {server.store.root})", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("interrupted; shutting down", flush=True)
    finally:
        session.close()
    return 0

"""Persistent run store for HTTP-served suite jobs.

``POST /suite`` on the HTTP front door (:mod:`repro.platform.http`)
answers with a job id instead of blocking: long-running
:class:`~repro.platform.suite.ExperimentPlan` sweeps execute in the
background against the resident session, and clients poll
``GET /jobs/<id>`` for per-cell progress.  This module is the store
behind those ids — modeled on the api/worker/run-store split of service
codebases: the API tier records the request, a worker advances it, and
the store is the durable source of truth both read.

Durability
----------
Every job owns a directory ``<root>/<job-id>/`` (default
``results/jobs/``) holding:

* ``job.json`` — the ``gms-job/v1`` record: plan, tenant, state,
  timestamps, progress, artifact paths, error;
* ``suite_<dataset>.json`` — one finished ``gms-suite/v2`` artifact per
  dataset, written *as each dataset completes* (not at job end), byte-
  compatible with the CLI's ``results/suite_<dataset>.json`` and
  therefore ``suite-diff``-comparable against it.

A restarted server re-reads the root, so answers survive restarts: a
finished job keeps answering ``done`` with its artifacts forever; a job
that was mid-flight when the process died reports ``interrupted``
(its partial artifacts remain readable) instead of vanishing.

The store is thread-safe (the HTTP event loop and the job worker touch
it from different threads) and writes ``job.json`` atomically
(tmp + rename) so a crash mid-persist never leaves a half-written
record shadowing a good one.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["JOB_SCHEMA", "Job", "JobStore", "default_job_root"]

#: Schema identifier of the persisted ``job.json`` records.
JOB_SCHEMA = "gms-job/v1"

#: Terminal states — a job in one of these never changes again.
TERMINAL_STATES = ("done", "failed", "interrupted")

_ID_PATTERN = re.compile(r"^job-(\d{6,})$")


def default_job_root() -> str:
    """``<ARTIFACT_DIR>/jobs`` — resolved late so test monkeypatching of
    :data:`repro.platform.bench.ARTIFACT_DIR` is honored."""
    from . import bench

    return os.path.join(bench.ARTIFACT_DIR, "jobs")


@dataclass
class Job:
    """One submitted suite run, from acceptance to terminal state.

    ``progress`` carries the polling payload: total vs completed cells
    (cell counts come from :func:`~repro.platform.suite.expand_cells`,
    completion from each dataset's finished payload), the dataset
    currently executing, and a per-dataset summary distilled from the
    artifact's ``execution`` block as each dataset lands.
    """

    id: str
    tenant: str
    plan: Dict[str, object]
    state: str = "pending"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    progress: Dict[str, object] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)
    exact_mismatches: int = 0
    error: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        record = asdict(self)
        record["schema"] = JOB_SCHEMA
        return record

    def summary(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "submitted_at": self.submitted_at,
            "cells_done": self.progress.get("cells_done", 0),
            "cells_total": self.progress.get("cells_total", 0),
        }


class JobStore:
    """Durable job records under one root directory.

    ``get`` serves from memory; memory is hydrated from disk once at
    construction, which is the restart-survival path.  All mutation goes
    through :meth:`persist`, so the on-disk record never lags a state a
    client has already observed by more than one transition.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_job_root()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 1
        self._hydrate()

    # -- construction --------------------------------------------------------

    def _hydrate(self) -> None:
        """Load persisted records; mark interrupted runs as such.

        A record whose state is non-terminal belonged to a dead server —
        its worker cannot still be advancing it — so it is re-persisted
        as ``interrupted`` rather than left claiming progress forever.
        """
        if not os.path.isdir(self.root):
            return
        for entry in sorted(os.listdir(self.root)):
            match = _ID_PATTERN.match(entry)
            record_path = os.path.join(self.root, entry, "job.json")
            if not match or not os.path.isfile(record_path):
                continue
            try:
                with open(record_path) as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                continue
            record.pop("schema", None)
            job = Job(**record)
            if job.state not in TERMINAL_STATES:
                job.state = "interrupted"
                job.error = job.error or (
                    "server restarted while the job was in flight"
                )
                job.finished_at = job.finished_at or time.time()
                self._persist_locked(job)
            self._jobs[job.id] = job
            self._next_id = max(self._next_id, int(match.group(1)) + 1)

    # -- API -----------------------------------------------------------------

    def create(self, plan: Dict[str, object], tenant: str,
               cells_total: int, datasets_total: int) -> Job:
        """Accept a run: allocate an id, persist the pending record."""
        with self._lock:
            job = Job(
                id=f"job-{self._next_id:06d}",
                tenant=tenant,
                plan=plan,
                submitted_at=time.time(),
                progress={
                    "datasets_total": datasets_total,
                    "datasets_done": 0,
                    "cells_total": cells_total,
                    "cells_done": 0,
                    "current_dataset": None,
                    "datasets": [],
                },
            )
            self._next_id += 1
            self._jobs[job.id] = job
            self._persist_locked(job)
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def job_dir(self, job: Job) -> str:
        return os.path.join(self.root, job.id)

    def persist(self, job: Job) -> None:
        """Write the job record atomically (tmp + rename)."""
        with self._lock:
            self._persist_locked(job)

    def _persist_locked(self, job: Job) -> None:
        directory = os.path.join(self.root, job.id)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "job.json")
        staging = path + ".tmp"
        with open(staging, "w") as handle:
            json.dump(job.to_json(), handle, indent=2, default=str)
        os.replace(staging, path)

    def write_artifact(self, job: Job, dataset: str,
                       payload: Dict[str, object]) -> str:
        """Persist one dataset's finished ``gms-suite/v2`` payload.

        Same layout as the CLI's ``results/suite_<dataset>.json`` — the
        file is directly consumable by ``python -m repro suite-diff``.
        """
        directory = self.job_dir(job)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"suite_{dataset}.json")
        staging = path + ".tmp"
        with open(staging, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        os.replace(staging, path)
        return path

"""The GMS benchmarking pipeline (paper section 5.4, Listing 3).

A benchmark is a sequence of well-separated stages —
``convert`` (representation conversion), ``preprocess`` (e.g. reordering),
``kernel`` (the mining algorithm) — each independently timed, which is
what enables the fine-grained analysis of the evaluation (e.g. the
"fraction needed for reordering" bars of Figure 4).

Subclass :class:`Pipeline` and override the stage methods; `run()` executes
the stages in order and records per-stage wall times and counter deltas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import counters as _counters

__all__ = ["Pipeline", "StageRecord", "PipelineReport"]


@dataclass
class StageRecord:
    """Timing + counter deltas of one pipeline stage."""

    name: str
    seconds: float
    set_ops: int
    memory_traffic: int


@dataclass
class PipelineReport:
    """Full run record."""

    stages: List[StageRecord] = field(default_factory=list)
    result: object = None

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    def stage(self, name: str) -> StageRecord:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    def fraction(self, name: str) -> float:
        """Fraction of total time spent in one stage (Figure 4's split)."""
        total = self.total_seconds
        return self.stage(name).seconds / total if total else 0.0


class Pipeline:
    """Base class for GMS benchmark pipelines (Listing 3).

    Benchmark-specific arguments (including the input graph) are passed to
    the constructor; the stage methods share state via ``self``.
    """

    #: Stage names, in execution order; override to add custom stages.
    STAGES = ("convert", "preprocess", "kernel")

    def convert(self) -> None:
        """Optional conversion of the graph to another representation."""

    def preprocess(self) -> None:
        """Optional preprocessing (e.g. vertex reordering)."""

    def kernel(self) -> None:
        """The graph mining algorithm under benchmark."""
        raise NotImplementedError

    def run(self) -> PipelineReport:
        """Execute all stages, recording per-stage time and counters."""
        report = PipelineReport()
        for name in self.STAGES:
            stage_fn = getattr(self, name)
            before = _counters.snapshot()
            t0 = time.perf_counter()
            stage_fn()
            seconds = time.perf_counter() - t0
            delta = before.delta(_counters.snapshot())
            report.stages.append(
                StageRecord(
                    name=name,
                    seconds=seconds,
                    set_ops=delta.set_ops,
                    memory_traffic=delta.memory_traffic,
                )
            )
        report.result = getattr(self, "result", None)
        return report

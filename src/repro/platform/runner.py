"""Sharded process-pool execution of the experiment suite.

``run_suite`` historically executed every cell of the kernel × backend ×
ordering matrix sequentially; this module is the real-parallel runtime
behind ``plan.workers > 1`` (CLI: ``python -m repro suite --workers N
--schedule static|dynamic``).  It closes the loop the paper draws between
*modeled* and *measured* parallel speedups: the very same per-cell warm
kernel times that feed :func:`repro.runtime.scheduler.simulate_makespan`
are produced by a run whose wall clock is recorded next to the model's
prediction (the artifact's ``execution`` block).

Design
------
The plan's cell list is expanded once, in canonical order
(:func:`repro.platform.suite.expand_cells`), and sharded across a
:class:`concurrent.futures.ProcessPoolExecutor` under one of three
chunking policies, deliberately mirroring the simulated
``SCHEDULER_POLICIES``:

* ``static`` — contiguous shards via
  :func:`repro.runtime.scheduler.static_chunks` (the *same* partitioning
  rule the makespan model uses), one pool task per shard;
* ``dynamic`` — one pool task per cell; the executor's shared queue is
  the greedy list scheduler;
* ``stealing`` — per-logical-worker deques held in the parent,
  initialized with the static partitioning; a worker whose deque runs
  dry steals :func:`repro.runtime.scheduler.steal_count` cells from the
  *back* of the longest other deque (the Cilk/TBB steal-half rule), so
  all three modeled policies are also measured.

Every pool-task submission meters its pickled argument size into
``Counters.payload_bytes_shipped`` (parent-side; see
:mod:`repro.core.counters`), which is what lets the shared-memory
transport's payload reduction be read off the session bench instead of
inferred.

Each worker process owns its graph + :class:`MaterializationCache`
(bounded by ``plan.cache_budget_bytes``) in module-global state that
persists across pool tasks, so dynamic scheduling does not reload the
dataset per cell.  Workers return finished cell payloads plus their
counter deltas; the parent re-assembles cells by index, merges the
per-worker :class:`~repro.core.counters.Snapshot` deltas (associative +
commutative, so shard order cannot change the totals) into its own global
block, and finalizes the reference cross-check exactly as the sequential
path does.  The resulting artifact is **cell-by-cell identical to the
sequential run up to timing fields** — pinned by the determinism
regression tests and by ``python -m repro suite-diff``.

Worker processes are forked where the platform allows it (Linux/macOS
CPython builds with ``fork``), so runtime-registered suite kernels and
set backends are visible in the pool; under ``spawn`` only
import-time-registered ones are.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pickle
import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..core import counters as _counters
from ..core.counters import Snapshot, merge_snapshots
from ..core.interface import SetBase
from ..graph import load_dataset  # noqa: F401 — worker-side import
from ..graph.set_graph import MaterializationCache
from ..runtime.scheduler import static_chunks, steal_count
from . import suite as _suite

__all__ = [
    "run_plan_on_pool",
    "run_suite_parallel",
    "strip_timing",
    "diff_payloads",
    "diff_main",
]

#: Cell-level keys whose values are wall-clock measurements; everything
#: else in a cell is deterministic and must match across run modes.
TIMING_CELL_KEYS = ("seconds",)

#: Extras keys holding per-task wall-clock profiles.
TIMING_EXTRAS_KEYS = ("task_costs",)

#: Cell-level keys recording *which code served the cell* rather than what
#: it computed.  The ``--semantic`` suite-diff drops these too: a static
#: and an adaptive-dispatch run resolve different concrete classes by
#: design, and the identity gate is about the computed results (values,
#: counters, cross-check anchors) being bit-identical regardless.
PROVENANCE_CELL_KEYS = ("resolved_class",)


def _mp_context():
    """Prefer ``fork`` so runtime-registered kernels reach the workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


# ---------------------------------------------------------------------------
# Worker side.  _WORKER_STATE persists across pool tasks within one worker
# process: the graph and the bounded MaterializationCache are loaded once
# per (worker, dataset), however many dynamic-schedule cells land there.
# A resident session pool may interleave datasets across queries, so the
# state is a small LRU rather than single-occupancy: up to
# _WORKER_DATASET_CAPACITY graphs stay warm per worker, and each dataset's
# SetGraph payload is independently bounded by the plan's cache budget.
# ---------------------------------------------------------------------------

#: Per-worker cap on simultaneously warm datasets (graph + cache pairs).
_WORKER_DATASET_CAPACITY = 4

_WORKER_STATE: "OrderedDict[str, Tuple[object, MaterializationCache]]" = (
    OrderedDict()
)
_WORKER_BACKENDS: Dict[tuple, Type[SetBase]] = {}
#: Datasets installed by the pool pre-warm payload.  Pinned: they may be
#: session-local graphs a worker cannot reload by name, so the LRU never
#: evicts them.
_WORKER_PINNED: set = set()


def _seed_worker(payload_bytes: bytes) -> None:
    """Pool initializer: install pre-warmed per-dataset state.

    The payload — pickled once in the parent, when the resident pool is
    created — maps dataset names to independently-pickled entry blobs
    (so one bad dataset never poisons the rest; see
    ``MiningSession._warm_payload``).  Each blob is a tagged tuple:

    * ``("pickle", graph, cache_state, budget)`` — state by value, the
      historical transport;
    * ``("shm", shm_payload, budget)`` — shared-memory descriptors from
      :func:`repro.platform.shm.export_graph_payload`; the worker maps
      the parent's segments and rebuilds the graph + materializations as
      read-only zero-copy views.

    Either way the worker seeds its local :class:`MaterializationCache`,
    so the first task it serves finds the oriented ``SetGraph`` already
    materialized instead of rebuilding it.  Seeded *non-registry*
    datasets are pinned against LRU eviction: a custom session graph
    exists only in this payload, and evicting it would make every later
    task for it fail.  Registry datasets stay evictable — a worker can
    always reload them by name — so the ``_WORKER_DATASET_CAPACITY``
    bound keeps holding for them.
    """
    from ..graph import DATASETS

    for dataset, blob in pickle.loads(payload_bytes).items():
        entry = pickle.loads(blob)
        if entry[0] == "shm":
            from .shm import attach_graph_payload

            _, shm_payload, budget = entry
            graph, cache_state = attach_graph_payload(shm_payload)
        else:
            _, graph, cache_state, budget = entry
        cache = MaterializationCache(budget_bytes=budget)
        if cache_state is not None:
            cache.seed_graph_state(graph, cache_state)
        _WORKER_STATE[dataset] = (graph, cache)
        if dataset not in DATASETS:
            _WORKER_PINNED.add(dataset)


def _worker_dataset(plan, dataset: str):
    state = _WORKER_STATE.get(dataset)
    if state is not None:
        _WORKER_STATE.move_to_end(dataset)
        return state
    # Make room *before* inserting, least-recently-used first: the
    # OrderedDict front is the LRU entry because every hit above calls
    # move_to_end.  The victim is recomputed per iteration (a snapshot
    # taken up front would go stale as entries are deleted) and pinned
    # entries are skipped, so after the insert the map holds at most
    # _WORKER_DATASET_CAPACITY entries unless pins alone exceed it.
    while len(_WORKER_STATE) >= _WORKER_DATASET_CAPACITY:
        victim = next(
            (name for name in _WORKER_STATE if name not in _WORKER_PINNED),
            None,
        )
        if victim is None:
            break
        del _WORKER_STATE[victim]
        for key in [k for k in _WORKER_BACKENDS if k[0] == victim]:
            del _WORKER_BACKENDS[key]
    graph = load_dataset(dataset)
    cache = MaterializationCache(
        budget_bytes=plan.cache_budget_bytes or None
    )
    state = (graph, cache)
    _WORKER_STATE[dataset] = state
    return state


def _worker_backend(plan, dataset: str, backend_name: str, graph):
    # The memo key carries the plan's budget knobs: a resident pool serves
    # queries whose budgets differ call to call, and a class resolved
    # under one budget must never leak into another.
    key = (dataset, backend_name) + plan.budget_key()
    cls = _WORKER_BACKENDS.get(key)
    if cls is None:
        cls = _suite.resolve_backend(plan, dataset, backend_name, graph)
        _WORKER_BACKENDS[key] = cls
    return cls


def _run_shard(
    plan, dataset: str, shard: Sequence[Tuple[int, Tuple[str, str, str]]]
) -> Dict[str, object]:
    """Pool task: run the indexed cell specs of one shard.

    Returns the finished cells (keyed by their canonical index), the
    worker's counter delta for the shard (kernel work *plus* the warm-up /
    materialization overhead — what the shard really cost this process),
    per-cell counter deltas (``cell_counters``, telescoping between cell
    boundaries, so their sum equals the shard delta exactly and the first
    cell absorbs any shared materialization cost — what lets a batched
    ``run_many`` shard still report per-variant counters), and the
    cache-stats *delta* attributable to this shard (monotone counters
    since the shard started; gauges instantaneous) so the parent can
    aggregate per-run materialization work even though the worker's
    cache — and, under a resident session pool, the worker itself —
    outlives any single run.
    """
    graph, cache = _worker_dataset(plan, dataset)
    stats_baseline = cache.stats()
    before = _counters.snapshot()
    boundary = before
    cells: List[Tuple[int, Dict[str, object]]] = []
    cell_deltas: List[Snapshot] = []
    for index, (backend_name, kernel_name, ordering) in shard:
        set_cls = _worker_backend(plan, dataset, backend_name, graph)
        cell = _suite.run_cell(
            graph, set_cls, _suite.SUITE_KERNELS[kernel_name],
            backend_name, ordering, plan, cache,
        )
        cells.append((index, cell))
        now = _counters.snapshot()
        cell_deltas.append(boundary.delta(now))
        boundary = now
    delta = before.delta(boundary)
    return {
        "pid": multiprocessing.current_process().pid,
        "cells": cells,
        "counters": delta,
        "cell_counters": cell_deltas,
        "cache_stats": cache.stats_since(stats_baseline),
        # The parent never loads the dataset itself; the dims it needs
        # for the artifact travel back with every shard.
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
    }


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def _shards(
    specs: List[Tuple[str, str, str]], workers: int, schedule: str
) -> List[List[Tuple[int, Tuple[str, str, str]]]]:
    """Chunk the indexed cell list under the plan's scheduling policy.

    Handles the submit-everything-up-front policies; ``stealing`` has its
    own event loop (:func:`_stealing_shard_results`) because its shard
    boundaries depend on completion order.
    """
    indexed = list(enumerate(specs))
    if schedule == "static":
        return [
            indexed[start:end]
            for start, end in static_chunks(len(indexed), workers)
        ]
    # dynamic: one pool task per cell; the executor queue does the rest.
    return [[item] for item in indexed]


def _submit_shard(
    pool: ProcessPoolExecutor, plan, dataset: str,
    shard: Sequence[Tuple[int, Tuple[str, str, str]]],
):
    """Submit one shard, metering its serialized payload as one task.

    Every pool task ships ``(plan, dataset, shard)`` by pickle whatever
    the pre-warm transport was; recording the bytes here (parent-side —
    worker deltas carry 0) is what makes payload-bytes-per-task a
    measured quantity in the session bench.
    """
    _counters.COUNTERS.record_payload(
        len(pickle.dumps((plan, dataset, shard))), tasks=1
    )
    return pool.submit(_run_shard, plan, dataset, shard)


def _stealing_shard_results(
    pool: ProcessPoolExecutor, plan, dataset: str,
    specs: List[Tuple[str, str, str]],
) -> Iterator[Dict[str, object]]:
    """Work-stealing executor: yield shard results as they complete.

    The parent holds one cell deque per logical worker, initialized with
    the *static* partitioning (so with zero steals the policy degenerates
    to ``static``), and keeps at most ``plan.workers`` single-cell pool
    tasks in flight — one per logical worker, mapped future → owner.
    When an owner's task completes it takes its next cell from the front
    of its own deque; if that deque is dry it steals
    :func:`~repro.runtime.scheduler.steal_count` cells (steal-half) from
    the *back* of the longest other deque — the owner keeps eating its
    front, so thief and victim touch opposite ends, exactly the
    classical deque discipline.  Results stream back in completion
    order; the caller reassembles cells by canonical index, so the
    artifact is deterministic whatever the steal pattern was.
    """
    indexed = list(enumerate(specs))
    deques: List[deque] = [
        deque(indexed[start:end])
        for start, end in static_chunks(len(indexed), plan.workers)
    ]
    while len(deques) < plan.workers:
        deques.append(deque())

    in_flight: Dict[object, int] = {}

    def dispatch(owner: int) -> None:
        own = deques[owner]
        if not own:
            victim = max(
                (i for i in range(len(deques)) if i != owner),
                key=lambda i: len(deques[i]), default=None,
            )
            if victim is None or not deques[victim]:
                return
            for _ in range(steal_count(len(deques[victim]))):
                own.append(deques[victim].pop())
        future = _submit_shard(pool, plan, dataset, [own.popleft()])
        in_flight[future] = owner

    for owner in range(plan.workers):
        dispatch(owner)
    while in_flight:
        done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
        for future in done:
            owner = in_flight.pop(future)
            result = future.result()
            dispatch(owner)
            yield result


#: Cache-stat fields that are deltas per shard report (summed when a
#: worker reports several shards); the rest are instantaneous gauges
#: where the latest report per worker wins.
_DELTA_CACHE_FIELDS = MaterializationCache.MONOTONE_STATS


def accumulate_cache_stats(
    per_pid: Dict[int, Dict[str, object]], pid: int,
    report: Dict[str, object],
) -> None:
    """Fold one shard's cache-stats report into the per-PID accumulator."""
    acc = per_pid.get(pid)
    if acc is None:
        per_pid[pid] = dict(report)
        return
    for field in _DELTA_CACHE_FIELDS:
        acc[field] += report[field]
    for field in ("orderings", "set_graphs", "oriented", "resident_bytes"):
        acc[field] = report[field]


def _merge_cache_stats(
    per_pid: Dict[int, Dict[str, object]], budget_bytes: Optional[int],
) -> Dict[str, object]:
    """Sum the pool's accumulated per-process cache stats."""
    merged = {
        field: sum(stats[field] for stats in per_pid.values())
        for field in ("hits", "misses", "insertions", "evictions",
                      "orderings", "set_graphs", "oriented",
                      "resident_bytes")
    }
    merged["budget_bytes"] = budget_bytes
    merged["workers"] = len(per_pid)
    return merged


def run_plan_on_pool(
    pool: ProcessPoolExecutor, plan, dataset: str, verbose: bool = False,
    worker_stats: Optional[Dict[int, Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Execute *plan*'s cells for one dataset on an existing pool.

    This is the per-dataset body shared by :func:`run_suite_parallel`
    (which owns a pool for the duration of one plan) and
    :class:`~repro.platform.session.MiningSession` (whose *resident* pool
    outlives any single plan).  Worker counter deltas are folded back into
    this process's global block, so ``snapshot()`` around a parallel run
    still reports true totals.  *worker_stats*, when given, additionally
    receives the run's per-PID cache-stats reports (the session feeds its
    own accumulator here so ``session.stats()`` sees pool-served plans).
    """
    specs = _suite.expand_cells(plan)
    t0 = time.perf_counter()
    if plan.schedule == "stealing":
        results_iter = _stealing_shard_results(pool, plan, dataset, specs)
    else:
        shards = _shards(specs, plan.workers, plan.schedule)
        futures = [
            _submit_shard(pool, plan, dataset, shard)
            for shard in shards
        ]
        results_iter = (future.result() for future in futures)
    cells: List[Optional[Dict[str, object]]] = [None] * len(specs)
    worker_deltas: List[Snapshot] = []
    cache_stats_by_pid: Dict[int, Dict[str, object]] = {}
    num_nodes = num_edges = 0
    for result in results_iter:
        num_nodes = result["num_nodes"]
        num_edges = result["num_edges"]
        worker_deltas.append(result["counters"])
        accumulate_cache_stats(
            cache_stats_by_pid, result["pid"], result["cache_stats"]
        )
        if worker_stats is not None:
            accumulate_cache_stats(
                worker_stats, result["pid"], result["cache_stats"]
            )
        for index, cell in result["cells"]:
            cells[index] = cell
            if verbose:
                print(
                    f"  {dataset} {cell['kernel']:<9} "
                    f"{cell['ordering']:<4} "
                    f"{cell['set_class']:<10} value={cell['value']} "
                    f"({1000 * cell['seconds']:.1f} ms, "
                    f"pid {result['pid']})"
                )
    measured = time.perf_counter() - t0
    _counters.COUNTERS.absorb(merge_snapshots(worker_deltas))
    return _suite.dataset_payload(
        plan, dataset, num_nodes, num_edges, cells,
        _merge_cache_stats(
            cache_stats_by_pid, plan.cache_budget_bytes or None
        ),
        measured, workers=plan.workers, schedule=plan.schedule,
    )


def run_suite_parallel(
    plan, verbose: bool = False, pool: Optional[ProcessPoolExecutor] = None
) -> List[Dict[str, object]]:
    """Execute *plan* on a ``plan.workers``-process pool; one payload per
    dataset, cell-for-cell identical to the sequential run up to timing.

    With no *pool* argument, a pool is created once and reused across the
    plan's datasets, so worker-side graph/cache state amortizes over the
    whole plan.  Passing an existing executor (a session's resident pool)
    skips pool creation entirely — worker state then amortizes across
    *plans*, not just datasets.
    """
    plan.validate_execution()
    if pool is not None:
        return [
            run_plan_on_pool(pool, plan, dataset, verbose=verbose)
            for dataset in plan.datasets
        ]
    ctx = _mp_context()
    with ProcessPoolExecutor(max_workers=plan.workers, mp_context=ctx) as owned:
        return [
            run_plan_on_pool(owned, plan, dataset, verbose=verbose)
            for dataset in plan.datasets
        ]


# ---------------------------------------------------------------------------
# Determinism diffing: strip timing, compare everything else byte-for-byte.
# ---------------------------------------------------------------------------


def strip_timing(
    payload: Dict[str, object], *, semantic: bool = False
) -> Dict[str, object]:
    """The deterministic projection of a suite payload.

    Keeps the dataset identity, the cross-check anchor, and every cell
    field except wall-clock measurements (``seconds`` and the
    ``task_costs`` extras).  Execution mode, timing, the plan's execution
    knobs, and the materialization stats (which legitimately differ
    between one shared cache and per-worker caches) are dropped — two
    runs of the same sweep must agree on *this* projection exactly,
    whatever the schedule.  gms-suite/v1 payloads (no ``extras``, no
    ``counters`` block) project cleanly too, so suite-diff can diagnose a
    v1-vs-v2 pair instead of crashing on it.

    ``semantic=True`` additionally drops the provenance keys
    (``resolved_class``): the projection then states *what was computed*,
    not which concrete class computed it — the equivalence a
    ``--dispatch static`` vs ``--dispatch adaptive`` pair must satisfy.
    """
    dropped = TIMING_CELL_KEYS + (PROVENANCE_CELL_KEYS if semantic else ())
    cells = []
    for cell in payload["cells"]:
        kept = {
            k: v for k, v in cell.items() if k not in dropped
        }
        kept["extras"] = {
            k: v for k, v in cell.get("extras", {}).items()
            if k not in TIMING_EXTRAS_KEYS
        }
        cells.append(kept)
    return {
        "schema": payload["schema"],
        "dataset": payload["dataset"],
        "num_nodes": payload["num_nodes"],
        "num_edges": payload["num_edges"],
        "reference_backend": payload["reference_backend"],
        "counters": payload.get("counters"),
        "cells": cells,
    }


def diff_payloads(
    a: Dict[str, object], b: Dict[str, object], *, semantic: bool = False
) -> List[str]:
    """Human-readable differences between two payloads' deterministic
    projections; empty means byte-identical after timing stripping
    (and, with ``semantic=True``, after provenance stripping)."""
    sa = strip_timing(a, semantic=semantic)
    sb = strip_timing(b, semantic=semantic)
    if json.dumps(sa, sort_keys=True) == json.dumps(sb, sort_keys=True):
        return []
    problems: List[str] = []
    for key in ("schema", "dataset", "num_nodes", "num_edges",
                "reference_backend", "counters"):
        if sa[key] != sb[key]:
            problems.append(f"{key}: {sa[key]!r} != {sb[key]!r}")
    ca, cb = sa["cells"], sb["cells"]
    if len(ca) != len(cb):
        problems.append(f"cell count: {len(ca)} != {len(cb)}")
    for i, (x, y) in enumerate(zip(ca, cb)):
        if x != y:
            diffs = [
                f"{f}={x.get(f)!r} vs {y.get(f)!r}"
                for f in sorted(set(x) | set(y)) if x.get(f) != y.get(f)
            ]
            problems.append(
                f"cell {i} ({x.get('kernel')}/{x.get('ordering')}/"
                f"{x.get('set_class')}): " + "; ".join(diffs)
            )
    return problems


def diff_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro suite-diff A.json B.json``.

    Exit 0 iff the two suite artifacts agree on every non-timing field —
    the check CI runs between the sequential and ``--workers 2`` smoke
    artifacts.
    """
    parser = argparse.ArgumentParser(
        prog="repro suite-diff",
        description="compare two suite artifacts up to timing fields",
    )
    parser.add_argument("artifact_a")
    parser.add_argument("artifact_b")
    parser.add_argument("--semantic", action="store_true",
                        help="also ignore which concrete set classes "
                             "served the cells (resolved_class) — the "
                             "static-vs-adaptive dispatch identity gate")
    ns = parser.parse_args(argv)
    with open(ns.artifact_a) as handle:
        a = json.load(handle)
    with open(ns.artifact_b) as handle:
        b = json.load(handle)
    problems = diff_payloads(a, b, semantic=ns.semantic)
    if problems:
        print(f"suite artifacts differ beyond timing "
              f"({len(problems)} problem(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    exec_a = a.get("execution", {})
    exec_b = b.get("execution", {})
    print(
        f"suite artifacts agree up to timing: {len(a['cells'])} cells, "
        f"{exec_a.get('schedule', '?')}×{exec_a.get('workers', '?')} vs "
        f"{exec_b.get('schedule', '?')}×{exec_b.get('workers', '?')}"
    )
    return 0

"""``python -m repro serve`` — a session REPL for repeated queries.

The long-lived-service face of :class:`~repro.platform.session.
MiningSession`: one session is opened for the whole process, and every
line read from stdin is a request served against its shared
materialization cache and (for ``--workers > 1``) its resident,
pre-warmed process pool.  Repeating a query is therefore *warm* —
exactly the behavior the session exists to provide, and the thing the CI
session-smoke step exercises by piping the same ``suite --smoke`` line
twice through one serve process.

Commands (one per line; ``#`` starts a comment)::

    query <kernel> <dataset> [backend=NAME] [ordering=NAME] [k=N]
          [fpr=F] [bits=N] [shared_bits=N] [kmv_k=N] [repeats=N]
    suite [suite CLI flags, e.g. --smoke --datasets ...]
    warm <dataset> [backend ...]
    stats
    datasets
    kernels
    help
    quit

``query`` prints one result line; ``suite`` runs a full declarative plan
through the session and writes the standard ``results/suite_<dataset>``
artifacts; ``stats`` dumps the session's cache/counter/pool stats as
JSON.  A malformed line (unknown command, bad query option, unparsable
suite flags) fails that request, not the session.  Exit status is
nonzero if any suite run failed its exact-backend cross-check or any
line failed.  Request failures print one line to stderr; the full
traceback is logged at DEBUG (``--verbose`` enables it) so a long-lived
session stays diagnosable without drowning the operator.

Migration note (REPL → HTTP)
----------------------------
The line-oriented REPL is the single-operator face of the session.  For
anything programmatic — remote clients, concurrent callers, tenancy,
long-running suite jobs you poll instead of block on — use the network
front door instead: ``python -m repro serve --http PORT`` serves the
same session over asyncio HTTP/JSON (:mod:`repro.platform.http`), with
``POST /query`` replacing ``query`` lines, ``POST /suite`` +
``GET /jobs/<id>`` replacing ``suite`` lines, and ``GET /stats``
replacing ``stats``.  The REPL remains for interactive use and the CI
session smoke; new automation should target ``--http``.
"""

from __future__ import annotations

import argparse
import json
import logging
import shlex
import sys
from typing import IO, List, Optional

from ..graph import dataset_names
from .cli import add_parallel_args
from .session import MiningSession
from .suite import SUITE_KERNELS, plan_from_argv, report_payloads

__all__ = ["build_serve_parser", "serve_main"]

logger = logging.getLogger(__name__)

_PROMPT = "gms> "

_QUERY_KEYS = {
    "backend", "ordering", "k", "eps", "fpr", "bits", "shared_bits",
    "kmv_k", "repeats",
}


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve repeated mining queries from one MiningSession",
    )
    add_parallel_args(parser)
    parser.add_argument("--no-prompt", action="store_true",
                        help="suppress the interactive prompt (script mode)")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--http", type=int, default=None, metavar="PORT",
                        help="serve HTTP/JSON on PORT instead of the REPL "
                             "(asyncio front door: POST /query, POST /suite "
                             "jobs, GET /jobs/<id>, GET /stats, GET /healthz)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --http (default 127.0.0.1)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="--http admission control: requests allowed "
                             "in service at once before the backlog fills")
    parser.add_argument("--admission-backlog", type=int, default=16,
                        help="--http admission control: admitted-but-queued "
                             "requests beyond --max-inflight before 429s")
    parser.add_argument("--max-pending-jobs", type=int, default=8,
                        help="--http: queued suite jobs before submissions "
                             "get 429")
    parser.add_argument("--tenants", default=None, metavar="PATH",
                        help="--http: JSON file mapping tenant name -> "
                             "quotas (max_bloom_bits, max_cache_bytes, "
                             "worker_share); unknown tenants are unlimited")
    parser.add_argument("--job-root", default=None, metavar="DIR",
                        help="--http: persistent job store directory "
                             "(default results/jobs)")
    return parser


def _parse_query_line(session: MiningSession, tokens: List[str]):
    if len(tokens) < 2:
        raise ValueError("usage: query <kernel> <dataset> [key=value ...]")
    kernel, dataset = tokens[0], tokens[1]
    options = {}
    for token in tokens[2:]:
        if "=" not in token:
            raise ValueError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        if key not in _QUERY_KEYS:
            raise ValueError(
                f"unknown query option {key!r}; known: {sorted(_QUERY_KEYS)}"
            )
        options[key] = value
    query = session.query(
        kernel,
        k=int(options.pop("k", 4)),
        eps=float(options.pop("eps", 0.1)),
    ).on(dataset)
    if {"backend", "fpr", "bits", "shared_bits", "kmv_k"} & set(options):
        query = query.backend(
            options.pop("backend", "sorted"),
            fpr=float(options.pop("fpr", 0.0)),
            bits=int(options.pop("bits", 0)),
            shared_bits=int(options.pop("shared_bits", 0)),
            kmv_k=int(options.pop("kmv_k", 0)),
        )
    if "ordering" in options:
        query = query.ordering(options.pop("ordering"))
    if "repeats" in options:
        query = query.repeats(int(options.pop("repeats")))
    return query


def _print_help() -> None:
    print(
        "commands:\n"
        "  query <kernel> <dataset> [backend=NAME] [ordering=NAME] [k=N]\n"
        "        [eps=F] [fpr=F] [bits=N] [shared_bits=N] [kmv_k=N]"
        " [repeats=N]\n"
        "  suite [suite CLI flags]\n"
        "  warm <dataset> [backend ...]\n"
        "  stats | datasets | kernels | help | quit"
    )


def serve_main(argv: Optional[List[str]] = None,
               stdin: Optional[IO[str]] = None) -> int:
    """Entry point for ``python -m repro serve``.

    *stdin* overrides the input stream (tests feed an ``io.StringIO``).
    """
    ns = build_serve_parser().parse_args(argv)
    if ns.verbose:
        logging.basicConfig(level=logging.DEBUG)
    if ns.http is not None:
        from .http import serve_http

        return serve_http(ns)
    stream = stdin if stdin is not None else sys.stdin
    interactive = (
        not ns.no_prompt and stream is sys.stdin
        and getattr(stream, "isatty", lambda: False)()
    )
    failures = 0
    with MiningSession(
        workers=ns.workers, schedule=ns.schedule,
        cache_budget_bytes=ns.cache_budget_bytes,
        transport=ns.transport, verbose=ns.verbose,
    ) as session:
        print(f"session ready: {session!r} (type 'help' for commands)")
        while True:
            if interactive:
                print(_PROMPT, end="", flush=True)
            line = stream.readline()
            if not line:
                break
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                tokens = shlex.split(line)
                command, rest = tokens[0], tokens[1:]
                if command in ("quit", "exit"):
                    break
                elif command == "help":
                    _print_help()
                elif command == "datasets":
                    print(" ".join(dataset_names()))
                elif command == "kernels":
                    print(" ".join(sorted(SUITE_KERNELS)))
                elif command == "stats":
                    print(json.dumps(session.stats(), indent=2, default=str))
                elif command == "warm":
                    if not rest:
                        raise ValueError("usage: warm <dataset> [backend ...]")
                    session.warm(rest[0], backends=tuple(rest[1:]) or ("sorted",))
                    print(f"warmed {rest[0]}")
                elif command == "suite":
                    plan = plan_from_argv(rest)
                    payloads = session.run_plan(plan)
                    failures += report_payloads(payloads)
                elif command == "query":
                    result = _parse_query_line(session, rest).run()
                    print(
                        f"{result.kernel} on {result.dataset} "
                        f"[{result.backend} -> {result.resolved_class}, "
                        f"{result.ordering}]: value={result.value} "
                        f"({1000 * result.wall_seconds:.1f} ms wall, "
                        f"{1000 * result.seconds:.1f} ms kernel, "
                        f"cache {result.cache_hits}h/{result.cache_misses}m)"
                    )
                else:
                    raise ValueError(
                        f"unknown command {command!r} (try 'help')"
                    )
            except SystemExit as exc:
                # argparse exits on bad suite flags (and on `--help`);
                # a long-lived session must survive both — report the
                # failure, keep serving.
                if exc.code not in (0, None):
                    failures += 1
                    print("error: could not parse suite flags "
                          f"(exit {exc.code})", file=sys.stderr)
            except Exception as exc:
                # Any request-level failure — bad input, a kernel raising,
                # artifact I/O — fails that request, never the session.
                # One line for the operator; the full traceback goes to
                # the DEBUG log so failures stay diagnosable after the
                # fact without spamming every typo.
                failures += 1
                logger.debug("request failed: %r", line, exc_info=True)
                print(f"error: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
        stats = session.stats()
        worker_note = ""
        # A pool that never started reports no worker caches (None — or
        # no key at all from an older/stubbed stats dict): the closing
        # line must survive both.
        workers = stats.get("worker_caches")
        if workers:
            worker_note = (f", worker caches {workers['hits']} hits / "
                           f"{workers['misses']} misses")
        print(
            f"session closing: {stats['queries']} query(ies), "
            f"{stats['plans']} plan(s), cache {stats['cache']['hits']} hits "
            f"/ {stats['cache']['misses']} misses{worker_note}, "
            f"pool starts {stats['pool']['starts']}"
        )
    return 1 if failures else 0

"""Session-centric mining API: one long-lived object owns the state.

The GMS platform's modularity — swappable set representations, vertex
orderings, and kernels behind one set-algebra interface — used to surface
as ad-hoc plumbing: every call threaded its own ``set_cls``/``cache``
arguments, backend resolution lived on the CLI ``Args`` object, and each
``run_suite`` call built (and tore down) its own process pool.  For a
long-lived service answering repeated queries, all of that state belongs
in one place.  :class:`MiningSession` is that place:

* a **named graph store** — registry datasets loaded once per session
  (:meth:`~MiningSession.load`), plus arbitrary in-memory graphs
  (:meth:`~MiningSession.add_graph`);
* one **budget-bounded** :class:`~repro.graph.set_graph.MaterializationCache`
  shared across *all* requests, so the second query touching a
  (graph, backend, ordering) combination hits cached materializations
  instead of rebuilding them;
* **merged counters** — :attr:`~MiningSession.counters` accumulates the
  set-algebra software counters across every query the session served,
  including work done in pool workers (folded back via the associative
  :meth:`~repro.core.counters.Snapshot.merge`);
* a **resident** :class:`~concurrent.futures.ProcessPoolExecutor` —
  started lazily on the first batch/plan that needs it, reused by every
  subsequent request, and **pre-warmed** by shipping the pickled graphs
  and oriented ``SetGraph`` materializations once at pool creation
  instead of re-materializing per task.  It is created at most once per
  session (:attr:`~MiningSession.pool_starts` pins this) and torn down by
  :meth:`~MiningSession.close`.

On top of the session sits the fluent :class:`Query` builder::

    from repro.platform.session import MiningSession

    with MiningSession(workers=2) as session:
        result = (
            session.query("kclique", k=4)
            .on("ca-grqc")
            .backend("bloom", fpr=0.01)
            .ordering("degeneracy")
            .run()
        )
        batch = session.query("tc").on("sc-ht-mini").run_many([
            {"backend": "bitset"}, {"backend": "bloom"},
        ])

A query compiles down to the existing
:class:`~repro.platform.suite.ExperimentPlan` /
:func:`~repro.platform.suite.run_cell` machinery — the suite, the
parallel runner, the budget sweep, and the CLI (including the
``python -m repro serve`` REPL) are all thin clients of the same session
object model.

Migration notes (from the ``Args``-threading API)
-------------------------------------------------
* ``Args.resolve_set_class_for_graph(graph)`` → deprecated.  Use
  :func:`repro.platform.cli.resolve_set_class_for_graph` for one-shot
  resolution, or let the session resolve (and memoize) backends: the
  :meth:`Query.backend` budgets map onto the same knobs
  (``fpr`` → ``--bloom-fpr``, ``bits`` → ``--bloom-bits``,
  ``shared_bits`` → ``--bloom-shared-bits``, ``kmv_k`` → ``--kmv-k``).
* ``run_suite(plan)`` → deprecated shim.  It now opens a throwaway
  session and calls :meth:`MiningSession.run_plan`; long-lived callers
  should hold a session so caches and the pool survive across plans.
* Per-call ``set_cls=...``/``cache=...`` threading through kernels keeps
  working (the kernels are unchanged), but the session is the intended
  owner of both: ``session.query(...)`` passes its shared cache and its
  memoized resolved backend for you.
* ``ProcessPoolExecutor`` per ``run_suite`` call → the session's resident
  pool.  The pool inherits whatever graphs the session had loaded when it
  started; graphs loaded afterwards are materialized worker-side on first
  use (registry datasets only — add custom graphs *before* the first
  parallel request so they ship with the warm payload).
* ``MaterializationCache.export_graph_state`` callers shipping state
  across processes themselves: the export payload is unchanged, but it
  no longer has to cross the boundary by value — pass it through
  :func:`repro.platform.shm.export_graph_payload` /
  :func:`~repro.platform.shm.attach_graph_payload` to ship shared-memory
  descriptors instead (what ``MiningSession(transport="shm")`` does),
  and own the returned :class:`~repro.platform.shm.SegmentExporter`'s
  lifetime the way :meth:`MiningSession.close` does.

Zero-copy pool architecture (``transport="shm"``)
-------------------------------------------------
With the default ``transport="pickle"`` the pre-warm payload copies
every graph and materialization into every worker.  With
``transport="shm"`` the session exports the CSR arrays and each exact
``SetGraph``'s flattened ``(offsets, values)`` member arrays into named
:mod:`multiprocessing.shared_memory` segments **once** (a
:class:`~repro.platform.shm.SegmentExporter` owned by the session), and
the payload carries only array *descriptors*; workers map the segments
and rebuild read-only zero-copy views.  Segments are unlinked by
:meth:`~MiningSession.close` (idempotent), with a GC/atexit finalizer
plus the stdlib resource tracker as crash backstops — a dead session
never leaks ``/dev/shm`` entries.  Cell values, counters, and artifacts
are identical across transports (CI gates this with ``suite-diff``);
only ``payload_bytes_shipped`` changes.

Sequential single queries (``.run()`` on a ``workers=1`` session) execute
in-process against the shared session cache — lowest latency, cache hits
visible in :meth:`MiningSession.stats`.  Batches (:meth:`Query.run_many`)
and plans (:meth:`MiningSession.run_plan`) fan out across the resident
pool when ``workers > 1``.
"""

from __future__ import annotations

import logging
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import astuple, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Type

from ..core import counters as _counters
from ..core.counters import Snapshot, merge_snapshots
from ..core.interface import SetBase
from ..graph import DATASETS, load_dataset
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from ..preprocess.ordering import ORDERINGS
from .cli import DISPATCH_MODES, RUNNER_SCHEDULES, TRANSPORTS
from .suite import (
    SUITE_KERNELS,
    ExperimentPlan,
    dataset_payload,
    expand_cells,
    resolve_backend,
    run_cell,
)

__all__ = [
    "ORDERING_ALIASES",
    "MiningSession",
    "Query",
    "QueryResult",
    "resolve_ordering_name",
]

logger = logging.getLogger(__name__)

#: Friendly ordering names accepted by :meth:`Query.ordering` (and the
#: serve REPL) next to the registry mnemonics.
ORDERING_ALIASES: Dict[str, str] = {
    "degeneracy": "DGR",
    "approx-degeneracy": "ADG",
    "degree": "DEG",
    "triangle": "TRI",
    "identity": "ID",
    "random": "RANDOM",
}


def resolve_ordering_name(name: str) -> str:
    """Map an ordering alias or registry mnemonic to the registry name."""
    resolved = ORDERING_ALIASES.get(name.lower(), name)
    if resolved not in ORDERINGS:
        known = sorted(ORDERINGS) + sorted(ORDERING_ALIASES)
        raise KeyError(f"unknown ordering {name!r}; known: {known}")
    return resolved


def _plan_shard_key(plan: ExperimentPlan) -> tuple:
    """The plan fields two ``run_many`` variants must share to co-shard.

    Everything except the sweep selection (datasets/kernels/set_classes/
    orderings, which the shard's explicit cell specs carry instead): the
    kernel parameters, budgets, and execution knobs a worker actually
    reads while serving a shard.  Variants differing only in kernel (or
    cross-checking the same kernel under one backend) therefore share a
    shard — and its single materialization — while a variant with, say,
    a different ``k`` gets its own.
    """
    return astuple(replace(
        plan, datasets=(), kernels=(), set_classes=(), orderings=(),
    ))


@dataclass(frozen=True)
class QueryResult:
    """One answered query.

    ``seconds`` is the warm best-of-repeats kernel time (the suite cell
    metric); ``wall_seconds`` is the end-to-end latency the session
    observed for this request, *including* any materialization and
    warm-up — the number the cold-vs-warm comparison is about.
    ``counters`` is the query's set-algebra delta (warm-up included), and
    ``cache_hits``/``cache_misses`` the session-cache delta (in-process
    queries only; pool-served queries hit worker-local caches instead,
    visible in :meth:`MiningSession.stats`).
    """

    kernel: str
    dataset: str
    backend: str
    resolved_class: str
    ordering: str
    value: object
    exact: bool
    seconds: float
    wall_seconds: float
    counters: Snapshot
    cache_hits: int
    cache_misses: int
    cell: Dict[str, object] = field(repr=False)


class Query:
    """Fluent, immutable query description bound to a session.

    Every builder method returns a *new* ``Query``, so a configured query
    can be reused as a template: ``base = session.query("tc").on("x")``
    then ``base.backend("bloom").run()`` and ``base.run()`` are
    independent.  :meth:`run` answers one query; :meth:`run_many` answers
    a batch of variations of this query (through the resident pool when
    the session has one).
    """

    _OVERRIDE_KEYS = (
        "kernel", "dataset", "backend", "ordering", "k", "eps", "repeats",
        "fpr", "bits", "shared_bits", "kmv_k", "dispatch",
        "cache_budget_bytes",
    )

    def __init__(self, session: "MiningSession", kernel: str, *,
                 k: int = 4, eps: float = 0.1):
        if kernel not in SUITE_KERNELS:
            raise KeyError(
                f"unknown kernel {kernel!r}; known: {sorted(SUITE_KERNELS)}"
            )
        self._session = session
        self._kernel = kernel
        self._dataset: Optional[str] = None
        self._backend = "sorted"
        self._ordering = "DGR"
        self._k = k
        self._eps = eps
        self._repeats = 1
        self._bloom_bits = 0
        self._kmv_k = 0
        self._bloom_shared_bits = 0
        self._bloom_fpr = 0.0
        self._dispatch = "static"
        self._cache_budget: Optional[int] = None

    def _clone(self) -> "Query":
        clone = Query.__new__(Query)
        clone.__dict__.update(self.__dict__)
        return clone

    def on(self, dataset: str) -> "Query":
        """Select the graph to mine (registry name or a session-added one)."""
        clone = self._clone()
        clone._dataset = dataset
        return clone

    def backend(self, name: str, *, fpr: float = 0.0, bits: int = 0,
                shared_bits: int = 0, kmv_k: int = 0) -> "Query":
        """Select the set representation and its sketch budgets.

        The budget keywords carry the shared CLI semantics: ``fpr`` is the
        Bloom false-positive target (auto-sizes a shared budget, wins over
        the bit budgets), ``bits`` the per-element Bloom budget,
        ``shared_bits`` the per-graph shared Bloom total, ``kmv_k`` the
        KMV signature size.  Resolution happens per graph at run time and
        is memoized by the session.
        """
        clone = self._clone()
        clone._backend = name
        clone._bloom_fpr = fpr
        clone._bloom_bits = bits
        clone._bloom_shared_bits = shared_bits
        clone._kmv_k = kmv_k
        return clone

    def ordering(self, name: str) -> "Query":
        """Select the vertex ordering (registry mnemonic or alias)."""
        clone = self._clone()
        clone._ordering = resolve_ordering_name(name)
        return clone

    def dispatch(self, mode: str) -> "Query":
        """Select the set-op dispatch policy (``static`` or ``adaptive``).

        ``adaptive`` swaps the resolved backend for the density-adaptive
        dispatcher when it is exact; sketch backends are left alone.
        Results are bit-identical either way.
        """
        if mode not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {mode!r}; known: {DISPATCH_MODES}"
            )
        clone = self._clone()
        clone._dispatch = mode
        return clone

    def params(self, *, k: Optional[int] = None,
               eps: Optional[float] = None) -> "Query":
        """Override kernel parameters (clique size ``k``, ADG ``eps``)."""
        clone = self._clone()
        if k is not None:
            clone._k = k
        if eps is not None:
            clone._eps = eps
        return clone

    def repeats(self, n: int) -> "Query":
        """Meter the kernel as best-of-*n* (timing only; one warm-up pass)."""
        clone = self._clone()
        clone._repeats = max(1, n)
        return clone

    def cache_budget(self, nbytes: int) -> "Query":
        """Override the plan's worker-cache byte budget for this query.

        The session's own shared cache keeps the budget it was built
        with; this knob rides the compiled plan into *pool workers*
        (each worker's per-dataset :class:`MaterializationCache` is
        bounded by the plan budget), which is how the HTTP tier threads
        a tenant's cache-bytes quota into pool-served requests.  ``0``
        means unbounded; the default inherits the session budget.
        """
        clone = self._clone()
        clone._cache_budget = max(0, int(nbytes))
        return clone

    def with_overrides(self, overrides: Mapping[str, object]) -> "Query":
        """Apply a :meth:`run_many` variant dict to this query."""
        unknown = set(overrides) - set(self._OVERRIDE_KEYS)
        if unknown:
            raise KeyError(
                f"unknown query override(s) {sorted(unknown)}; "
                f"known: {list(self._OVERRIDE_KEYS)}"
            )
        query = self
        if "kernel" in overrides:
            fresh = Query(self._session, str(overrides["kernel"]))
            fresh.__dict__.update(
                {k: v for k, v in self.__dict__.items() if k != "_kernel"}
            )
            query = fresh
        if "dataset" in overrides:
            query = query.on(str(overrides["dataset"]))
        if "backend" in overrides:
            query = query.backend(
                str(overrides["backend"]),
                fpr=float(overrides.get("fpr", query._bloom_fpr)),
                bits=int(overrides.get("bits", query._bloom_bits)),
                shared_bits=int(
                    overrides.get("shared_bits", query._bloom_shared_bits)
                ),
                kmv_k=int(overrides.get("kmv_k", query._kmv_k)),
            )
        elif {"fpr", "bits", "shared_bits", "kmv_k"} & set(overrides):
            query = query.backend(
                query._backend,
                fpr=float(overrides.get("fpr", query._bloom_fpr)),
                bits=int(overrides.get("bits", query._bloom_bits)),
                shared_bits=int(
                    overrides.get("shared_bits", query._bloom_shared_bits)
                ),
                kmv_k=int(overrides.get("kmv_k", query._kmv_k)),
            )
        if "ordering" in overrides:
            query = query.ordering(str(overrides["ordering"]))
        if "k" in overrides or "eps" in overrides:
            query = query.params(
                k=(int(overrides["k"]) if "k" in overrides else None),
                eps=(float(overrides["eps"]) if "eps" in overrides
                     else None),
            )
        if "repeats" in overrides:
            query = query.repeats(int(overrides["repeats"]))
        if "dispatch" in overrides:
            query = query.dispatch(str(overrides["dispatch"]))
        if "cache_budget_bytes" in overrides:
            query = query.cache_budget(int(overrides["cache_budget_bytes"]))
        return query

    # -- compilation --------------------------------------------------------

    def plan(self) -> ExperimentPlan:
        """Compile this query to a single-cell :class:`ExperimentPlan`."""
        if self._dataset is None:
            raise ValueError("query has no dataset; call .on(<dataset>)")
        session = self._session
        return ExperimentPlan(
            datasets=(self._dataset,),
            kernels=(self._kernel,),
            set_classes=(self._backend,),
            orderings=(self._ordering,),
            k=self._k,
            eps=self._eps,
            repeats=self._repeats,
            bloom_bits=self._bloom_bits,
            kmv_k=self._kmv_k,
            bloom_shared_bits=self._bloom_shared_bits,
            bloom_fpr=self._bloom_fpr,
            workers=session.workers,
            schedule=session.schedule,
            cache_budget_bytes=(
                session.cache_budget_bytes if self._cache_budget is None
                else self._cache_budget
            ),
            dispatch=self._dispatch,
        )

    def cell_spec(self) -> Tuple[str, str, str]:
        """The ``(backend, kernel, ordering)`` cell this query denotes."""
        kernel = SUITE_KERNELS[self._kernel]
        ordering = self._ordering if kernel.uses_ordering else "-"
        return (self._backend, self._kernel, ordering)

    # -- execution ----------------------------------------------------------

    def run(self) -> QueryResult:
        """Answer this query in-process against the session cache."""
        return self._session._run_query(self)

    def run_many(
        self, variants: Optional[Sequence[Mapping[str, object]]] = None
    ) -> List[QueryResult]:
        """Answer a batch: this query under each override dict.

        ``variants=None`` runs the query once (a batch of one).  On a
        ``workers > 1`` session the batch fans out over the resident pool,
        one task per variant; per-variant counter deltas are merged with
        the associative :meth:`Snapshot.merge` so the session totals are
        identical to a sequential run of the same batch.
        """
        queries = (
            [self] if variants is None
            else [self.with_overrides(v) for v in variants]
        )
        return self._session._run_batch(queries)


class MiningSession:
    """The long-lived facade owning graphs, cache, counters, and the pool.

    See the module docstring for the object model and migration notes.
    ``workers=1`` (default) answers everything in-process; ``workers > 1``
    serves batches and plans from a resident process pool that is started
    lazily, pre-warmed once, and reused until :meth:`close`.

    ``transport`` selects how the pre-warm state reaches the workers:
    ``"pickle"`` (default) copies it into each worker; ``"shm"`` exports
    the arrays once into named shared-memory segments that workers map as
    read-only zero-copy views (see the module docstring's zero-copy
    section) — same results, payload bytes reduced to descriptors.
    ``schedule`` picks the pool policy (``static``/``dynamic``/
    ``stealing``); :meth:`close` unlinks any shm segments.
    """

    def __init__(self, *, workers: int = 1, schedule: str = "dynamic",
                 cache_budget_bytes: int = 0, transport: str = "pickle",
                 verbose: bool = False):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if schedule not in RUNNER_SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; known: {RUNNER_SCHEDULES}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; known: {TRANSPORTS}"
            )
        self.workers = workers
        self.schedule = schedule
        self.cache_budget_bytes = cache_budget_bytes
        self.transport = transport
        self.verbose = verbose
        self.cache = MaterializationCache(
            budget_bytes=cache_budget_bytes or None
        )
        self.pool_starts = 0
        self.queries_run = 0
        self.plans_run = 0
        self._graphs: Dict[str, CSRGraph] = {}
        self._resolved: Dict[tuple, Tuple[CSRGraph, Type[SetBase]]] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shipped: frozenset = frozenset()
        self._rebound_after_pool: Set[str] = set()
        self._exporter = None  # platform.shm.SegmentExporter, shm transport
        self._worker_cache_stats: Dict[int, Dict[str, object]] = {}
        self._baseline = _counters.snapshot()
        self._closed = False

    @classmethod
    def from_plan(cls, plan: ExperimentPlan,
                  verbose: bool = False) -> "MiningSession":
        """A session matching *plan*'s execution knobs (shim entry path)."""
        plan.validate_execution()
        return cls(
            workers=plan.workers, schedule=plan.schedule,
            cache_budget_bytes=plan.cache_budget_bytes,
            transport=plan.transport, verbose=verbose,
        )

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "MiningSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Tear down the resident pool and refuse further requests.

        Idempotent.  The cache and counters stay readable after close (for
        final stats reporting); only execution is refused.  Under the shm
        transport this is also where the session's shared-memory segments
        are unlinked — after the pool drains, so no worker still needs
        the parent to keep the names alive (the mappings themselves
        survive unlink; the names must only outlive late *attaches*).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._exporter is not None:
            self._exporter.close()
            self._exporter = None
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("MiningSession is closed")

    # -- graph store --------------------------------------------------------

    def load(self, name: str) -> CSRGraph:
        """Load a registry dataset into the session store (memoized)."""
        graph = self._graphs.get(name)
        if graph is None:
            graph = load_dataset(name)
            self._graphs[name] = graph
        return graph

    def add_graph(self, name: str, graph: CSRGraph) -> CSRGraph:
        """Register an in-memory graph under *name* for this session.

        Add custom graphs before the first parallel request: the resident
        pool ships the graph store once, at creation, and workers can only
        self-load *registry* datasets afterwards.  For the same reason, a
        name already shipped to a running pool cannot be re-bound — the
        workers would keep serving the old graph.
        """
        if name in DATASETS:
            raise ValueError(
                f"{name!r} is a registry dataset name; pool workers "
                f"resolve registry names through the registry, so "
                f"shadowing one with a session graph would diverge — "
                f"pick a different name"
            )
        if self._pool is not None and name in self._shipped:
            raise RuntimeError(
                f"graph {name!r} was already shipped to the resident pool "
                f"and cannot be re-bound; use a new name (or a new session)"
            )
        if self._pool is not None and name in self._graphs:
            # A known-but-unshipped name re-bound after pool start: the
            # parent now holds a graph the workers never saw, and a later
            # parallel request for this name would otherwise resolve
            # worker-side to something else entirely.  Record the
            # divergence so _require_pool_dataset fails fast instead of
            # letting it pass silently.
            self._rebound_after_pool.add(name)
        self._graphs[name] = graph
        return graph

    def graphs(self) -> List[str]:
        """Names currently in the session store."""
        return sorted(self._graphs)

    def warm(self, dataset: str, backends: Sequence[str] = ("sorted",),
             orderings: Sequence[str] = ("DGR",), eps: float = 0.1, *,
             fpr: float = 0.0, bits: int = 0, shared_bits: int = 0,
             kmv_k: int = 0) -> None:
        """Pre-materialize (backend × ordering) combinations for *dataset*.

        Populates the session cache so a subsequent pool start ships real
        materializations — and so the first query is already warm.  The
        budget keywords mirror :meth:`Query.backend`: warming is only
        useful if it resolves to the *same* class the queries will use,
        and budgeted resolution depends on these knobs.  (Budget-derived
        sketch classes cannot ship to pool workers — they are not
        picklable by reference — so for those the warmth benefits the
        in-process paths only.)
        """
        self._check_open()
        graph = self.load(dataset)
        plan = ExperimentPlan(
            eps=eps, bloom_bits=bits, kmv_k=kmv_k,
            bloom_shared_bits=shared_bits, bloom_fpr=fpr,
        )
        for backend in backends:
            cls = self._backend_for(plan, dataset, backend, graph)
            self.cache.set_graph(graph, cls)
            for name in orderings:
                name = resolve_ordering_name(name)
                kwargs = {"eps": eps} if name == "ADG" else {}
                self.cache.oriented(graph, cls, name, **kwargs)

    # -- backend resolution -------------------------------------------------

    def _backend_for(self, plan: ExperimentPlan, dataset: str,
                     backend_name: str, graph: CSRGraph) -> Type[SetBase]:
        """Budget-resolved set class, memoized per (graph, budgets).

        Keyed by graph *identity*, not just the dataset name: budget
        resolution depends on the graph's size and average degree, and
        ``add_graph`` may re-bind a name to a different graph.  The memo
        holds the graph itself, both to compare identity and to pin the
        object so a recycled ``id()`` can never alias a stale entry.
        """
        key = (dataset, backend_name) + plan.budget_key()
        memo = self._resolved.get(key)
        if memo is not None and memo[0] is graph:
            return memo[1]
        cls = resolve_backend(plan, dataset, backend_name, graph)
        self._resolved[key] = (graph, cls)
        return cls

    # -- resident pool ------------------------------------------------------

    def _ensure_exporter(self):
        """The session's shm segment owner — created at most once."""
        if self._exporter is None:
            from .shm import SegmentExporter

            self._exporter = SegmentExporter()
        return self._exporter

    def _warm_payload(self) -> Tuple[bytes, frozenset]:
        """Build the pool pre-warm payload, one entry per dataset.

        Returns the payload bytes and the set of dataset names it
        actually carries.  Each dataset is pickled *independently* (the
        outer payload maps names to ready-made blobs), so one graph that
        cannot cross the process boundary drops only its own entry —
        every other dataset keeps its full warm state — and the
        shipped-set stays truthful so :meth:`_require_pool_dataset`
        keeps failing fast for graphs the workers never received.

        Per dataset the candidates degrade gracefully: a shared-memory
        descriptor entry first (``transport="shm"``, plain ``CSRGraph``
        only — a subclass would lose its behavior in the worker-side
        rebuild), then full state by value, then graph-only.  A segment
        exported for an entry whose pickling then fails is released
        *before* the fallback candidate runs (:meth:`_shm_entry`), so a
        dataset that ends up shipping by pickle never parks dead
        segments in ``/dev/shm`` for the session's lifetime.
        """
        budget = self.cache_budget_bytes or None
        entries: Dict[str, bytes] = {}
        for name, graph in self._graphs.items():
            state = self.cache.export_graph_state(graph)
            candidates = []
            if self.transport == "shm" and type(graph) is CSRGraph:
                candidates.append(
                    lambda g=graph, s=state: self._shm_entry(g, s, budget)
                )
            candidates.append(
                lambda g=graph, s=state: pickle.dumps(
                    ("pickle", g, s, budget)
                )
            )
            candidates.append(
                lambda g=graph: pickle.dumps(("pickle", g, None, budget))
            )
            for make in candidates:
                try:
                    entries[name] = make()
                    break
                except Exception:
                    # Degrade to the next transport candidate — but log
                    # which one failed, or a dataset silently shipping
                    # by pickle looks identical to zero-copy shm.
                    logger.debug("warm-payload candidate for dataset %r "
                                 "failed; degrading to the next transport",
                                 name, exc_info=True)
                    continue
        return pickle.dumps(entries), frozenset(entries)

    def _shm_entry(self, graph: CSRGraph, state: Optional[dict],
                   budget: Optional[int]) -> bytes:
        """One dataset's shared-memory warm-payload blob.

        Exports the graph + materialization arrays into the session's
        segments, then pickles the descriptor entry.  If that pickling
        fails (e.g. a runtime-defined set class rode along in *state*),
        the references the export just took are released again before
        the error propagates to the fallback chain — the failed
        candidate must not leave segments pinned until :meth:`close`.
        """
        from .shm import export_graph_payload, release_graph_payload

        exporter = self._ensure_exporter()
        payload = export_graph_payload(exporter, graph, state)
        try:
            return pickle.dumps(("shm", payload, budget))
        except Exception:
            logger.debug("releasing shm payload for unpicklable entry "
                         "before falling back", exc_info=True)
            release_graph_payload(exporter, payload)
            raise

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The resident pool — created (and pre-warmed) at most once."""
        self._check_open()
        if self._pool is None:
            from .runner import _mp_context, _seed_worker

            payload, shipped = self._warm_payload()
            # The seed payload initializes every worker, so it ships
            # workers-many times; metered parent-side as bytes without
            # tasks (it amortizes over the tasks it warms).
            _counters.COUNTERS.record_payload(len(payload) * self.workers)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_mp_context(),
                initializer=_seed_worker,
                initargs=(payload,),
            )
            self.pool_starts += 1
            self._shipped = shipped
        return self._pool

    def _require_pool_dataset(self, dataset: str) -> None:
        """Fail fast when a pool worker could not obtain *dataset*.

        Workers hold the graphs shipped at pool creation and can
        self-load registry datasets; anything else — a custom graph
        added, or a shipped/known name re-bound, after the pool started —
        would make the workers mine a different graph than the parent
        holds, so both cases raise here instead of diverging silently.
        """
        if dataset in self._rebound_after_pool:
            raise RuntimeError(
                f"graph {dataset!r} was re-bound after the resident pool "
                f"started; the workers never received the new graph and "
                f"would serve stale data — use a new name (or a new "
                f"session) for the re-bound graph"
            )
        if dataset in self._shipped or dataset in DATASETS:
            return
        raise RuntimeError(
            f"dataset {dataset!r} was not shipped to the resident pool "
            f"(added after the pool started, or its graph could not be "
            f"pickled into the warm payload); add picklable custom "
            f"graphs before the first parallel request"
        )

    # -- query execution ----------------------------------------------------

    def query(self, kernel: str, *, k: int = 4, eps: float = 0.1) -> Query:
        """Start a fluent :class:`Query` for one suite kernel."""
        self._check_open()
        return Query(self, kernel, k=k, eps=eps)

    def _result_from_cell(self, query: Query, cell: Dict[str, object],
                          wall: float, delta: Snapshot,
                          hits: int, misses: int) -> QueryResult:
        return QueryResult(
            kernel=cell["kernel"],
            dataset=query._dataset,
            backend=cell["set_class"],
            resolved_class=cell["resolved_class"],
            ordering=cell["ordering"],
            value=cell["value"],
            exact=cell["exact"],
            seconds=cell["seconds"],
            wall_seconds=wall,
            counters=delta,
            cache_hits=hits,
            cache_misses=misses,
            cell=cell,
        )

    def _run_query(self, query: Query) -> QueryResult:
        """Answer one query in-process against the shared session cache."""
        self._check_open()
        plan = query.plan()
        dataset = query._dataset
        graph = self.load(dataset)
        backend_name, kernel_name, ordering = query.cell_spec()
        set_cls = self._backend_for(plan, dataset, backend_name, graph)
        hits0, misses0 = self.cache.hits, self.cache.misses
        before = _counters.snapshot()
        t0 = time.perf_counter()
        cell = run_cell(
            graph, set_cls, SUITE_KERNELS[kernel_name], backend_name,
            ordering, plan, self.cache,
        )
        wall = time.perf_counter() - t0
        delta = before.delta(_counters.snapshot())
        self.queries_run += 1
        return self._result_from_cell(
            query, cell, wall, delta,
            self.cache.hits - hits0, self.cache.misses - misses0,
        )

    def _run_batch(self, queries: Sequence[Query]) -> List[QueryResult]:
        """Answer a batch — through the resident pool when workers > 1.

        Variants sharing a ``(dataset, backend, ordering)``
        materialization (under identical kernel parameters and budgets)
        are batched into **one** pool shard: the worker runs them
        back-to-back against the same warm cache entry, and the batch
        ships one task payload instead of one per variant.  Per-variant
        counters come from the shard's telescoping per-cell deltas, so
        they still sum exactly to what the shard cost; the shard's wall
        clock is attributed to each of its variants (they completed
        together).
        """
        self._check_open()
        if self.workers <= 1 or not queries:
            return [self._run_query(q) for q in queries]
        from .runner import _submit_shard, accumulate_cache_stats

        pool = self._ensure_pool()
        # Validate the whole batch before the first submission: a bad
        # variant must fail the batch up front, not after earlier
        # variants' shards (and their counter deltas) are already in
        # flight and would be silently abandoned.
        compiled = []
        for query in queries:
            plan = query.plan()
            self._require_pool_dataset(query._dataset)
            compiled.append((query, plan))
        groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for index, (query, plan) in enumerate(compiled):
            backend, _, ordering = query.cell_spec()
            key = (query._dataset, backend, ordering,
                   _plan_shard_key(plan))
            groups.setdefault(key, []).append(index)
        t0 = time.perf_counter()
        submitted = []
        done_at: Dict[int, float] = {}
        for group_index, members in enumerate(groups.values()):
            _, plan = compiled[members[0]]
            shard = [(i, compiled[i][0].cell_spec()) for i in members]
            future = _submit_shard(
                pool, plan, compiled[members[0]][0]._dataset, shard
            )
            # Stamp completion as it happens — collecting futures in
            # submission order below would otherwise charge early
            # finishers with their predecessors' wait time.
            future.add_done_callback(
                lambda _f, g=group_index: done_at.setdefault(
                    g, time.perf_counter()
                )
            )
            submitted.append((future, members))
        results: List[Optional[QueryResult]] = [None] * len(compiled)
        deltas: List[Snapshot] = []
        for group_index, (future, members) in enumerate(submitted):
            shard = future.result()
            wall = done_at.get(group_index, time.perf_counter()) - t0
            deltas.append(shard["counters"])
            accumulate_cache_stats(
                self._worker_cache_stats, shard["pid"],
                shard["cache_stats"],
            )
            for (index, cell), cell_delta in zip(
                shard["cells"], shard["cell_counters"]
            ):
                results[index] = self._result_from_cell(
                    compiled[index][0], cell, wall, cell_delta, 0, 0,
                )
        # One associative merge, folded into this process's global block —
        # the session totals come out identical to a sequential run of the
        # same batch, whatever the completion order.
        _counters.COUNTERS.absorb(merge_snapshots(deltas))
        self.queries_run += len(queries)
        return results

    # -- plan execution (the suite path) ------------------------------------

    def run_plan(self, plan: ExperimentPlan,
                 verbose: Optional[bool] = None, *,
                 max_workers: Optional[int] = None,
                 cache_budget_bytes: Optional[int] = None,
                 ) -> List[Dict[str, object]]:
        """Execute a declarative :class:`ExperimentPlan` through the session.

        The session's execution knobs (``workers``/``schedule``/
        ``cache_budget_bytes``) govern — the plan's own are replaced, so
        one session applies a single execution policy to every plan it
        serves.  Sequential plans run against the shared session cache;
        parallel plans run on the resident pool.  Either way the
        artifact's ``materialization`` block reports only *this run's*
        cache deltas (gauges instantaneous), so a warm re-run shows hits
        without inheriting earlier runs' counts; payloads are
        cell-by-cell identical to the historical ``run_suite`` ones up to
        timing and materialization stats.

        ``max_workers`` clamps *this plan's* logical worker count to at
        most the session's (never below 1) without resizing the resident
        pool — a plan clamped to 1 runs sequentially in-process; a plan
        clamped to ``k < workers`` shards as if the pool had ``k``
        workers.  ``cache_budget_bytes`` likewise overrides the byte
        budget the plan carries into pool workers.  Both exist so a
        multi-tenant front end (``repro serve --http``) can thread
        per-tenant worker-share and cache quotas into individual plans.
        """
        self._check_open()
        verbose = self.verbose if verbose is None else verbose
        plan.validate_execution()
        workers = self.workers
        if max_workers is not None:
            workers = max(1, min(workers, int(max_workers)))
        plan = replace(
            plan, workers=workers, schedule=self.schedule,
            cache_budget_bytes=(
                self.cache_budget_bytes if cache_budget_bytes is None
                else max(0, int(cache_budget_bytes))
            ),
            transport=self.transport,
        )
        if workers > 1:
            from .runner import run_plan_on_pool

            if self._pool is None:
                # Pull the plan's registry datasets into the store before
                # the one-and-only pool start, so the graphs ride the
                # session's transport (shared memory under "shm") instead
                # of every worker re-loading them on first touch.
                for dataset in plan.datasets:
                    if dataset in DATASETS:
                        self.load(dataset)
            pool = self._ensure_pool()
            for dataset in plan.datasets:
                self._require_pool_dataset(dataset)
            payloads = [
                run_plan_on_pool(pool, plan, dataset, verbose=verbose,
                                 worker_stats=self._worker_cache_stats)
                for dataset in plan.datasets
            ]
            self.plans_run += 1
            return payloads

        payloads: List[Dict[str, object]] = []
        for dataset in plan.datasets:
            graph = self.load(dataset)
            stats_baseline = self.cache.stats()
            cells: List[Dict[str, object]] = []
            t0 = time.perf_counter()
            for backend_name, kernel_name, ordering in expand_cells(plan):
                set_cls = self._backend_for(plan, dataset, backend_name,
                                            graph)
                cell = run_cell(
                    graph, set_cls, SUITE_KERNELS[kernel_name],
                    backend_name, ordering, plan, self.cache,
                )
                cells.append(cell)
                if verbose:
                    print(
                        f"  {dataset} {cell['kernel']:<9} "
                        f"{cell['ordering']:<4} {backend_name:<10} "
                        f"value={cell['value']} "
                        f"({1000 * cell['seconds']:.1f} ms)"
                    )
            measured = time.perf_counter() - t0
            payloads.append(dataset_payload(
                plan, dataset, graph.num_nodes, graph.num_edges, cells,
                self.cache.stats_since(stats_baseline), measured,
                workers=1, schedule="sequential",
            ))
        self.plans_run += 1
        return payloads

    # -- observability ------------------------------------------------------

    @property
    def counters(self) -> Snapshot:
        """Merged set-algebra counters across everything this session ran.

        Pool workers' deltas are folded into the parent's global block as
        batches/plans complete, so this covers them too.
        """
        return self._baseline.delta(_counters.snapshot())

    def stats(self) -> Dict[str, object]:
        """Session-level stats: cache, counters, pool, and traffic."""
        counters = self.counters
        worker_stats = {
            field_: sum(s[field_] for s in self._worker_cache_stats.values())
            for field_ in ("hits", "misses", "evictions")
        } if self._worker_cache_stats else None
        return {
            "cache": self.cache.stats(),
            "worker_caches": worker_stats,
            "counters": {
                "set_ops": counters.set_ops,
                "point_ops": counters.point_ops,
                "sketch_builds": counters.sketch_builds,
                "memory_traffic": counters.memory_traffic,
                "payload_bytes_shipped": counters.payload_bytes_shipped,
                "payload_tasks": counters.payload_tasks,
            },
            "pool": {
                "workers": self.workers,
                "schedule": self.schedule,
                "transport": self.transport,
                "starts": self.pool_starts,
                "resident": self._pool is not None,
                "shm_bytes": (
                    self._exporter.total_bytes() if self._exporter else 0
                ),
                "shm_suppressed": _counters.COUNTERS.shm_suppressed,
            },
            "graphs": self.graphs(),
            "queries": self.queries_run,
            "plans": self.plans_run,
            "closed": self._closed,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"MiningSession(workers={self.workers}, "
            f"schedule={self.schedule!r}, graphs={len(self._graphs)}, "
            f"queries={self.queries_run}, {state})"
        )

"""Zero-copy shared-memory transport for the parallel runtime.

The resident worker pool historically shipped its pre-warm state —
pickled :class:`~repro.graph.csr.CSRGraph` arrays and materialized
:class:`~repro.graph.set_graph.SetGraph` neighborhoods — *by value* to
every worker, so a ``workers=8`` pool copied the same megabytes eight
times before the first task ran.  This module moves the arrays into
named :mod:`multiprocessing.shared_memory` segments instead: the parent
exports each array once, workers map the segments and reconstruct
**read-only zero-copy views** via ``np.ndarray(buffer=...)``.  What
crosses the process boundary is an :class:`ArrayRef` descriptor — a
name, a dtype, and a shape — a few dozen bytes regardless of the array
size (metered by ``Counters.payload_bytes_shipped``).

Ownership and lifetime
----------------------
The parent-side :class:`SegmentExporter` owns every segment it creates:

* exports are **refcounted** — exporting the same array again reuses the
  segment and bumps its count; :meth:`SegmentExporter.release` drops a
  count and unlinks at zero;
* :meth:`SegmentExporter.close` (called by ``MiningSession.close()``)
  force-unlinks everything and is idempotent;
* a :func:`weakref.finalize` backstop unlinks at garbage collection or
  interpreter exit if ``close()`` was never reached, and the stdlib
  resource tracker covers hard crashes (SIGKILL) — so crashed runs do
  not leak ``/dev/shm`` segments.

Workers attach segments lazily through :func:`map_array` and keep the
handles alive for the worker's lifetime (the views alias the mapping).
Attaching never adopts unlink responsibility: on Python 3.13+ that is
``track=False``; on earlier versions the attach does register with the
resource tracker, but the pool's fork-start workers *share* the
parent's tracker process, whose per-name cache is a set — so the
duplicate registration is a no-op and the parent's unlink retires the
single entry.  (Unregistering in the worker instead would cancel the
parent's crash backstop and make the unlink-time unregister raise
inside the tracker.)
"""

from __future__ import annotations

import logging
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import counters as _counters

__all__ = [
    "ArrayRef",
    "SegmentExporter",
    "map_array",
    "export_graph_payload",
    "attach_graph_payload",
    "release_graph_payload",
]

logger = logging.getLogger(__name__)


def _suppress(operation: str, name: str, exc: Exception) -> None:
    """Swallow one cleanup failure *loudly enough to diagnose later*.

    Teardown paths must not raise (close is idempotent and often runs
    from finalizers), but silently dropping the error leaves leaked-
    segment investigations blind.  Every suppression is logged at DEBUG
    with the traceback and bumps ``Counters.shm_suppressed`` so the
    session stats reveal that *something* was swallowed even when DEBUG
    logging was off at the time.
    """
    _counters.COUNTERS.record_suppressed()
    logger.debug("suppressed shm %s failure for segment %r: %s",
                 operation, name, exc, exc_info=True)


@dataclass(frozen=True)
class ArrayRef:
    """Picklable descriptor of one exported array.

    ``name`` is the shared-memory segment name (empty for a zero-length
    array, which needs no segment); ``dtype``/``shape`` reconstruct the
    view.  This is the *entire* cross-process payload for an array.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting unlink responsibility.

    Python 3.13+ has ``track=False``.  Earlier versions register every
    attach with the resource tracker, but that is benign here: the
    fork-start workers (and in-process test attaches) share the
    *parent's* tracker, whose cache is a set keyed by segment name, so
    the attach-time registration merely duplicates the exporter's own.
    Unregistering would be actively wrong — it cancels the parent's
    crash backstop and leaves the parent's unlink-time unregister
    pointing at a name the tracker no longer holds.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        return shared_memory.SharedMemory(name=name)


def _unlink_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    """Close + unlink every segment in *segments*; tolerate repeats."""
    for name, segment in list(segments.items()):
        try:
            segment.close()
        except Exception as exc:
            _suppress("close", name, exc)
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # already unlinked (repeat close) — the expected case
        except Exception as exc:
            _suppress("unlink", name, exc)
    segments.clear()


class SegmentExporter:
    """Parent-side owner of the shared-memory segments of one session.

    ``export_array`` copies an array into a fresh named segment exactly
    once per array object (repeat exports are refcounted reuses) and
    returns the :class:`ArrayRef` workers rebuild it from.  The exporter
    pins the source arrays it has seen so a recycled ``id()`` can never
    alias a stale dedupe entry.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._refs: Dict[str, int] = {}
        self._by_source: Dict[int, Tuple[object, ArrayRef]] = {}
        self._closed = False
        # The GC/atexit backstop: unlink whatever close() never reached.
        # Bound to the dict, not self, so the finalizer cannot keep the
        # exporter alive.
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )

    def export_array(self, array: np.ndarray) -> ArrayRef:
        """Export *array* into a segment; return its descriptor."""
        if self._closed:
            raise RuntimeError("SegmentExporter is closed")
        array = np.ascontiguousarray(array)
        known = self._by_source.get(id(array))
        if known is not None and known[0] is array:
            self._refs[known[1].name] += 1
            return known[1]
        if array.nbytes == 0:
            ref = ArrayRef("", str(array.dtype), tuple(array.shape))
            return ref
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        staged = np.ndarray(array.shape, dtype=array.dtype,
                            buffer=segment.buf)
        staged[...] = array
        ref = ArrayRef(segment.name, str(array.dtype), tuple(array.shape))
        self._segments[segment.name] = segment
        self._refs[segment.name] = 1
        self._by_source[id(array)] = (array, ref)
        return ref

    def release(self, ref: ArrayRef) -> None:
        """Drop one reference to *ref*; unlink the segment at zero."""
        if not ref.name or ref.name not in self._refs:
            return
        self._refs[ref.name] -= 1
        if self._refs[ref.name] > 0:
            return
        del self._refs[ref.name]
        segment = self._segments.pop(ref.name)
        _unlink_segments({ref.name: segment})
        for source_id, (_, known) in list(self._by_source.items()):
            if known.name == ref.name:
                del self._by_source[source_id]

    def segment_names(self) -> List[str]:
        """Names of the live segments (for leak checks)."""
        return sorted(self._segments)

    def total_bytes(self) -> int:
        """Bytes resident in live segments (the zero-copy pool size)."""
        return sum(segment.size for segment in self._segments.values())

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every live segment.  Idempotent."""
        _unlink_segments(self._segments)
        self._refs.clear()
        self._by_source.clear()
        self._closed = True


# ---------------------------------------------------------------------------
# Worker (consumer) side.  Attached segments are cached per process and
# stay alive for the process lifetime — the numpy views handed out alias
# their mappings, so closing a handle would invalidate live arrays.
# ---------------------------------------------------------------------------

_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def map_array(ref: ArrayRef) -> np.ndarray:
    """Map an :class:`ArrayRef` to a read-only zero-copy view."""
    if not ref.name:
        empty = np.empty(ref.shape, dtype=ref.dtype)
        empty.flags.writeable = False
        return empty
    segment = _ATTACHED.get(ref.name)
    if segment is None:
        segment = _attach_segment(ref.name)
        _ATTACHED[ref.name] = segment
    view = np.ndarray(ref.shape, dtype=ref.dtype, buffer=segment.buf)
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Close every attached handle (tests; workers just exit instead)."""
    for name, segment in _ATTACHED.items():
        try:
            segment.close()
        except Exception as exc:
            _suppress("detach", name, exc)
    _ATTACHED.clear()


# ---------------------------------------------------------------------------
# Graph-payload conversion: MaterializationCache.export_graph_state in,
# descriptor payload out (and back).  The CSR arrays and every exact
# SetGraph ride shared memory; whatever cannot be flattened to arrays
# stays inline (pickled with the descriptor payload, as before).
# ---------------------------------------------------------------------------


def export_graph_payload(exporter: SegmentExporter, graph,
                         state: Optional[dict]) -> dict:
    """Convert a graph + its exported cache state into shm descriptors.

    *graph* is a :class:`~repro.graph.csr.CSRGraph`; *state* is an
    :meth:`~repro.graph.set_graph.MaterializationCache.export_graph_state`
    payload (or ``None`` for graph-only shipping).  CSR offsets/adjacency
    always ride shared memory.  ``SetGraph`` entries whose backend is
    exact are flattened to ``(offsets, values)`` member arrays and ride
    shared memory too — workers rebuild neighborhoods as views into the
    shared values array (zero-copy for sorted-array backends).  Sketch
    entries stay inline: their members are not enumerable, and their
    budget-derived classes were already excluded by the export.
    """
    from ..graph.set_graph import flatten_set_graph

    payload = {
        "csr": {
            "offsets": exporter.export_array(graph.offsets),
            "adjacency": exporter.export_array(graph.adjacency),
            "directed": bool(graph.directed),
        },
        "orderings": dict(state["orderings"]) if state else {},
        "graphs": {},
    }
    for subkey, sg in (state["graphs"] if state else {}).items():
        if sg.set_cls.IS_EXACT:
            offsets, values = flatten_set_graph(sg)
            payload["graphs"][subkey] = (
                "shm", sg.set_cls, bool(sg.directed),
                exporter.export_array(offsets),
                exporter.export_array(values),
            )
        else:
            payload["graphs"][subkey] = ("inline", sg)
    return payload


def attach_graph_payload(payload: dict):
    """Rebuild ``(CSRGraph, cache_state)`` from an exported payload.

    The returned state dict is shaped for
    :meth:`~repro.graph.set_graph.MaterializationCache.seed_graph_state`.
    Mapped arrays are read-only views into the shared segments — the
    rebuilt CSR graph and sorted-array neighborhoods copy nothing.
    """
    from ..graph.csr import CSRGraph
    from ..graph.set_graph import unflatten_set_graph

    csr = payload["csr"]
    graph = CSRGraph(
        map_array(csr["offsets"]), map_array(csr["adjacency"]),
        directed=csr["directed"],
    )
    graphs = {}
    for subkey, entry in payload["graphs"].items():
        if entry[0] == "shm":
            _, set_cls, directed, offsets_ref, values_ref = entry
            graphs[subkey] = unflatten_set_graph(
                map_array(offsets_ref), map_array(values_ref),
                set_cls, directed=directed,
            )
        else:
            graphs[subkey] = entry[1]
    return graph, {"orderings": payload["orderings"], "graphs": graphs}


def release_graph_payload(exporter: SegmentExporter, payload: dict) -> None:
    """Drop the exporter references an :func:`export_graph_payload` took.

    The inverse bookkeeping of one export call: every :class:`ArrayRef`
    the payload carries — the CSR pair plus each shm-shipped
    ``SetGraph``'s member arrays — has one reference released, so a
    payload that was exported but then never shipped (e.g. the warm-
    payload builder's pickling failed after the export succeeded) frees
    its segments *now* instead of squatting in ``/dev/shm`` until the
    session closes.  Segments still referenced by other payloads (the
    exporter dedupes repeat exports) survive.
    """
    for ref in (payload["csr"]["offsets"], payload["csr"]["adjacency"]):
        exporter.release(ref)
    for entry in payload["graphs"].values():
        if entry[0] == "shm":
            exporter.release(entry[3])
            exporter.release(entry[4])

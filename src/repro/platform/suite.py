"""Declarative experiment suite: dataset × ordering × backend × kernel.

This is the driver the set-centric kernel unification exists for.  All
mining kernels speak the :class:`~repro.core.interface.SetBase` algebra
over materialized :class:`~repro.graph.set_graph.SetGraph` neighborhoods,
so one :class:`ExperimentPlan` can sweep *every registered kernel under
every registered set backend* — SISA-style: a small set-centric
instruction set below, a declarative workload description above.

Building blocks
---------------
``SUITE_KERNELS``
    The kernel registry.  Each :class:`SuiteKernel` wraps one mining
    kernel behind the uniform signature ``runner(graph, set_cls,
    ordering, plan, cache) -> int`` and declares whether the kernel
    consumes the vertex ordering.  User kernels join the sweep via
    :func:`register_suite_kernel` — exactly like set representations join
    via :func:`repro.core.registry.register_set_class`.

``ExperimentPlan``
    The declarative sweep description: datasets, kernels, orderings, set
    backends, clique size, sketch budgets, repeats.  Budget flags carry
    the same semantics as the shared CLI parser
    (``--bloom-bits``/``--kmv-k``/``--bloom-shared-bits``/``--bloom-fpr``)
    and are resolved per graph through
    :meth:`repro.platform.cli.Args.resolve_set_class_for_graph`.

``run_suite``
    Executes the plan.  Per dataset it owns one
    :class:`~repro.graph.set_graph.MaterializationCache`, so each
    (graph, backend, ordering) is converted exactly once no matter how
    many kernels and repeats consume it; per cell it meters wall time and
    the set-algebra software counters
    (:mod:`repro.core.counters`).  Exact backends are cross-checked
    against the reference backend — any disagreement fails the run.

Artifact schema (``results/suite_<dataset>.json``)
--------------------------------------------------
One JSON object per dataset::

    {
      "schema": "gms-suite/v1",
      "dataset": str,          # registry name
      "num_nodes": int, "num_edges": int,
      "plan": {...},           # the ExperimentPlan, as parsed
      "reference_backend": "sorted",
      "materialization": {hits, misses, orderings, set_graphs, oriented},
      "cells": [
        {
          "kernel": str,       # SUITE_KERNELS name
          "ordering": str,     # ordering name, or "-" if kernel ignores it
          "set_class": str,    # registry name from the plan
          "resolved_class": str,  # budget-resolved class actually run
          "exact": bool,       # cls.IS_EXACT
          "value": int,        # kernel output (count)
          "reference": int,    # reference-backend value, same cell
          "rel_error": float,  # |value - reference| / max(reference, 1)
          "seconds": float,    # best-of-repeats *warm* kernel wall time
                               # (an untimed warm-up pass populates the
                               # shared cache first; materialization cost
                               # shows up in "materialization", not here)
          "set_ops": int, "point_ops": int,     # software counters
          "memory_traffic": int, "sketch_builds": int,
        }, ...
      ]
    }

``python -m repro aggregate`` consumes these artifacts (together with the
budget-sweep ones) and folds them into cross-dataset per-backend
speed-vs-accuracy summaries.

Run ``python -m repro suite --smoke`` for the tiny CI matrix, or
``python -m repro suite --datasets sc-ht-mini citations-mini --set-classes
sorted bitset bloom kmv`` for a custom sweep; see
``examples/suite_run.py`` for the library-level API.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..core import counters as _counters
from ..core.bit_set import BitSet
from ..core.interface import SetBase
from ..core.registry import set_class_names
from ..graph import load_dataset
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from ..mining.bronkerbosch import bron_kerbosch
from ..mining.kclique import kclique_count
from ..mining.kcliquestar import kclique_star_count
from ..mining.triangles import (
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)
from ..preprocess.ordering import ORDERINGS
from .bench import print_table, write_artifact
from .cli import Args, add_sketch_budget_args

__all__ = [
    "SCHEMA",
    "SuiteKernel",
    "SUITE_KERNELS",
    "register_suite_kernel",
    "ExperimentPlan",
    "run_suite",
    "main",
]

#: Artifact schema identifier, bumped on breaking layout changes.
SCHEMA = "gms-suite/v1"

#: Reference backend for cross-checking and relative error (registry name).
REFERENCE_BACKEND = "sorted"


@dataclass(frozen=True)
class SuiteKernel:
    """One kernel of the suite sweep.

    ``runner(graph, set_cls, ordering, plan, cache)`` returns the kernel's
    count under the given set representation.  ``uses_ordering=False``
    kernels are run once per backend with the ordering column recorded as
    ``"-"`` (re-running them per ordering would duplicate identical
    cells).
    """

    name: str
    runner: Callable[
        [CSRGraph, Type[SetBase], str, "ExperimentPlan", MaterializationCache],
        int,
    ]
    description: str
    uses_ordering: bool = True


def _run_tc(graph, set_cls, ordering, plan, cache):
    return triangle_count_node_iterator(graph, set_cls=set_cls, cache=cache)


def _run_tc_merge(graph, set_cls, ordering, plan, cache):
    return triangle_count_rank_merge(graph, set_cls=set_cls, cache=cache)


def _run_4clique(graph, set_cls, ordering, plan, cache):
    return kclique_count(graph, 4, ordering, "edge", eps=plan.eps,
                         set_cls=set_cls, cache=cache).count


def _run_kclique(graph, set_cls, ordering, plan, cache):
    return kclique_count(graph, plan.k, ordering, "node", eps=plan.eps,
                         set_cls=set_cls, cache=cache).count


def _run_kstar(graph, set_cls, ordering, plan, cache):
    return kclique_star_count(graph, 3, set_cls=set_cls, cache=cache)


def _run_bk(graph, set_cls, ordering, plan, cache):
    # Approximate backends reach Bron–Kerbosch through the pivot scan
    # (sketch-pivot BK): P/X stay exact, the estimated counts only feed
    # the pivot argmax, and the enumerated clique set is provably
    # identical — so every backend, exact or sketched, lands on the same
    # maximal-clique count here.
    if set_cls.IS_EXACT:
        return bron_kerbosch(graph, ordering, set_cls, eps=plan.eps,
                             cache=cache).num_cliques
    return bron_kerbosch(graph, ordering, BitSet, eps=plan.eps,
                         pivot_set_cls=set_cls, cache=cache).num_cliques


#: The registered suite kernels, in registration order.
SUITE_KERNELS: Dict[str, SuiteKernel] = {}


def register_suite_kernel(
    name: str,
    runner: Callable[..., int],
    description: str,
    uses_ordering: bool = True,
) -> None:
    """Register a kernel for the suite sweep (the kernel-side ``5+`` hook)."""
    SUITE_KERNELS[name] = SuiteKernel(name, runner, description, uses_ordering)


register_suite_kernel(
    "tc", _run_tc,
    "triangle count, node-iterator scheme (Figure 2's tc)",
    uses_ordering=False,
)
register_suite_kernel(
    "tc-merge", _run_tc_merge,
    "triangle count, rank-merge (forward) scheme over the degree order",
    uses_ordering=False,
)
register_suite_kernel(
    "4clique", _run_4clique,
    "4-clique count, edge-parallel kClist over the oriented SetGraph",
)
register_suite_kernel(
    "kclique", _run_kclique,
    "k-clique count (plan.k), node-parallel kClist",
)
register_suite_kernel(
    "kstar", _run_kstar,
    "3-clique-star count via set intersections and differences",
    uses_ordering=False,
)
register_suite_kernel(
    "bk", _run_bk,
    "maximal clique count; approximate backends route to the pivot scan",
)


@dataclass
class ExperimentPlan:
    """Declarative sweep description: what to run, under what budgets.

    Empty ``kernels``/``set_classes``/``orderings`` mean *everything
    registered* at run time, so plans stay valid as kernels and backends
    are added.  See the module docstring for the emitted artifact schema.
    """

    datasets: Tuple[str, ...] = ("sc-ht-mini",)
    kernels: Tuple[str, ...] = ()
    set_classes: Tuple[str, ...] = ()
    orderings: Tuple[str, ...] = ("DGR", "ADG")
    k: int = 4
    eps: float = 0.1
    repeats: int = 1
    bloom_bits: int = 0
    kmv_k: int = 0
    bloom_shared_bits: int = 0
    bloom_fpr: float = 0.0

    def resolved_kernels(self) -> List[SuiteKernel]:
        names = self.kernels or tuple(SUITE_KERNELS)
        unknown = [n for n in names if n not in SUITE_KERNELS]
        if unknown:
            raise KeyError(
                f"unknown suite kernels {unknown}; known: {list(SUITE_KERNELS)}"
            )
        return [SUITE_KERNELS[n] for n in names]

    def resolved_set_classes(self) -> List[str]:
        names = [n for n in (self.set_classes or set_class_names())
                 if n != REFERENCE_BACKEND]
        # The reference backend always runs, and runs *first* — it anchors
        # every cell's rel_error and the exact-backend cross-check.
        return [REFERENCE_BACKEND] + names

    def resolved_orderings(self) -> List[str]:
        names = self.orderings or tuple(sorted(ORDERINGS))
        unknown = [n for n in names if n not in ORDERINGS]
        if unknown:
            raise KeyError(
                f"unknown orderings {unknown}; known: {sorted(ORDERINGS)}"
            )
        return list(names)

    @classmethod
    def smoke(cls) -> "ExperimentPlan":
        """The tiny CI matrix: 2 backends × 2 orderings × 3 kernels."""
        return cls(
            datasets=("sc-ht-mini",),
            kernels=("tc", "4clique", "bk"),
            set_classes=("bitset", "bloom"),
            orderings=("DGR", "ADG"),
            repeats=1,
        )


def _cell_orderings(kernel: SuiteKernel, orderings: Sequence[str]) -> List[str]:
    return list(orderings) if kernel.uses_ordering else ["-"]


def run_suite(
    plan: ExperimentPlan, verbose: bool = False
) -> List[Dict[str, object]]:
    """Execute *plan*; return one artifact payload per dataset.

    Every cell runs one untimed warm-up pass and is then timed
    best-of-``plan.repeats`` and metered with the set-algebra software
    counters — so cells measure the kernel itself, on comparable (warm)
    footing, rather than whichever cell happened to trigger a one-time
    materialization.  Per dataset, one shared
    :class:`~repro.graph.set_graph.MaterializationCache` serves all cells,
    so each (backend, ordering) materialization happens exactly once; the
    cache hit/miss stats land in the artifact.
    """
    payloads: List[Dict[str, object]] = []
    kernels = plan.resolved_kernels()
    backend_names = plan.resolved_set_classes()
    orderings = plan.resolved_orderings()

    for dataset in plan.datasets:
        graph = load_dataset(dataset)
        cache = MaterializationCache()
        reference: Dict[Tuple[str, str], int] = {}
        cells: List[Dict[str, object]] = []

        for backend_name in backend_names:
            args = Args(
                dataset=dataset, set_class=backend_name,
                ordering=orderings[0] if orderings else "DGR", eps=plan.eps,
                k=plan.k, repeats=plan.repeats,
                bloom_bits=plan.bloom_bits, kmv_k=plan.kmv_k,
                bloom_shared_bits=plan.bloom_shared_bits,
                bloom_fpr=plan.bloom_fpr,
            )
            set_cls = args.resolve_set_class_for_graph(graph)
            for kernel in kernels:
                for ordering in _cell_orderings(kernel, orderings):
                    # Warm-up pass (untimed): populates the shared cache so
                    # every cell's measured runs meter the *kernel*, not
                    # whichever cell happened to pay the one-time
                    # materialization — without it, the reference backend
                    # (which runs first) would absorb the ordering cost
                    # and every later backend's speedup would be inflated.
                    kernel.runner(graph, set_cls, ordering, plan, cache)
                    best = float("inf")
                    value = None
                    delta = None
                    for _ in range(max(1, plan.repeats)):
                        before = _counters.snapshot()
                        t0 = time.perf_counter()
                        value = kernel.runner(
                            graph, set_cls, ordering, plan, cache
                        )
                        elapsed = time.perf_counter() - t0
                        delta = before.delta(_counters.snapshot())
                        best = min(best, elapsed)
                    key = (kernel.name, ordering)
                    if backend_name == REFERENCE_BACKEND:
                        reference[key] = value
                    ref = reference.get(key, value)
                    cells.append({
                        "kernel": kernel.name,
                        "ordering": ordering,
                        "set_class": backend_name,
                        "resolved_class": set_cls.__name__,
                        "exact": bool(set_cls.IS_EXACT),
                        "value": value,
                        "reference": ref,
                        "rel_error": abs(value - ref) / max(ref, 1),
                        "seconds": best,
                        "set_ops": delta.set_ops,
                        "point_ops": delta.point_ops,
                        "memory_traffic": delta.memory_traffic,
                        "sketch_builds": delta.sketch_builds,
                    })
                    if verbose:
                        print(
                            f"  {dataset} {kernel.name:<9} {ordering:<4} "
                            f"{backend_name:<10} value={value} "
                            f"({1000 * best:.1f} ms)"
                        )

        payloads.append({
            "schema": SCHEMA,
            "dataset": dataset,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "plan": asdict(plan),
            "reference_backend": REFERENCE_BACKEND,
            "materialization": cache.stats(),
            "cells": cells,
        })
    return payloads


def _print_payload(payload: Dict[str, object]) -> None:
    rows = [
        [
            c["kernel"],
            c["ordering"],
            c["set_class"],
            "yes" if c["exact"] else "no",
            f"{c['value']:,}",
            f"{100 * c['rel_error']:.2f}%",
            f"{1000 * c['seconds']:.1f} ms",
            f"{c['set_ops']:,}",
        ]
        for c in payload["cells"]
    ]
    mat = payload["materialization"]
    print_table(
        f"Experiment suite — {payload['dataset']} "
        f"(n={payload['num_nodes']:,}, m={payload['num_edges']:,}; "
        f"materializations {mat['misses']}, cache hits {mat['hits']})",
        ["kernel", "order", "backend", "exact", "value", "rel err",
         "time", "set ops"],
        rows,
    )


def _exact_mismatches(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Exact-backend cells disagreeing with the reference — must be empty."""
    return [
        c for c in payload["cells"] if c["exact"] and c["rel_error"] != 0.0
    ]


def build_suite_parser() -> argparse.ArgumentParser:
    """The ``python -m repro suite`` argument surface."""
    parser = argparse.ArgumentParser(
        prog="repro suite",
        description="declarative kernel × backend × ordering experiment suite",
    )
    parser.add_argument("--datasets", nargs="+", default=["sc-ht-mini"],
                        help="registry dataset names")
    parser.add_argument("--kernels", nargs="+", default=[],
                        choices=sorted(SUITE_KERNELS), metavar="KERNEL",
                        help=f"suite kernels (default: all of "
                             f"{sorted(SUITE_KERNELS)})")
    parser.add_argument("--set-classes", nargs="+", default=[],
                        metavar="BACKEND",
                        help="set backends (default: every registered name)")
    parser.add_argument("--orderings", nargs="+", default=["DGR", "ADG"],
                        choices=sorted(ORDERINGS), metavar="ORDER",
                        help="vertex orderings for ordering-aware kernels")
    parser.add_argument("--k", type=int, default=4, help="clique size k")
    parser.add_argument("--eps", type=float, default=0.1,
                        help="ADG approximation parameter")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per cell (best-of)")
    add_sketch_budget_args(parser)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny CI matrix "
                             "(2 backends × 2 orderings × 3 kernels) and "
                             "ignore the sweep-selection flags")
    parser.add_argument("--verbose", action="store_true")
    return parser


def plan_from_argv(argv: Optional[List[str]] = None) -> ExperimentPlan:
    """Parse ``python -m repro suite`` flags into an :class:`ExperimentPlan`."""
    return _plan_from_namespace(build_suite_parser().parse_args(argv))


def _plan_from_namespace(ns: argparse.Namespace) -> ExperimentPlan:
    if ns.smoke:
        return ExperimentPlan.smoke()
    return ExperimentPlan(
        datasets=tuple(ns.datasets),
        kernels=tuple(ns.kernels),
        set_classes=tuple(ns.set_classes),
        orderings=tuple(ns.orderings),
        k=ns.k,
        eps=ns.eps,
        repeats=ns.repeats,
        bloom_bits=ns.bloom_bits,
        kmv_k=ns.kmv_k,
        bloom_shared_bits=ns.bloom_shared_bits,
        bloom_fpr=ns.bloom_fpr,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro suite``."""
    ns = build_suite_parser().parse_args(argv)
    plan = _plan_from_namespace(ns)
    payloads = run_suite(plan, verbose=ns.verbose)
    bad = 0
    for payload in payloads:
        _print_payload(payload)
        path = write_artifact(f"suite_{payload['dataset']}", payload)
        print(f"artifact: {path}")
        mismatches = _exact_mismatches(payload)
        for cell in mismatches:
            print(
                f"EXACT-BACKEND MISMATCH: {cell['kernel']}/{cell['ordering']}"
                f"/{cell['set_class']} = {cell['value']} "
                f"!= reference {cell['reference']}",
                file=sys.stderr,
            )
        bad += len(mismatches)
    return 1 if bad else 0

"""Declarative experiment suite: dataset × ordering × backend × kernel.

This is the driver the set-centric kernel unification exists for.  All
mining kernels speak the :class:`~repro.core.interface.SetBase` algebra
over materialized :class:`~repro.graph.set_graph.SetGraph` neighborhoods,
so one :class:`ExperimentPlan` can sweep *every registered kernel under
every registered set backend* — SISA-style: a small set-centric
instruction set below, a declarative workload description above.

Building blocks
---------------
``SUITE_KERNELS``
    The kernel registry.  Each :class:`SuiteKernel` wraps one mining
    kernel behind the uniform signature ``runner(graph, set_cls,
    ordering, plan, cache) -> int | (int, extras)`` and declares whether
    the kernel consumes the vertex ordering.  User kernels join the sweep
    via :func:`register_suite_kernel` — exactly like set representations
    join via :func:`repro.core.registry.register_set_class`.

``ExperimentPlan``
    The declarative sweep description: datasets, kernels, orderings, set
    backends, clique size, sketch budgets, repeats — plus the execution
    knobs ``workers`` (process-pool size), ``schedule``
    (``static``/``dynamic`` cell chunking) and ``cache_budget_bytes``
    (per-process :class:`~repro.graph.set_graph.MaterializationCache` LRU
    budget).  Budget flags carry the same semantics as the shared CLI
    parser and are resolved per graph through
    :func:`repro.platform.cli.resolve_set_class_for_graph`.

``run_suite``
    Deprecated shim over the session path: a
    :class:`~repro.platform.session.MiningSession` matching the plan's
    execution knobs runs the plan and closes.  ``plan.workers <= 1`` runs
    cells sequentially in-process against the session cache;
    ``plan.workers > 1`` shards them over the session's process pool
    (:mod:`repro.platform.runner`), producing a cell-by-cell identical
    artifact up to timing.  Per cell the suite meters wall time and the
    set-algebra software counters (:mod:`repro.core.counters`).  Exact
    backends are cross-checked against the reference backend — any
    disagreement fails the run.  Hold a session yourself to keep caches
    and the pool warm across plans.

Artifact schema (``results/suite_<dataset>.json``, ``gms-suite/v2``)
--------------------------------------------------------------------
One JSON object per dataset::

    {
      "schema": "gms-suite/v2",
      "dataset": str,          # registry name
      "num_nodes": int, "num_edges": int,
      "plan": {...},           # the ExperimentPlan, as parsed (includes
                               # workers / schedule / cache_budget_bytes)
      "reference_backend": "sorted",
      "materialization": {hits, misses, evictions, orderings, set_graphs,
                          oriented, resident_bytes, budget_bytes},
                               # THIS run's cache deltas (hit/miss/
                               # insertion/eviction counters since the
                               # run started; entry/byte gauges
                               # instantaneous) — a warm re-run on a
                               # long-lived session/pool shows hits
                               # without inheriting earlier runs' counts.
                               # Parallel runs: summed over the pool's
                               # per-process caches, plus "workers"
      "counters": {set_ops, point_ops, sketch_builds, memory_traffic},
                               # merge of the per-cell deltas — shard-
                               # order independent, so sequential and
                               # parallel runs agree exactly
      "execution": {           # measured vs modeled parallel runtime
        "workers": int,        # pool size (1 = sequential)
        "schedule": str,       # "sequential" | "static" | "dynamic"
        "measured_seconds": float,   # wall clock of the cell loop / pool
        "cells_seconds_total": float,# sum of warm per-cell kernel times
        "measured_speedup": float,   # cells_seconds_total / measured
        "modeled": {           # runtime/scheduler.py makespan model at
                               # this worker count, one entry per policy
          "static"|"dynamic"|"stealing": {
            "makespan_seconds": float,
            "speedup": float,  # cells_seconds_total / makespan
          }, ...
        },
      },
      "cells": [
        {
          "kernel": str,       # SUITE_KERNELS name
          "ordering": str,     # ordering name, or "-" if kernel ignores it
          "set_class": str,    # registry name from the plan
          "resolved_class": str,  # budget-resolved class actually run
          "exact": bool,       # cls.IS_EXACT
          "value": int,        # kernel output (count)
          "seconds": float,    # best-of-repeats *warm* kernel wall time
                               # (an untimed warm-up pass populates the
                               # per-process cache first; materialization
                               # cost shows up in "materialization" and
                               # the execution block, not here)
          "set_ops": int, "point_ops": int,     # software counters
          "memory_traffic": int, "sketch_builds": int,
          "extras": {...},     # per-kernel work profile:
                               #   bk        -> recursive_calls, task_costs
                               #   kclique/4clique -> task_costs
                               #   others    -> {}
                               # task_costs are timings; everything else
                               # in a cell except "seconds" is
                               # deterministic and shard-independent
          "reference": int,    # reference-backend value, same cell
          "rel_error": float,  # |value - reference| / max(reference, 1)
        }, ...
      ]
    }

``python -m repro aggregate`` consumes these artifacts (together with the
budget-sweep ones), folds the ``extras`` work profiles into per-kernel
work-distribution summaries, and tabulates measured-vs-modeled speedups
from the ``execution`` blocks.

Run ``python -m repro suite --smoke`` for the tiny CI matrix,
``python -m repro suite --smoke --workers 2`` for the same matrix through
the process pool (``python -m repro suite-diff`` checks the two artifacts
agree up to timing), or ``python -m repro suite --datasets sc-ht-mini
citations-mini --set-classes sorted bitset bloom kmv`` for a custom
sweep; see ``examples/suite_run.py`` for the library-level API.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..core import counters as _counters
from ..core.bit_set import BitSet
from ..core.interface import SetBase
from ..core.registry import set_class_names
from ..graph.csr import CSRGraph
from ..graph.set_graph import MaterializationCache
from ..mining.bronkerbosch import bron_kerbosch
from ..mining.kclique import kclique_count
from ..mining.kcliquestar import kclique_star_count
from ..mining.triangles import (
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)
from ..preprocess.ordering import ORDERINGS
from ..runtime.scheduler import SCHEDULER_POLICIES, simulate_makespan
from .bench import print_table, write_artifact
from .cli import (
    DISPATCH_MODES,
    RUNNER_SCHEDULES,
    TRANSPORTS,
    add_dispatch_args,
    add_parallel_args,
    add_sketch_budget_args,
    resolve_set_class_for_graph,
)

__all__ = [
    "SCHEMA",
    "SuiteKernel",
    "SUITE_KERNELS",
    "register_suite_kernel",
    "ExperimentPlan",
    "expand_cells",
    "run_cell",
    "finalize_cells",
    "resolve_backend",
    "dataset_payload",
    "run_suite",
    "report_payloads",
    "main",
]

#: Artifact schema identifier, bumped on breaking layout changes.
#: v2 (over v1): per-cell ``extras`` work profiles, payload-level merged
#: ``counters``, and the ``execution`` measured-vs-modeled block.
SCHEMA = "gms-suite/v2"

#: Reference backend for cross-checking and relative error (registry name).
REFERENCE_BACKEND = "sorted"


@dataclass(frozen=True)
class SuiteKernel:
    """One kernel of the suite sweep.

    ``runner(graph, set_cls, ordering, plan, cache)`` returns the kernel's
    count under the given set representation — either a bare ``int`` or an
    ``(int, extras)`` pair, where ``extras`` is a JSON-ready work profile
    (e.g. BK's ``recursive_calls``, kClist's per-task ``task_costs``)
    folded into the cell schema.  ``uses_ordering=False`` kernels are run
    once per backend with the ordering column recorded as ``"-"``
    (re-running them per ordering would duplicate identical cells).
    """

    name: str
    runner: Callable[
        [CSRGraph, Type[SetBase], str, "ExperimentPlan", MaterializationCache],
        object,
    ]
    description: str
    uses_ordering: bool = True


def _run_tc(graph, set_cls, ordering, plan, cache):
    return triangle_count_node_iterator(graph, set_cls=set_cls, cache=cache)


def _run_tc_merge(graph, set_cls, ordering, plan, cache):
    return triangle_count_rank_merge(graph, set_cls=set_cls, cache=cache)


def _run_4clique(graph, set_cls, ordering, plan, cache):
    res = kclique_count(graph, 4, ordering, "edge", eps=plan.eps,
                        set_cls=set_cls, cache=cache)
    return res.count, {"task_costs": list(res.task_costs)}


def _run_kclique(graph, set_cls, ordering, plan, cache):
    res = kclique_count(graph, plan.k, ordering, "node", eps=plan.eps,
                        set_cls=set_cls, cache=cache)
    return res.count, {"task_costs": list(res.task_costs)}


def _run_kstar(graph, set_cls, ordering, plan, cache):
    return kclique_star_count(graph, 3, set_cls=set_cls, cache=cache)


def _run_bk(graph, set_cls, ordering, plan, cache):
    # Approximate backends reach Bron–Kerbosch through the pivot scan
    # (sketch-pivot BK): P/X stay exact, the estimated counts only feed
    # the pivot argmax, and the enumerated clique set is provably
    # identical — so every backend, exact or sketched, lands on the same
    # maximal-clique count here.  recursive_calls *does* depend on the
    # pivot choices, but the sketches are deterministic functions of the
    # set contents, so it is still reproducible run-to-run.
    if set_cls.IS_EXACT:
        res = bron_kerbosch(graph, ordering, set_cls, eps=plan.eps,
                            cache=cache)
    else:
        res = bron_kerbosch(graph, ordering, BitSet, eps=plan.eps,
                            pivot_set_cls=set_cls, cache=cache)
    return res.num_cliques, {
        "recursive_calls": res.recursive_calls,
        "task_costs": list(res.task_costs),
    }


#: The registered suite kernels, in registration order.
SUITE_KERNELS: Dict[str, SuiteKernel] = {}


def register_suite_kernel(
    name: str,
    runner: Callable[..., object],
    description: str,
    uses_ordering: bool = True,
) -> None:
    """Register a kernel for the suite sweep (the kernel-side ``5+`` hook)."""
    SUITE_KERNELS[name] = SuiteKernel(name, runner, description, uses_ordering)


register_suite_kernel(
    "tc", _run_tc,
    "triangle count, node-iterator scheme (Figure 2's tc)",
    uses_ordering=False,
)
register_suite_kernel(
    "tc-merge", _run_tc_merge,
    "triangle count, rank-merge (forward) scheme over the degree order",
    uses_ordering=False,
)
register_suite_kernel(
    "4clique", _run_4clique,
    "4-clique count, edge-parallel kClist over the oriented SetGraph",
)
register_suite_kernel(
    "kclique", _run_kclique,
    "k-clique count (plan.k), node-parallel kClist",
)
register_suite_kernel(
    "kstar", _run_kstar,
    "3-clique-star count via set intersections and differences",
    uses_ordering=False,
)
register_suite_kernel(
    "bk", _run_bk,
    "maximal clique count; approximate backends route to the pivot scan",
)


@dataclass
class ExperimentPlan:
    """Declarative sweep description: what to run, under what budgets.

    Empty ``kernels``/``set_classes``/``orderings`` mean *everything
    registered* at run time, so plans stay valid as kernels and backends
    are added.  ``workers``/``schedule``/``cache_budget_bytes`` select the
    execution mode without changing the sweep (the cell payloads are
    identical up to timing).  See the module docstring for the emitted
    artifact schema.
    """

    datasets: Tuple[str, ...] = ("sc-ht-mini",)
    kernels: Tuple[str, ...] = ()
    set_classes: Tuple[str, ...] = ()
    orderings: Tuple[str, ...] = ("DGR", "ADG")
    k: int = 4
    eps: float = 0.1
    repeats: int = 1
    bloom_bits: int = 0
    kmv_k: int = 0
    bloom_shared_bits: int = 0
    bloom_fpr: float = 0.0
    workers: int = 1
    schedule: str = "dynamic"
    cache_budget_bytes: int = 0
    # Pool pre-warm transport: "pickle" copies graph state into every
    # worker; "shm" ships shared-memory descriptors and workers map the
    # arrays zero-copy (repro.platform.shm).  Cell payloads are identical
    # either way — only the shipping cost changes.
    transport: str = "pickle"
    # Set-op dispatch: "static" keeps each backend's own kernels,
    # "adaptive" swaps exact backends for the density-adaptive dispatcher
    # (the reference backend stays static so the cross-check pins the
    # adaptive results against the untouched path).
    dispatch: str = "static"

    def resolved_kernels(self) -> List[SuiteKernel]:
        names = self.kernels or tuple(SUITE_KERNELS)
        unknown = [n for n in names if n not in SUITE_KERNELS]
        if unknown:
            raise KeyError(
                f"unknown suite kernels {unknown}; known: {list(SUITE_KERNELS)}"
            )
        return [SUITE_KERNELS[n] for n in names]

    def resolved_set_classes(self) -> List[str]:
        names = [n for n in (self.set_classes or set_class_names())
                 if n != REFERENCE_BACKEND]
        # The reference backend always runs, and runs *first* — it anchors
        # every cell's rel_error and the exact-backend cross-check.
        return [REFERENCE_BACKEND] + names

    def resolved_orderings(self) -> List[str]:
        names = self.orderings or tuple(sorted(ORDERINGS))
        unknown = [n for n in names if n not in ORDERINGS]
        if unknown:
            raise KeyError(
                f"unknown orderings {unknown}; known: {sorted(ORDERINGS)}"
            )
        return list(names)

    def budget_key(self) -> Tuple[int, int, int, float, str]:
        """The resolution knobs that backend resolution depends on.

        Memoized backend resolution — in the session and in the pool
        workers — keys on this tuple so a class resolved under one budget
        (or dispatch mode) never serves a request made under another.
        """
        return (self.bloom_bits, self.kmv_k, self.bloom_shared_bits,
                self.bloom_fpr, self.dispatch)

    def validate_execution(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.schedule not in RUNNER_SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                f"known: {RUNNER_SCHEDULES}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"known: {TRANSPORTS}"
            )
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch {self.dispatch!r}; "
                f"known: {DISPATCH_MODES}"
            )

    @classmethod
    def smoke(cls) -> "ExperimentPlan":
        """The tiny CI matrix: 2 backends × 2 orderings × 3 kernels."""
        return cls(
            datasets=("sc-ht-mini",),
            kernels=("tc", "4clique", "bk"),
            set_classes=("bitset", "bloom"),
            orderings=("DGR", "ADG"),
            repeats=1,
        )


def _cell_orderings(kernel: SuiteKernel, orderings: Sequence[str]) -> List[str]:
    return list(orderings) if kernel.uses_ordering else ["-"]


# ---------------------------------------------------------------------------
# Cell-level building blocks — shared verbatim by the sequential loop below
# and the process-pool runner (repro.platform.runner), which is what makes
# the parallel artifact cell-by-cell identical up to timing.
# ---------------------------------------------------------------------------


def expand_cells(plan: ExperimentPlan) -> List[Tuple[str, str, str]]:
    """The plan's cell list, in canonical (sequential) execution order.

    Each spec is ``(backend_name, kernel_name, ordering)``.  The parallel
    runner shards *this* list and re-assembles results by index, so the
    artifact's cell order never depends on the schedule.
    """
    kernels = plan.resolved_kernels()
    orderings = plan.resolved_orderings()
    return [
        (backend_name, kernel.name, ordering)
        for backend_name in plan.resolved_set_classes()
        for kernel in kernels
        for ordering in _cell_orderings(kernel, orderings)
    ]


def resolve_backend(
    plan: ExperimentPlan, dataset: str, backend_name: str, graph: CSRGraph
) -> Type[SetBase]:
    """Resolve one backend name under the plan's budgets and dispatch.

    The reference backend is *pinned static* even under ``--dispatch
    adaptive``: its cells anchor every cross-check, so they must keep
    running on the untouched sorted-array path — that is what makes the
    suite's exact-backend gate a genuine adaptive-vs-static identity
    check rather than adaptive-vs-itself.
    """
    dispatch = ("static" if backend_name == REFERENCE_BACKEND
                else plan.dispatch)
    return resolve_set_class_for_graph(
        graph, backend_name,
        bloom_bits=plan.bloom_bits, kmv_k=plan.kmv_k,
        bloom_shared_bits=plan.bloom_shared_bits,
        bloom_fpr=plan.bloom_fpr, dispatch=dispatch,
    )


def _normalize_result(raw: object) -> Tuple[int, Dict[str, object]]:
    """Accept both runner shapes: bare count, or (count, extras)."""
    if isinstance(raw, tuple):
        value, extras = raw
        return value, dict(extras)
    return raw, {}


def run_cell(
    graph: CSRGraph,
    set_cls: Type[SetBase],
    kernel: SuiteKernel,
    backend_name: str,
    ordering: str,
    plan: ExperimentPlan,
    cache: MaterializationCache,
) -> Dict[str, object]:
    """Execute one cell: warm-up, then metered best-of-``plan.repeats``.

    The warm-up pass (untimed) populates the local cache so the measured
    runs meter the *kernel*, not whichever cell happened to pay the
    one-time materialization — without it, the reference backend (which
    runs first) would absorb the ordering cost and every later backend's
    speedup would be inflated.  ``reference``/``rel_error`` are filled in
    later by :func:`finalize_cells`, once the reference cells are known.
    """
    kernel.runner(graph, set_cls, ordering, plan, cache)
    best = float("inf")
    value = None
    extras: Dict[str, object] = {}
    delta = None
    for _ in range(max(1, plan.repeats)):
        before = _counters.snapshot()
        t0 = time.perf_counter()
        raw = kernel.runner(graph, set_cls, ordering, plan, cache)
        elapsed = time.perf_counter() - t0
        delta = before.delta(_counters.snapshot())
        value, extras = _normalize_result(raw)
        best = min(best, elapsed)
    return {
        "kernel": kernel.name,
        "ordering": ordering,
        "set_class": backend_name,
        "resolved_class": set_cls.__name__,
        "exact": bool(set_cls.IS_EXACT),
        "value": value,
        "seconds": best,
        "set_ops": delta.set_ops,
        "point_ops": delta.point_ops,
        "memory_traffic": delta.memory_traffic,
        "sketch_builds": delta.sketch_builds,
        "extras": extras,
    }


def finalize_cells(cells: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Fill ``reference``/``rel_error`` from the reference-backend cells.

    Runs in the parent after all shards merge, so the cross-check logic is
    one piece of code regardless of which worker computed which cell.
    """
    reference: Dict[Tuple[str, str], int] = {
        (c["kernel"], c["ordering"]): c["value"]
        for c in cells if c["set_class"] == REFERENCE_BACKEND
    }
    for cell in cells:
        ref = reference.get((cell["kernel"], cell["ordering"]), cell["value"])
        cell["reference"] = ref
        cell["rel_error"] = abs(cell["value"] - ref) / max(ref, 1)
    return cells


def _merged_cell_counters(
    cells: Sequence[Dict[str, object]]
) -> Dict[str, int]:
    """Merge the per-cell deltas — shard-order independent by construction
    (integer addition per field, the same property
    :func:`repro.core.counters.merge_snapshots` relies on)."""
    return {
        field: sum(c[field] for c in cells)
        for field in ("set_ops", "point_ops", "sketch_builds",
                      "memory_traffic")
    }


def dataset_payload(
    plan: ExperimentPlan,
    dataset: str,
    num_nodes: int,
    num_edges: int,
    cells: List[Dict[str, object]],
    materialization: Dict[str, object],
    measured_seconds: float,
    workers: int,
    schedule: str,
) -> Dict[str, object]:
    """Assemble one dataset's artifact payload (shared by both runners).

    Takes the graph *dimensions* rather than the graph: the parallel
    runner never loads the dataset in the parent (the workers already
    did), so these two ints travel back with the shard results instead.
    """
    finalize_cells(cells)
    cell_seconds = [c["seconds"] for c in cells]
    total = sum(cell_seconds)
    modeled = {}
    for policy in SCHEDULER_POLICIES:
        makespan = simulate_makespan(cell_seconds, workers, policy)
        modeled[policy] = {
            "makespan_seconds": makespan,
            "speedup": total / makespan if makespan > 0 else 0.0,
        }
    return {
        "schema": SCHEMA,
        "dataset": dataset,
        "num_nodes": num_nodes,
        "num_edges": num_edges,
        "plan": asdict(plan),
        "reference_backend": REFERENCE_BACKEND,
        "materialization": materialization,
        "counters": _merged_cell_counters(cells),
        "execution": {
            "workers": workers,
            "schedule": schedule,
            "measured_seconds": measured_seconds,
            "cells_seconds_total": total,
            "measured_speedup": (
                total / measured_seconds if measured_seconds > 0 else 0.0
            ),
            "modeled": modeled,
        },
        "cells": cells,
    }


def run_suite(
    plan: ExperimentPlan, verbose: bool = False
) -> List[Dict[str, object]]:
    """Deprecated shim: execute *plan* through a throwaway session.

    The canonical path is :meth:`repro.platform.session.MiningSession.
    run_plan`, which keeps the materialization cache and the resident
    worker pool alive *across* plans.  This shim opens a session matching
    the plan's execution knobs, runs the plan, and closes it — the
    artifact payloads are ``suite-diff``-identical to the session path
    (they *are* the session path), it just forfeits all cross-request
    reuse.  Long-lived callers should hold a
    :class:`~repro.platform.session.MiningSession` instead.
    """
    warnings.warn(
        "run_suite is deprecated; use "
        "repro.platform.session.MiningSession.run_plan so caches and the "
        "resident worker pool survive across plans",
        DeprecationWarning,
        stacklevel=2,
    )
    from .session import MiningSession

    with MiningSession.from_plan(plan, verbose=verbose) as session:
        return session.run_plan(plan, verbose=verbose)


def _print_payload(payload: Dict[str, object]) -> None:
    rows = [
        [
            c["kernel"],
            c["ordering"],
            c["set_class"],
            "yes" if c["exact"] else "no",
            f"{c['value']:,}",
            f"{100 * c['rel_error']:.2f}%",
            f"{1000 * c['seconds']:.1f} ms",
            f"{c['set_ops']:,}",
        ]
        for c in payload["cells"]
    ]
    mat = payload["materialization"]
    execution = payload["execution"]
    print_table(
        f"Experiment suite — {payload['dataset']} "
        f"(n={payload['num_nodes']:,}, m={payload['num_edges']:,}; "
        f"materializations {mat['misses']}, cache hits {mat['hits']}; "
        f"{execution['schedule']} × {execution['workers']} worker(s))",
        ["kernel", "order", "backend", "exact", "value", "rel err",
         "time", "set ops"],
        rows,
    )
    if execution["workers"] > 1:
        modeled = execution["modeled"][execution["schedule"]]
        print(
            f"parallel: measured {1000 * execution['measured_seconds']:.1f} ms"
            f" wall ({execution['measured_speedup']:.2f}x over the summed"
            f" cell times); scheduler model predicts "
            f"{1000 * modeled['makespan_seconds']:.1f} ms "
            f"({modeled['speedup']:.2f}x)"
        )


def _exact_mismatches(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Exact-backend cells disagreeing with the reference — must be empty."""
    return [
        c for c in payload["cells"] if c["exact"] and c["rel_error"] != 0.0
    ]


def build_suite_parser() -> argparse.ArgumentParser:
    """The ``python -m repro suite`` argument surface."""
    parser = argparse.ArgumentParser(
        prog="repro suite",
        description="declarative kernel × backend × ordering experiment suite",
    )
    parser.add_argument("--datasets", nargs="+", default=["sc-ht-mini"],
                        help="registry dataset names")
    parser.add_argument("--kernels", nargs="+", default=[],
                        choices=sorted(SUITE_KERNELS), metavar="KERNEL",
                        help=f"suite kernels (default: all of "
                             f"{sorted(SUITE_KERNELS)})")
    parser.add_argument("--set-classes", nargs="+", default=[],
                        metavar="BACKEND",
                        help="set backends (default: every registered name)")
    parser.add_argument("--orderings", nargs="+", default=["DGR", "ADG"],
                        choices=sorted(ORDERINGS), metavar="ORDER",
                        help="vertex orderings for ordering-aware kernels")
    parser.add_argument("--k", type=int, default=4, help="clique size k")
    parser.add_argument("--eps", type=float, default=0.1,
                        help="ADG approximation parameter")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per cell (best-of)")
    add_sketch_budget_args(parser)
    add_parallel_args(parser)
    add_dispatch_args(parser)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny CI matrix "
                             "(2 backends × 2 orderings × 3 kernels) and "
                             "ignore the sweep-selection flags (the "
                             "execution flags --workers/--schedule/"
                             "--cache-budget-bytes still apply)")
    parser.add_argument("--verbose", action="store_true")
    return parser


def plan_from_argv(argv: Optional[List[str]] = None) -> ExperimentPlan:
    """Parse ``python -m repro suite`` flags into an :class:`ExperimentPlan`."""
    return _plan_from_namespace(build_suite_parser().parse_args(argv))


def _plan_from_namespace(ns: argparse.Namespace) -> ExperimentPlan:
    if ns.smoke:
        # The smoke matrix is fixed; the execution knobs still apply so CI
        # can run the very same matrix through the process pool.
        return replace(
            ExperimentPlan.smoke(),
            workers=ns.workers, schedule=ns.schedule,
            cache_budget_bytes=ns.cache_budget_bytes,
            transport=ns.transport,
            dispatch=ns.dispatch,
        )
    return ExperimentPlan(
        datasets=tuple(ns.datasets),
        kernels=tuple(ns.kernels),
        set_classes=tuple(ns.set_classes),
        orderings=tuple(ns.orderings),
        k=ns.k,
        eps=ns.eps,
        repeats=ns.repeats,
        bloom_bits=ns.bloom_bits,
        kmv_k=ns.kmv_k,
        bloom_shared_bits=ns.bloom_shared_bits,
        bloom_fpr=ns.bloom_fpr,
        workers=ns.workers,
        schedule=ns.schedule,
        cache_budget_bytes=ns.cache_budget_bytes,
        transport=ns.transport,
        dispatch=ns.dispatch,
    )


def report_payloads(payloads: List[Dict[str, object]]) -> int:
    """Print, persist, and cross-check suite payloads; return mismatches.

    Shared by ``python -m repro suite`` and the session REPL
    (``python -m repro serve``) so both emit the identical artifact and
    apply the identical exact-backend gate.
    """
    bad = 0
    for payload in payloads:
        _print_payload(payload)
        path = write_artifact(f"suite_{payload['dataset']}", payload)
        print(f"artifact: {path}")
        mismatches = _exact_mismatches(payload)
        for cell in mismatches:
            print(
                f"EXACT-BACKEND MISMATCH: {cell['kernel']}/{cell['ordering']}"
                f"/{cell['set_class']} = {cell['value']} "
                f"!= reference {cell['reference']}",
                file=sys.stderr,
            )
        bad += len(mismatches)
    return bad


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro suite`` — a thin session client."""
    from .session import MiningSession

    ns = build_suite_parser().parse_args(argv)
    plan = _plan_from_namespace(ns)
    plan.validate_execution()
    with MiningSession.from_plan(plan, verbose=ns.verbose) as session:
        payloads = session.run_plan(plan, verbose=ns.verbose)
    return 1 if report_payloads(payloads) else 0

"""Preprocessing stage of the GMS pipeline (modularity hook ``3``)."""

from .ordering import (
    ORDERINGS,
    OrderingResult,
    approx_coreness,
    approx_degeneracy_order,
    compute_ordering,
    coreness,
    degeneracy_order,
    degeneracy_order_result,
    degree_order,
    identity_order,
    random_order,
    triangle_count_order,
)

__all__ = [
    "OrderingResult",
    "ORDERINGS",
    "compute_ordering",
    "degree_order",
    "degeneracy_order",
    "degeneracy_order_result",
    "approx_degeneracy_order",
    "approx_coreness",
    "coreness",
    "triangle_count_order",
    "identity_order",
    "random_order",
]

"""Vertex reordering schemes (paper sections 4.1.3 and 6.1, Algorithm 5).

GMS treats vertex reordering as a pluggable preprocessing stage (modularity
level ``3``): the order in which vertices are processed at the outermost
level of Bron–Kerbosch or k-clique listing bounds the size of the candidate
sets and hence the work.

Implemented orderings:

* **DEG** — simple degree ordering (non-decreasing degree).
* **DGR** — exact degeneracy ordering: repeatedly remove a minimum-degree
  vertex; O(n + m) bucket peeling (Matula–Beck).  Inherently sequential:
  ``n`` peeling iterations (the paper's motivation for ADG).
* **ADG** — (2+ε)-approximate degeneracy ordering (Algorithm 5): peel in
  parallel *batches* of all vertices whose remaining degree is at most
  ``(1+ε)`` times the average; O(log n) rounds for any ε > 0.
* **TRI** — triangle-count ranking (clustering-coefficient flavored).
* **ID / RANDOM** — controls.

Each function returns an :class:`OrderingResult` carrying the vertex order,
the rank (inverse permutation), and scheme-specific metadata (degeneracy,
number of parallel rounds — the depth proxy used by the concurrency
analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "OrderingResult",
    "degree_order",
    "degeneracy_order_result",
    "degeneracy_order",
    "approx_degeneracy_order",
    "triangle_count_order",
    "identity_order",
    "random_order",
    "coreness",
    "ORDERINGS",
    "compute_ordering",
]


@dataclass
class OrderingResult:
    """Output of a reordering scheme.

    ``order[i]`` is the vertex processed at position ``i``; ``rank[v]`` is
    the position of vertex ``v`` (``rank = argsort(order)``).
    """

    name: str
    order: np.ndarray
    rank: np.ndarray
    rounds: int = 1  # parallel peeling rounds (depth proxy)
    degeneracy_bound: float = 0.0  # max vertices ranked later & adjacent
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.order)


def _result(name: str, order: np.ndarray, **kw) -> OrderingResult:
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order))
    return OrderingResult(name=name, order=order.astype(np.int64), rank=rank, **kw)


def identity_order(graph: CSRGraph) -> OrderingResult:
    """The input order — the no-preprocessing control."""
    return _result("ID", np.arange(graph.num_nodes))


def random_order(graph: CSRGraph, seed: int = 0) -> OrderingResult:
    """A uniformly random order."""
    rng = np.random.default_rng(seed)
    return _result("RANDOM", rng.permutation(graph.num_nodes))


def degree_order(graph: CSRGraph) -> OrderingResult:
    """DEG: vertices by non-decreasing degree (ties by ID).

    A single parallel sort — O(m) work, O(log n) depth.
    """
    degrees = graph.degrees()
    order = np.lexsort((np.arange(graph.num_nodes), degrees))
    bound = float(degrees.max()) if graph.num_nodes else 0.0
    return _result("DEG", order, rounds=1, degeneracy_bound=bound)


def degeneracy_order_result(graph: CSRGraph) -> OrderingResult:
    """DGR: exact degeneracy ordering via O(n + m) bucket peeling."""
    order, degeneracy, cores = _peel(graph)
    res = _result(
        "DGR", order, rounds=graph.num_nodes, degeneracy_bound=float(degeneracy)
    )
    res.meta["degeneracy"] = float(degeneracy)
    return res


def degeneracy_order(graph: CSRGraph) -> Tuple[np.ndarray, int]:
    """Convenience wrapper: ``(order, degeneracy)``."""
    order, degeneracy, _ = _peel(graph)
    return order, degeneracy


def coreness(graph: CSRGraph) -> np.ndarray:
    """Exact core numbers of all vertices (k-core decomposition)."""
    _, _, cores = _peel(graph)
    return cores


def _peel(graph: CSRGraph) -> Tuple[np.ndarray, int, np.ndarray]:
    """Matula–Beck bucket peeling: order, degeneracy, core numbers.

    The canonical O(n + m) bin-sort formulation: vertices live in an array
    sorted by current degree; removing the minimum-degree vertex and
    decrementing a neighbor's degree are both O(1) swaps.
    """
    n = graph.num_nodes
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, 0, empty
    deg = graph.degrees().astype(np.int64).tolist()
    max_deg = max(deg) if n else 0
    # Counting sort of vertices by degree.
    bin_count = [0] * (max_deg + 1)
    for d in deg:
        bin_count[d] += 1
    bin_start = [0] * (max_deg + 2)
    for d in range(max_deg + 1):
        bin_start[d + 1] = bin_start[d] + bin_count[d]
    bins = bin_start[:-1].copy()  # running fill pointer per degree
    vert = [0] * n
    pos = [0] * n
    for v in range(n):
        vert[bins[deg[v]]] = v
        pos[v] = bins[deg[v]]
        bins[deg[v]] += 1
    bin_ptr = bin_start[:-1]  # start of each degree bucket (mutable)
    order = np.empty(n, dtype=np.int64)
    cores = np.zeros(n, dtype=np.int64)
    offsets = graph.offsets
    adjacency = graph.adjacency
    degeneracy = 0
    removed = [False] * n
    for i in range(n):
        v = vert[i]
        degeneracy = max(degeneracy, deg[v])
        cores[v] = degeneracy
        order[i] = v
        removed[v] = True
        for u in adjacency[offsets[v] : offsets[v + 1]].tolist():
            if removed[u] or deg[u] <= deg[v]:
                continue
            du, pu = deg[u], pos[u]
            pw = bin_ptr[du]
            w = vert[pw]
            if u != w:
                vert[pu], vert[pw] = w, u
                pos[u], pos[w] = pw, pu
            bin_ptr[du] += 1
            deg[u] -= 1
    return order, degeneracy, cores


def approx_degeneracy_order(graph: CSRGraph, eps: float = 0.5) -> OrderingResult:
    """ADG: the (2+ε)-approximate degeneracy order (Algorithm 5).

    Repeatedly removes, *as one parallel batch*, every vertex whose degree in
    the remaining induced subgraph ``G[U]`` is at most ``(1 + ε)`` times the
    current average degree ``δ̂_U``.  Terminates in O(log n) rounds for any
    ε > 0 (Lemma 7.1: O(m) work, O(log² n) depth).
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    n = graph.num_nodes
    alive = np.ones(n, dtype=bool)
    cur_deg = graph.degrees().astype(np.float64)
    group = np.zeros(n, dtype=np.int64)
    rounds = 0
    remaining = n
    max_threshold = 0.0
    while remaining > 0:
        rounds += 1
        avg = cur_deg[alive].sum() / remaining
        threshold = (1.0 + eps) * avg
        max_threshold = max(max_threshold, threshold)
        batch = alive & (cur_deg <= threshold)
        if not batch.any():
            # Cannot happen mathematically (at least half the vertices
            # qualify), but guard against float pathologies.
            batch = alive.copy()
        group[batch] = rounds
        # Remove the batch: decrement degrees of surviving neighbors.
        batch_vertices = np.nonzero(batch)[0]
        alive[batch] = False
        remaining -= len(batch_vertices)
        if remaining == 0:
            break
        touched = np.concatenate(
            [graph.out_neigh(v) for v in batch_vertices.tolist()]
        )
        dec = np.bincount(touched, minlength=n)
        cur_deg -= dec
        cur_deg[~alive] = 0
    order = np.lexsort((np.arange(n), group))
    res = _result(
        "ADG", order, rounds=rounds, degeneracy_bound=max_threshold
    )
    res.meta["eps"] = eps
    return res


def approx_coreness(graph: CSRGraph, eps: float = 0.5) -> np.ndarray:
    """Approximate core numbers from the ADG batch thresholds.

    Each vertex is assigned half the *running maximum* of the batch
    thresholds up to its removal round.  The first member of any k-core to
    be peeled still has ≥ k alive neighbors, so the threshold of its round
    is ≥ k; the running maximum therefore lower-bounds every core member:
    ``approx(v) ≥ core(v) / 2``.  Conversely every threshold is at most
    ``(1+ε)`` times an alive-subgraph average degree, which is ≤ 2·d, so
    ``approx(v) ≤ (1+ε)·d`` — the (2+ε)-style guarantee of section 6.1
    (relative to the graph degeneracy, not per-vertex two-sided).
    """
    n = graph.num_nodes
    alive = np.ones(n, dtype=bool)
    cur_deg = graph.degrees().astype(np.float64)
    approx = np.zeros(n, dtype=np.float64)
    remaining = n
    running_max = 0.0
    while remaining > 0:
        avg = cur_deg[alive].sum() / remaining
        threshold = (1.0 + eps) * avg
        running_max = max(running_max, threshold)
        batch = alive & (cur_deg <= threshold)
        if not batch.any():
            batch = alive.copy()
        approx[batch] = running_max / 2.0
        batch_vertices = np.nonzero(batch)[0]
        alive[batch] = False
        remaining -= len(batch_vertices)
        if remaining == 0:
            break
        touched = np.concatenate(
            [graph.out_neigh(v) for v in batch_vertices.tolist()]
        )
        cur_deg -= np.bincount(touched, minlength=n)
        cur_deg[~alive] = 0
    return approx


def triangle_count_order(graph: CSRGraph) -> OrderingResult:
    """TRI: rank vertices by their triangle participation counts."""
    from ..graph.stats import triangle_counts

    tri = triangle_counts(graph)
    order = np.lexsort((np.arange(graph.num_nodes), tri))
    return _result("TRI", order, rounds=1)


ORDERINGS: Dict[str, Callable[..., OrderingResult]] = {
    "ID": identity_order,
    "RANDOM": random_order,
    "DEG": degree_order,
    "DGR": degeneracy_order_result,
    "ADG": approx_degeneracy_order,
    "TRI": triangle_count_order,
}


def compute_ordering(graph: CSRGraph, name: str, **kwargs) -> OrderingResult:
    """Run a reordering scheme by registry name (the stage-3 hook)."""
    try:
        func = ORDERINGS[name]
    except KeyError:
        known = ", ".join(sorted(ORDERINGS))
        raise KeyError(f"unknown ordering {name!r}; known: {known}") from None
    return func(graph, **kwargs)

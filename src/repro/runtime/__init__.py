"""Simulated parallel runtime: work–depth, schedulers, PAPI facade, metrics."""

from .metrics import (
    Timer,
    TimingResult,
    algorithmic_throughput,
    bootstrap_ci,
    measure,
    peak_memory_bytes,
)
from .papi import PAPI_L3_TCM, PAPI_MEM_SCY, PAPI_RES_STL, PAPIW, StallModel
from .scheduler import (
    SCHEDULER_POLICIES,
    simulate_makespan,
    speedup_curve,
    static_chunks,
)
from .workdepth import WorkDepthReport, WorkDepthTracker

__all__ = [
    "WorkDepthTracker",
    "WorkDepthReport",
    "simulate_makespan",
    "static_chunks",
    "speedup_curve",
    "SCHEDULER_POLICIES",
    "PAPIW",
    "StallModel",
    "PAPI_MEM_SCY",
    "PAPI_RES_STL",
    "PAPI_L3_TCM",
    "Timer",
    "TimingResult",
    "measure",
    "algorithmic_throughput",
    "bootstrap_ci",
    "peak_memory_bytes",
]

"""Performance metrics (paper section 4.3).

Implements the GMS measurement methodology:

* plain run-times with warmup discarding, arithmetic means, and 95%
  non-parametric (bootstrap) confidence intervals (section 8.1);
* the novel **algorithmic throughput** metric — the number of mined graph
  patterns per second (maximal cliques/s, k-cliques/s, similarity pairs/s,
  …), the paper's "algorithmic efficiency";
* memory accounting helpers (peak construction memory via ``tracemalloc``).
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Timer",
    "TimingResult",
    "measure",
    "algorithmic_throughput",
    "peak_memory_bytes",
    "bootstrap_ci",
]


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class TimingResult:
    """Repeated-measurement summary."""

    samples: List[float]
    mean: float
    ci_low: float
    ci_high: float
    value: object = None  # last return value of the measured callable

    @property
    def min(self) -> float:
        return min(self.samples)


def bootstrap_ci(
    samples: Sequence[float], confidence: float = 0.95, resamples: int = 1000
) -> Tuple[float, float]:
    """Non-parametric bootstrap CI of the mean (section 8.1 methodology)."""
    arr = np.asarray(samples, dtype=np.float64)
    if len(arr) == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(0xC1)
    means = rng.choice(arr, size=(resamples, len(arr)), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1 - alpha))


def measure(
    fn: Callable[[], object], repeats: int = 3, warmup: int = 1
) -> TimingResult:
    """Run *fn* ``warmup + repeats`` times; summarize the timed repeats.

    The warmup runs reproduce the paper's "omit the first 1% of performance
    data as warmup" policy at small-repeat scale.
    """
    value = None
    for _ in range(warmup):
        value = fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - start)
    lo, hi = bootstrap_ci(samples)
    return TimingResult(
        samples=samples, mean=float(np.mean(samples)), ci_low=lo, ci_high=hi,
        value=value,
    )


def algorithmic_throughput(patterns_mined: int, seconds: float) -> float:
    """Patterns mined per second — the GMS algorithmic-efficiency metric.

    For pattern matching this is subgraphs found per second (e.g. maximal
    cliques/s); for learning, vertex pairs scored per second; for
    clustering, clusters found per second (section 4.3).
    """
    if seconds <= 0:
        return float("inf") if patterns_mined else 0.0
    return patterns_mined / seconds


@contextmanager
def _tracing():
    tracemalloc.start()
    try:
        yield
    finally:
        tracemalloc.stop()


def peak_memory_bytes(fn: Callable[[], object]) -> Tuple[object, int]:
    """Run *fn* and return ``(result, peak allocated bytes)``.

    Used by the memory-consumption analysis (section 8.9) to compare the
    peak usage while *constructing* representations against their final
    sizes.
    """
    with _tracing():
        tracemalloc.reset_peak()
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    return result, peak

"""PAPIW-compatible machine-efficiency facade (paper section 5.5, Listing 4).

GMS wraps the PAPI hardware-counter library behind ``GMS::PAPIW`` with the
idiom::

    GMS::PAPIW::INIT_PARALLEL(PAPI_MEM_SCY, PAPI_RES_STL);
    GMS::PAPIW::START();
    /* benchmarked parallel region */
    GMS::PAPIW::STOP();

This module reproduces that interface over the *software* counters of
:mod:`repro.core.counters`: the set-algebra layer records how many elements
every operation reads and writes, which is the memory traffic that makes
graph mining memory-bound (the paper's section 8.8 finding).

The stall model converts measured traffic into PAPI-flavoured numbers via a
roofline-style bandwidth argument: ``p`` threads share the memory
subsystem, so per-access latency grows once aggregate demand exceeds the
bandwidth knee.  Both reported quantities then behave like Figure 8b:
*total* stalled cycles grow with the thread count, and the stalled-cycle
*ratio* grows while the speedup flattens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core import counters as _counters

__all__ = ["PAPIW", "StallModel", "PAPI_MEM_SCY", "PAPI_RES_STL", "PAPI_L3_TCM"]

# Counter-name constants mirroring the PAPI event names used in Listing 4.
PAPI_MEM_SCY = "PAPI_MEM_SCY"  # cycles stalled on memory accesses
PAPI_RES_STL = "PAPI_RES_STL"  # cycles stalled on any resource
PAPI_L3_TCM = "PAPI_L3_TCM"  # L3 total cache misses


@dataclass(frozen=True)
class Measurement:
    """Raw software-counter deltas for one START/STOP region."""

    set_ops: int
    point_ops: int
    elements_read: int
    elements_written: int
    wall_seconds: float

    @property
    def memory_traffic(self) -> int:
        return self.elements_read + self.elements_written


@dataclass(frozen=True)
class StallModel:
    """Roofline-style contention model.

    * ``compute_cpe`` — cycles of useful compute per element touched.
    * ``mem_cpe`` — uncontended memory cycles per element.
    * ``bandwidth_knee`` — number of threads the memory subsystem can feed
      at full speed; beyond it, per-access latency grows linearly, which is
      the mechanism behind Figure 8b's flattening speedups.
    * ``miss_rate`` — fraction of element touches that miss L3 (drives the
      simulated ``PAPI_L3_TCM``).
    """

    compute_cpe: float = 4.0
    mem_cpe: float = 6.0
    bandwidth_knee: int = 8
    miss_rate: float = 0.08

    def stalled_cycles(self, m: Measurement, threads: int) -> Tuple[float, float]:
        """Return ``(stalled_cycle_count, stalled_cycle_ratio)`` at *threads*.

        The count sums over all threads (like PAPI's aggregated counters in
        GMS's INIT_PARALLEL mode).
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        traffic = m.memory_traffic
        compute = m.memory_traffic * self.compute_cpe
        contention = max(1.0, threads / self.bandwidth_knee)
        stall_per_access = self.mem_cpe * contention
        stalled = traffic * stall_per_access
        total = compute + stalled
        return stalled, stalled / total if total else 0.0

    def contention_slowdown(self, m: Measurement, threads: int) -> float:
        """Multiplicative slowdown of a *makespan* due to memory contention.

        A p-thread schedule computed from per-task costs already models the
        division of compute; what it misses is that the measured task costs
        assume an uncontended memory subsystem.  Once aggregate demand
        passes the bandwidth knee, every memory access stretches by
        ``p / knee``, so the whole schedule stretches by the traffic-
        weighted factor returned here (≥ 1, and 1 below the knee).
        """
        contention = max(1.0, threads / self.bandwidth_knee)
        base = self.compute_cpe + self.mem_cpe
        return (self.compute_cpe + self.mem_cpe * contention) / base

    def runtime_scale(self, m: Measurement, threads: int) -> float:
        """Relative runtime at *threads* (1.0 = single thread).

        Compute scales with 1/p; the memory component stops scaling once
        aggregate bandwidth saturates at the knee.
        """
        compute = m.memory_traffic * self.compute_cpe
        mem = m.memory_traffic * self.mem_cpe
        single = compute + mem
        scaled = compute / threads + mem / min(threads, self.bandwidth_knee)
        return scaled / single if single else 1.0

    def cache_misses(self, m: Measurement) -> float:
        """Simulated L3 total cache misses for the region."""
        return m.memory_traffic * self.miss_rate


class PAPIW:
    """Process-wide PAPI wrapper facade (mirrors ``GMS::PAPIW``)."""

    _events: Tuple[str, ...] = ()
    _start_snapshot = None
    _start_time = 0.0
    _measurements: List[Measurement] = []

    @classmethod
    def INIT_PARALLEL(cls, *events: str) -> None:
        """Declare the events to gather for subsequent parallel regions."""
        cls._events = events or (PAPI_MEM_SCY, PAPI_RES_STL)
        cls._measurements = []

    @classmethod
    def START(cls) -> None:
        """Begin a measured region."""
        import time

        cls._start_snapshot = _counters.snapshot()
        cls._start_time = time.perf_counter()

    @classmethod
    def STOP(cls) -> Measurement:
        """End the region and store/return its measurement."""
        import time

        if cls._start_snapshot is None:
            raise RuntimeError("PAPIW.STOP() without START()")
        delta = cls._start_snapshot.delta(_counters.snapshot())
        m = Measurement(
            set_ops=delta.set_ops,
            point_ops=delta.point_ops,
            elements_read=delta.elements_read,
            elements_written=delta.elements_written,
            wall_seconds=time.perf_counter() - cls._start_time,
        )
        cls._start_snapshot = None
        cls._measurements.append(m)
        return m

    @classmethod
    def last(cls) -> Measurement:
        """Return the most recent measurement."""
        if not cls._measurements:
            raise RuntimeError("no PAPIW measurements recorded")
        return cls._measurements[-1]

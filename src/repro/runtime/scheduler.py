"""Discrete-event simulation of parallel schedulers.

Turns the per-task cost profiles recorded by
:class:`~repro.runtime.workdepth.WorkDepthTracker` (costs of *real* Python
execution, measured per outer-loop task) into simulated makespans on ``p``
workers under two scheduling policies:

* ``"static"`` — contiguous chunking, like an OpenMP ``schedule(static)``
  loop: each worker receives an equal-length contiguous slice.
* ``"dynamic"`` — greedy list scheduling, like OpenMP ``schedule(dynamic)``:
  a free worker grabs the next task; a small per-grab overhead models the
  queue synchronization.
* ``"stealing"`` — randomized work stealing, like Intel TBB: dynamic plus a
  steal overhead per migration; the paper found TBB consistently a little
  *slower* than OpenMP for BK (section 8.2), which the higher overhead
  reproduces.

The simulation is deterministic given the task list.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

__all__ = ["simulate_makespan", "speedup_curve", "SCHEDULER_POLICIES"]

SCHEDULER_POLICIES = ("static", "dynamic", "stealing")

#: Fractional per-task overheads of the dynamic policies (relative to the
#: mean task cost); stealing pays more per migration than a shared queue.
_DYNAMIC_OVERHEAD = 0.01
_STEALING_OVERHEAD = 0.05


def simulate_makespan(
    task_costs: Sequence[float], threads: int, policy: str = "dynamic"
) -> float:
    """Simulate executing *task_costs* on *threads* workers; return makespan."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    costs = [float(c) for c in task_costs]
    if not costs:
        return 0.0
    if threads == 1:
        return sum(costs)
    if policy == "static":
        return _static_makespan(costs, threads)
    if policy in ("dynamic", "stealing"):
        overhead = _DYNAMIC_OVERHEAD if policy == "dynamic" else _STEALING_OVERHEAD
        return _greedy_makespan(costs, threads, overhead)
    raise ValueError(f"unknown policy {policy!r}; known: {SCHEDULER_POLICIES}")


def _static_makespan(costs: List[float], threads: int) -> float:
    chunk = (len(costs) + threads - 1) // threads
    finish = 0.0
    for w in range(threads):
        load = sum(costs[w * chunk : (w + 1) * chunk])
        finish = max(finish, load)
    return finish


def _greedy_makespan(costs: List[float], threads: int, overhead_frac: float) -> float:
    mean_cost = sum(costs) / len(costs)
    overhead = overhead_frac * mean_cost
    # Min-heap of worker finish times; tasks dispatched in order.
    workers = [0.0] * min(threads, len(costs))
    heapq.heapify(workers)
    for cost in costs:
        start = heapq.heappop(workers)
        heapq.heappush(workers, start + cost + overhead)
    return max(workers)


def speedup_curve(
    task_costs: Sequence[float],
    thread_counts: Sequence[int],
    policy: str = "dynamic",
    sequential_fraction: float = 0.0,
) -> List[float]:
    """Simulated speedups over 1 thread for each entry of *thread_counts*.

    ``sequential_fraction`` adds an Amdahl term for the non-parallelized
    part of the computation (e.g. the reordering preprocessing when it is
    run sequentially).
    """
    base = sum(float(c) for c in task_costs)
    seq = base * sequential_fraction
    out = []
    for p in thread_counts:
        par = simulate_makespan(task_costs, p, policy)
        out.append((base + seq) / (par + seq) if (par + seq) > 0 else 1.0)
    return out

"""Discrete-event simulation of parallel schedulers.

Turns the per-task cost profiles recorded by
:class:`~repro.runtime.workdepth.WorkDepthTracker` (costs of *real* Python
execution, measured per outer-loop task) into simulated makespans on ``p``
workers under two scheduling policies:

* ``"static"`` — contiguous chunking, like an OpenMP ``schedule(static)``
  loop: each worker receives an equal-length contiguous slice.
* ``"dynamic"`` — greedy list scheduling, like OpenMP ``schedule(dynamic)``:
  a free worker grabs the next task; a small per-grab overhead models the
  queue synchronization.
* ``"stealing"`` — randomized work stealing, like Intel TBB: dynamic plus a
  steal overhead per migration; the paper found TBB consistently a little
  *slower* than OpenMP for BK (section 8.2), which the higher overhead
  reproduces.

The simulation is deterministic given the task list.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

__all__ = [
    "simulate_makespan",
    "speedup_curve",
    "static_chunks",
    "steal_count",
    "SCHEDULER_POLICIES",
]

SCHEDULER_POLICIES = ("static", "dynamic", "stealing")

#: Fractional per-task overheads of the dynamic policies (relative to the
#: mean task cost); stealing pays more per migration than a shared queue.
_DYNAMIC_OVERHEAD = 0.01
_STEALING_OVERHEAD = 0.05


def simulate_makespan(
    task_costs: Sequence[float], threads: int, policy: str = "dynamic"
) -> float:
    """Simulate executing *task_costs* on *threads* workers; return makespan."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    costs = [float(c) for c in task_costs]
    if not costs:
        return 0.0
    if threads == 1:
        return sum(costs)
    if policy == "static":
        return _static_makespan(costs, threads)
    if policy in ("dynamic", "stealing"):
        overhead = _DYNAMIC_OVERHEAD if policy == "dynamic" else _STEALING_OVERHEAD
        return _greedy_makespan(costs, threads, overhead)
    raise ValueError(f"unknown policy {policy!r}; known: {SCHEDULER_POLICIES}")


def static_chunks(num_tasks: int, threads: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` slices of the static policy.

    This is the *actual* chunking rule, shared by the makespan model below
    and the real process-pool suite runner
    (:mod:`repro.platform.runner`) — so the measured static schedule and
    the simulated one partition the task list identically.  Empty trailing
    chunks (more threads than tasks) are omitted.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    # max() only guards num_tasks == 0 (range's step must be nonzero).
    chunk = max(1, (num_tasks + threads - 1) // threads)
    return [
        (start, min(start + chunk, num_tasks))
        for start in range(0, num_tasks, chunk)
    ]


def steal_count(victim_remaining: int) -> int:
    """Tasks a thief takes from a victim's deque — the steal-half rule.

    Classic work stealing (Cilk/TBB) migrates half the victim's remaining
    work per steal, amortizing the migration overhead over the stolen
    batch.  Shared by the real work-stealing executor
    (:mod:`repro.platform.runner`) so the measured policy and this model
    agree on the migration granularity.
    """
    return max(1, victim_remaining // 2)


def _static_makespan(costs: List[float], threads: int) -> float:
    finish = 0.0
    for start, end in static_chunks(len(costs), threads):
        finish = max(finish, sum(costs[start:end]))
    return finish


def _greedy_makespan(costs: List[float], threads: int, overhead_frac: float) -> float:
    mean_cost = sum(costs) / len(costs)
    overhead = overhead_frac * mean_cost
    # Min-heap of worker finish times; tasks dispatched in order.
    workers = [0.0] * min(threads, len(costs))
    heapq.heapify(workers)
    for cost in costs:
        start = heapq.heappop(workers)
        heapq.heappush(workers, start + cost + overhead)
    return max(workers)


def speedup_curve(
    task_costs: Sequence[float],
    thread_counts: Sequence[int],
    policy: str = "dynamic",
    sequential_fraction: float = 0.0,
) -> List[float]:
    """Simulated speedups over 1 thread for each entry of *thread_counts*.

    ``sequential_fraction`` adds an Amdahl term for the non-parallelized
    part of the computation (e.g. the reordering preprocessing when it is
    run sequentially).
    """
    base = sum(float(c) for c in task_costs)
    seq = base * sequential_fraction
    out = []
    for p in thread_counts:
        par = simulate_makespan(task_costs, p, policy)
        out.append((base + seq) / (par + seq) if (par + seq) > 0 else 1.0)
    return out

"""Work–depth accounting for the concurrency analysis (paper section 7).

The paper analyzes every algorithm with the *work–depth* model: ``W`` is the
total number of operations, ``D`` the length of the longest chain of
sequential dependencies, and the runtime on ``p`` processors is estimated as
``W/p + D`` (section 7.2 — "this estimate is optimistic ... yet it has
proven a useful model").

Because CPython's GIL forbids real shared-memory parallel set algebra, this
reproduction *instruments* the sequential execution with the same model:
algorithms record the cost of each parallel task (outer-loop iteration,
batch round, …) into a :class:`WorkDepthTracker`, and the scheduler module
turns the recorded profile into per-thread-count runtime estimates.  The
"shape" results of the evaluation — speedup flattening, scalability
crossovers — derive from these measured profiles of the real execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["WorkDepthTracker", "WorkDepthReport"]


@dataclass
class WorkDepthReport:
    """Summary of one tracked region."""

    work: float
    depth: float
    num_tasks: int

    def runtime_estimate(self, threads: int) -> float:
        """Brent-style estimate ``W/p + D``."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return self.work / threads + self.depth

    def speedup_estimate(self, threads: int) -> float:
        """Estimated speedup over the 1-thread execution."""
        return self.runtime_estimate(1) / self.runtime_estimate(threads)


class WorkDepthTracker:
    """Accumulates work and depth along the paper's fork–join structure.

    ``sequential(w)`` models w units executed on the critical path.
    ``parallel_for(costs)`` models a parallel loop: the work is the sum of
    the per-iteration costs, the depth is the maximum cost plus an
    ``O(log n)`` scheduling/reduction term.  Per-task costs are retained so
    the discrete-event scheduler can replay them.
    """

    def __init__(self) -> None:
        self.work: float = 0.0
        self.depth: float = 0.0
        self.task_costs: List[float] = []

    def sequential(self, cost: float) -> None:
        """Record *cost* units of inherently sequential execution."""
        self.work += cost
        self.depth += cost

    def parallel_for(self, costs: Sequence[float]) -> None:
        """Record one parallel loop with the given per-iteration costs."""
        if len(costs) == 0:
            return
        total = float(sum(costs))
        longest = float(max(costs))
        self.work += total
        self.depth += longest + math.log2(len(costs) + 1)
        self.task_costs.extend(float(c) for c in costs)

    def parallel_rounds(self, round_costs: Sequence[Sequence[float]]) -> None:
        """Record a sequence of parallel rounds (e.g. ADG's peeling batches)."""
        for costs in round_costs:
            self.parallel_for(costs)

    def report(self) -> WorkDepthReport:
        """Freeze the current totals into a report."""
        return WorkDepthReport(
            work=self.work, depth=self.depth, num_tasks=len(self.task_costs)
        )

"""Concurrency analysis: closed-form bounds of Tables 5, 6 and 8."""

from .bounds import TABLE5, TABLE6, Bound, check_scaling, table8_time, table9_time

__all__ = ["Bound", "TABLE5", "TABLE6", "table8_time", "table9_time", "check_scaling"]

"""Closed-form work/depth/space bounds (paper section 7, Tables 5, 6, 8).

The GMS concurrency analysis expresses every algorithm's cost in the
work–depth model so scalability can be judged *before* implementation.
This module encodes those closed forms as callables of the structural
parameters ``n, m, Δ, d (degeneracy), k, ε`` so the work-depth benchmark
can check measured work/critical-path profiles against the theory.

All functions return dimensionless operation counts (big-O bodies without
constants); comparisons are therefore made on *ratios across inputs*, not
absolute values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

__all__ = ["Bound", "TABLE5", "TABLE6", "table8_time", "table9_time", "check_scaling"]


@dataclass(frozen=True)
class Bound:
    """Work/depth/space of one algorithm (a Table 5 column)."""

    name: str
    work: Callable[..., float]
    depth: Callable[..., float]
    space: Callable[..., float]


def _log(x: float) -> float:
    return math.log2(max(x, 2.0))


TABLE5: Dict[str, Bound] = {
    # k-Clique listing, node-parallel (Danisch et al.)
    "kclique-node": Bound(
        "kclique-node",
        work=lambda n, m, d, k, **kw: m * k * (d / 2) ** max(k - 2, 0),
        depth=lambda n, m, d, k, **kw: n + k * (d / 2) ** max(k - 1, 0),
        space=lambda n, m, d, k, K=0, **kw: n * d**2 + K,
    ),
    # k-Clique listing, edge-parallel
    "kclique-edge": Bound(
        "kclique-edge",
        work=lambda n, m, d, k, **kw: m * k * (d / 2) ** max(k - 2, 0),
        depth=lambda n, m, d, k, **kw: n + k * (d / 2) ** max(k - 2, 0) + d * d,
        space=lambda n, m, d, k, K=0, **kw: m * d**2 + K,
    ),
    # k-Clique listing with ADG (this paper)
    "kclique-adg": Bound(
        "kclique-adg",
        work=lambda n, m, d, k, eps=0.1, **kw: m
        * k
        * ((d + eps) / 2) ** max(k - 2, 0),
        depth=lambda n, m, d, k, eps=0.1, **kw: k
        * ((d + eps) / 2) ** max(k - 2, 0)
        + _log(n) ** 2
        + d * d,
        space=lambda n, m, d, k, K=0, **kw: m * d**2 + K,
    ),
    # ADG itself (section 6.1)
    "adg": Bound(
        "adg",
        work=lambda n, m, **kw: m,
        depth=lambda n, m, **kw: _log(n) ** 2,
        space=lambda n, m, **kw: m,
    ),
    # Maximal cliques, Eppstein et al.
    "bk-eppstein": Bound(
        "bk-eppstein",
        work=lambda n, m, d, **kw: d * m * 3 ** (d / 3),
        depth=lambda n, m, d, **kw: d * m * 3 ** (d / 3),
        space=lambda n, m, d, K=0, **kw: m + n * d + K,
    ),
    # Maximal cliques, Das et al.
    "bk-das": Bound(
        "bk-das",
        work=lambda n, m, d, **kw: 3 ** (n / 3),
        depth=lambda n, m, d, **kw: d * _log(n),
        space=lambda n, m, d, K=0, p=16, Delta=0, **kw: m + p * d * Delta + K,
    ),
    # Maximal cliques with ADG (this paper)
    "bk-adg": Bound(
        "bk-adg",
        work=lambda n, m, d, eps=0.1, **kw: d * m * 3 ** ((2 + eps) * d / 3),
        depth=lambda n, m, d, **kw: _log(n) ** 2 + d * _log(n),
        space=lambda n, m, d, K=0, p=16, Delta=0, **kw: m + p * d * Delta + K,
    ),
    # Subgraph isomorphism, node-parallel
    "si-node": Bound(
        "si-node",
        work=lambda n, m, Delta, k, **kw: n * Delta ** max(k - 1, 0),
        depth=lambda n, m, Delta, k, **kw: Delta ** max(k - 1, 0),
        space=lambda n, m, k, K=0, **kw: m + n * k + K,
    ),
    # Link prediction / JP clustering
    "linkpred": Bound(
        "linkpred",
        work=lambda n, m, Delta, **kw: m * Delta,
        depth=lambda n, m, Delta, **kw: Delta,
        space=lambda n, m, Delta, **kw: m * Delta,
    ),
}


#: Table 6: sequential work of classic maximal-clique algorithms (for the
#: historical-comparison rows; depth equals work for the sequential ones).
TABLE6: Dict[str, Callable[..., float]] = {
    "chiba-nishizeki": lambda n, m, d, **kw: d * d * n * (n - d) * 3 ** (d / 3),
    "chrobak-eppstein": lambda n, m, d, **kw: n * d * d * 2 ** (2 * d),
    "eppstein": lambda n, m, d, **kw: d * m * 3 ** (d / 3),
    "das": lambda n, m, d, **kw: 3 ** (n / 3),
    "this-paper": lambda n, m, d, eps=0.1, **kw: d * m * 3 ** ((2 + eps) * d / 3),
}


def table8_time(algorithm: str, representation: str, n: float, m: float,
                Delta: float) -> float:
    """Table 8: time-complexity bodies per (algorithm, representation).

    Supported algorithms: ``tc-node-iterator``, ``bfs``, ``pagerank-push``;
    representations: ``AL``, ``AM``, ``EL-unsorted``, ``EL-sorted``.
    """
    key = (algorithm, representation)
    forms: Dict[tuple, Callable[[], float]] = {
        ("tc-node-iterator", "AL"): lambda: n + m**1.5 * _log(Delta),
        ("tc-node-iterator", "AM"): lambda: n + m**1.5,
        ("tc-node-iterator", "EL-unsorted"): lambda: n + m**1.5 * (Delta + _log(m)),
        ("tc-node-iterator", "EL-sorted"): lambda: n + m**2.5,
        ("bfs", "AL"): lambda: n + m,
        ("bfs", "AM"): lambda: n * n,
        ("bfs", "EL-unsorted"): lambda: n * _log(m) + m,
        ("bfs", "EL-sorted"): lambda: n * m + n + m,
        ("pagerank-push", "AL"): lambda: n + m**1.5 * _log(Delta),
        ("pagerank-push", "AM"): lambda: n + m**1.5,
        ("pagerank-push", "EL-unsorted"): lambda: n + m**1.5 * (Delta + _log(m)),
        ("pagerank-push", "EL-sorted"): lambda: n + m**2.5,
    }
    try:
        return forms[key]()
    except KeyError:
        raise KeyError(f"no Table 8 entry for {key}") from None


def table9_time(query: str, representation: str, n: float, m: float,
                Delta: float) -> float:
    """Table 9: per-query time-complexity bodies.

    Queries: ``iter-vertices``, ``iter-edges``, ``iter-neighborhood``,
    ``degree``, ``has-edge``; representations: AL (sorted), AM,
    EL-unsorted, EL-sorted.
    """
    forms: Dict[tuple, Callable[[], float]] = {
        ("iter-vertices", "AL"): lambda: n,
        ("iter-vertices", "AM"): lambda: n,
        ("iter-vertices", "EL-unsorted"): lambda: n,
        ("iter-vertices", "EL-sorted"): lambda: n,
        ("iter-edges", "AL"): lambda: n + m,
        ("iter-edges", "AM"): lambda: n * n,
        ("iter-edges", "EL-unsorted"): lambda: m,
        ("iter-edges", "EL-sorted"): lambda: m,
        ("iter-neighborhood", "AL"): lambda: Delta,
        ("iter-neighborhood", "AM"): lambda: n,
        ("iter-neighborhood", "EL-unsorted"): lambda: m,
        ("iter-neighborhood", "EL-sorted"): lambda: _log(m) + Delta,
        ("degree", "AL"): lambda: 1.0,
        ("degree", "AM"): lambda: n,
        ("degree", "EL-unsorted"): lambda: m,
        ("degree", "EL-sorted"): lambda: _log(m) + Delta,
        ("has-edge", "AL"): lambda: _log(Delta),
        ("has-edge", "AM"): lambda: 1.0,
        ("has-edge", "EL-unsorted"): lambda: m,
        ("has-edge", "EL-sorted"): lambda: _log(m),
    }
    try:
        return forms[(query, representation)]()
    except KeyError:
        raise KeyError(f"no Table 9 entry for {(query, representation)}") from None


def check_scaling(
    measured: Dict[str, float], predicted: Dict[str, float], tolerance: float = 4.0
) -> Dict[str, float]:
    """Compare measured-vs-predicted *ratios* between labeled inputs.

    For every pair of inputs (a, b), computes
    ``(measured[b]/measured[a]) / (predicted[b]/predicted[a])``; values
    within ``[1/tolerance, tolerance]`` mean the measured scaling follows
    the bound's shape.  Returns the per-pair ratio map.
    """
    keys = sorted(measured)
    out: Dict[str, float] = {}
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            mr = measured[b] / max(measured[a], 1e-12)
            pr = predicted[b] / max(predicted[a], 1e-12)
            out[f"{a}->{b}"] = mr / max(pr, 1e-12)
    return out

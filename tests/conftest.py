"""Shared fixtures: random graphs, set classes, miniature datasets."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    BitSet,
    CompressedSortedSet,
    HashSet,
    RoaringSet,
    SortedSet,
)
from repro.graph import build_undirected

ALL_SET_CLASSES = [SortedSet, BitSet, RoaringSet, HashSet, CompressedSortedSet]


@pytest.fixture(params=ALL_SET_CLASSES, ids=lambda c: c.__name__)
def set_cls(request):
    """Parametrizes a test over all four set representations."""
    return request.param


def random_csr(n: int, m: int, seed: int):
    """A random G(n, m) CSR graph plus its networkx twin."""
    G = nx.gnm_random_graph(n, m, seed=seed)
    return build_undirected(n, list(G.edges())), G


@pytest.fixture
def small_graph():
    """A fixed 12-vertex graph with a known clique structure."""
    edges = [
        (0, 1), (0, 2), (1, 2), (2, 3),  # triangle 0-1-2 + tail
        (3, 4), (4, 5), (5, 6), (6, 3), (3, 5), (4, 6),  # K4 on 3..6
        (7, 8), (8, 9), (9, 7),  # triangle 7-8-9
        (10, 11),  # isolated edge
    ]
    return build_undirected(12, edges)


@pytest.fixture
def karate():
    """Zachary's karate club — the classic community-structure graph."""
    G = nx.karate_club_graph()
    return build_undirected(G.number_of_nodes(), list(G.edges())), G

"""Shared fixtures: random graphs, set classes, miniature datasets."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import registered_set_classes
from repro.graph import build_undirected

# The representation matrix is derived from the registry so that newly
# registered backends (e.g. a user's register_set_class) are covered
# automatically.  Exact classes are separated out for the mining/graph
# tests that assert exact counts.
ALL_SET_CLASSES = registered_set_classes()
EXACT_SET_CLASSES = [cls for cls in ALL_SET_CLASSES if cls.IS_EXACT]
APPROX_SET_CLASSES = [cls for cls in ALL_SET_CLASSES if not cls.IS_EXACT]


@pytest.fixture(params=EXACT_SET_CLASSES, ids=lambda c: c.__name__)
def set_cls(request):
    """Parametrizes a test over every *exact* registered representation."""
    return request.param


@pytest.fixture(params=ALL_SET_CLASSES, ids=lambda c: c.__name__)
def any_set_cls(request):
    """Parametrizes a test over every registered representation,
    exact and approximate alike; tests branch on ``cls.IS_EXACT``."""
    return request.param


@pytest.fixture(params=APPROX_SET_CLASSES, ids=lambda c: c.__name__)
def approx_set_cls(request):
    """Parametrizes a test over the approximate (sketch) representations."""
    return request.param


def random_csr(n: int, m: int, seed: int):
    """A random G(n, m) CSR graph plus its networkx twin."""
    G = nx.gnm_random_graph(n, m, seed=seed)
    return build_undirected(n, list(G.edges())), G


@pytest.fixture
def small_graph():
    """A fixed 12-vertex graph with a known clique structure."""
    edges = [
        (0, 1), (0, 2), (1, 2), (2, 3),  # triangle 0-1-2 + tail
        (3, 4), (4, 5), (5, 6), (6, 3), (3, 5), (4, 6),  # K4 on 3..6
        (7, 8), (8, 9), (9, 7),  # triangle 7-8-9
        (10, 11),  # isolated edge
    ]
    return build_undirected(12, edges)


@pytest.fixture
def karate():
    """Zachary's karate club — the classic community-structure graph."""
    G = nx.karate_club_graph()
    return build_undirected(G.number_of_nodes(), list(G.edges())), G

"""Sketch-accelerated mining & learning: correctness and accuracy bounds.

Three guarantees are pinned down here:

1. **Exactness where it must hold** — sketch-pivot Bron–Kerbosch returns
   *exactly* the same maximal-clique set as exact BK for every registered
   approximate backend (hypothesis property over random graphs): the
   estimated ``intersect_count`` only feeds the pivot argmax, and any
   ``u ∈ P ∪ X`` is a valid pivot.
2. **Bounded error where estimates are allowed** — seeded statistical
   accuracy of the ``"jaccard-kmv"`` measure against exact Jaccard (mean
   absolute error at fixed K, improving with K), and of the reconciled
   4-clique recursion against the compounding plain one.
3. **Shared-budget mechanics** — one ``m = m_total / n`` for every
   neighborhood makes all pairs take the popcount estimator path.

All sketch hashing is deterministic (splitmix64), so the statistical tests
are seeded by construction — fixed graph seeds give fixed estimates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx import (
    BloomFilterSet,
    KMVSketchSet,
    bloom_set_class,
    kmv_set_class,
    shared_bloom_set_class,
)
from repro.core import BitSet, SortedSet
from repro.learning import (
    effectiveness_loss,
    evaluate_scheme,
    known_measures,
    similarity,
    similarity_all_pairs,
)
from repro.mining import (
    bron_kerbosch,
    kclique_count,
    kclique_count_sets,
    sketch_pivot_bron_kerbosch,
)
from tests.conftest import APPROX_SET_CLASSES, random_csr


def canon(cliques):
    return sorted(tuple(sorted(c)) for c in cliques)


#: Registered approximate backends plus deliberately lean budgets — the
#: lean ones force mis-ranked pivots, which must still not change output.
PIVOT_CLASSES = APPROX_SET_CLASSES + [
    bloom_set_class(2, 2, min_bits=64, name="LeanBloom_b2"),
    kmv_set_class(4, name="LeanKMV_k4"),
]


class TestSketchPivotBKExactness:
    @pytest.mark.parametrize(
        "pivot_cls", PIVOT_CLASSES, ids=lambda c: c.__name__
    )
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(0, 220))
    def test_identical_maximal_clique_set(self, pivot_cls, seed, m):
        """Property: sketch pivots never change the enumerated cliques."""
        csr, _ = random_csr(26, m, seed)
        exact = bron_kerbosch(csr, "DGR", BitSet, collect=True)
        sketch = bron_kerbosch(csr, "DGR", BitSet, collect=True,
                               pivot_set_cls=pivot_cls)
        assert canon(sketch.cliques) == canon(exact.cliques)
        assert sketch.num_cliques == exact.num_cliques

    @pytest.mark.parametrize(
        "pivot_cls", APPROX_SET_CLASSES, ids=lambda c: c.__name__
    )
    def test_subgraph_opt_composes_with_sketch_pivot(self, pivot_cls):
        csr, _ = random_csr(40, 260, 7)
        exact = bron_kerbosch(csr, "DGR", BitSet, collect=True)
        sketch = bron_kerbosch(csr, "DGR", BitSet, subgraph_opt=True,
                               collect=True, pivot_set_cls=pivot_cls)
        assert canon(sketch.cliques) == canon(exact.cliques)

    def test_driver_reports_identical_and_calls(self):
        csr, _ = random_csr(40, 300, 3)
        res = sketch_pivot_bron_kerbosch(csr, KMVSketchSet, ordering="DGR")
        assert res.identical
        assert res.num_cliques == res.exact_num_cliques
        assert res.estimate_calls >= res.exact_calls >= 1
        assert res.call_overhead >= 1.0
        assert res.pivot_class == "KMVSketchSet"

    def test_variant_name_records_pivot_class(self):
        csr, _ = random_csr(15, 40, 1)
        res = bron_kerbosch(csr, "DGR", BitSet, pivot_set_cls=KMVSketchSet)
        assert res.variant.endswith("-SP[KMVSketchSet]")


class TestJaccardKMVAccuracy:
    """Seeded statistical accuracy of "jaccard-kmv" vs exact Jaccard."""

    @staticmethod
    def _mae(graph, kmv_cls):
        exact = {(u, v): s for u, v, s in similarity_all_pairs(graph, "jaccard")}
        approx = {
            (u, v): s
            for u, v, s in similarity_all_pairs(graph, "jaccard-kmv",
                                                kmv_cls=kmv_cls)
        }
        # Same 2-hop candidate enumeration on both paths.
        assert exact.keys() == approx.keys() and exact
        errs = [abs(exact[p] - approx[p]) for p in exact]
        return sum(errs) / len(errs)

    def test_exact_when_unions_fit_in_signature(self):
        # Degrees ≪ K: the signature is the complete hash set, estimates
        # degenerate to the exact Jaccard.
        csr, _ = random_csr(60, 240, 11)  # mean degree 8 ≪ K=128
        assert self._mae(csr, KMVSketchSet) == 0.0

    def test_mae_within_estimator_bound_at_fixed_k(self):
        # Dense graph (mean degree ≈ 40 > K) so the estimator actually
        # estimates; ρ̂'s standard error is sqrt(ρ(1-ρ)/K) ≤ 0.5/sqrt(K).
        csr, _ = random_csr(150, 3000, 5)
        mae16 = self._mae(csr, kmv_set_class(16))
        assert 0.0 < mae16 < 0.12  # ≈ se bound 0.125, seeded margin

    def test_accuracy_improves_with_signature_size(self):
        csr, _ = random_csr(150, 3000, 5)
        mae8 = self._mae(csr, kmv_set_class(8))
        mae64 = self._mae(csr, kmv_set_class(64))
        assert mae64 <= mae8

    def test_single_pair_similarity_api(self):
        csr, _ = random_csr(30, 120, 2)
        s = similarity(csr, 0, 1, "jaccard-kmv")
        assert 0.0 <= s <= 1.0

    def test_unknown_measure_lists_sketch_names(self):
        csr, _ = random_csr(10, 20, 1)
        with pytest.raises(KeyError, match="jaccard-kmv"):
            similarity(csr, 0, 1, "nope")
        assert "jaccard-kmv" in known_measures()

    def test_linkpred_effectiveness_loss_protocol(self):
        csr, _ = random_csr(120, 1200, 9)
        loss = effectiveness_loss(csr, "jaccard", "jaccard-kmv",
                                  fraction=0.1, seed=4)
        # Default K=128 covers these neighborhoods: the sketch scheme must
        # match exact Jaccard's effectiveness exactly.
        assert loss.approx.removed == loss.exact.removed
        assert loss.loss == pytest.approx(0.0)
        # A starved signature may lose effectiveness but stays a valid run.
        lean = effectiveness_loss(csr, kmv_cls=kmv_set_class(8),
                                  fraction=0.1, seed=4)
        assert 0.0 <= lean.approx.effectiveness <= 1.0
        assert lean.loss >= -1.0

    def test_evaluate_scheme_accepts_sketch_measure(self):
        csr, _ = random_csr(80, 500, 3)
        res = evaluate_scheme(csr, "jaccard-kmv", fraction=0.15, seed=1)
        assert res.measure == "jaccard-kmv"
        assert res.pairs_scored <= res.removed or res.pairs_scored >= 0


class TestSharedBloomBudget:
    def test_every_instance_gets_the_same_filter_size(self):
        cls = shared_bloom_set_class(64 * 1024, 100)
        sizes = {
            cls.from_iterable(range(n)).sketch_bits() for n in (0, 1, 7, 500)
        }
        assert sizes == {cls.SHARED_BITS}
        assert cls.SHARED_BITS == 512  # pow2 floor of 65536/100 = 655

    def test_budget_is_respected_not_exceeded(self):
        for total, n in ((10_000, 13), (1 << 20, 1000), (64 * 7, 7)):
            cls = shared_bloom_set_class(total, n)
            assert cls.SHARED_BITS * n <= max(total, 64 * n)
            assert cls.SHARED_BITS >= 64

    def test_popcount_estimator_path_for_every_pair(self):
        # Disparate set sizes that per-set sizing would give different
        # budgets (probe fallback); the shared class must keep them equal.
        per_set = BloomFilterSet
        a_members = np.arange(4, dtype=np.int64)
        b_members = np.arange(2000, dtype=np.int64)
        assert (per_set.from_sorted_array(a_members)._num_bits
                != per_set.from_sorted_array(b_members)._num_bits)
        shared = shared_bloom_set_class(1 << 22, 256)
        a = shared.from_sorted_array(a_members)
        b = shared.from_sorted_array(b_members)
        assert a._num_bits == b._num_bits
        est = a.intersect_count(b)
        assert 0 <= est <= 4

    def test_add_never_rebuilds_away_from_shared_size(self):
        cls = shared_bloom_set_class(64 * 10, 10)  # 64 bits, tiny
        s = cls.from_iterable(range(8))
        for x in range(100, 200):
            s.add(x)
        assert s.sketch_bits() == cls.SHARED_BITS
        assert s.cardinality() == 108

    def test_factory_validates(self):
        with pytest.raises(ValueError):
            shared_bloom_set_class(32, 4)
        with pytest.raises(ValueError):
            shared_bloom_set_class(1024, 0)
        with pytest.raises(ValueError):
            BloomFilterSet.with_shared_budget(1024, 4, num_hashes=0)

    def test_mining_kernels_run_on_shared_class(self):
        csr, _ = random_csr(80, 600, 6)
        cls = shared_bloom_set_class(256 * 80, 80)
        est = kclique_count_sets(csr, 3, cls, "DGR")
        assert est >= 0


class TestReconciledFourClique:
    def test_reconciliation_bounds_lean_budget_error(self):
        # Lean budget: the plain recursion compounds superset candidate
        # sets level by level; the reconciled one carries a single level
        # of estimator noise, so it can only do better (or tie).
        csr, _ = random_csr(120, 1500, 8)
        lean = bloom_set_class(4, 2, min_bits=64)
        exact = kclique_count(csr, 4, "DGR").count
        plain = kclique_count_sets(csr, 4, lean, "DGR")
        reconciled = kclique_count_sets(csr, 4, lean, "DGR", reconcile=True)
        err = lambda est: abs(est - exact) / max(exact, 1)  # noqa: E731
        assert err(reconciled) <= err(plain) + 1e-9
        # Bloom superset candidates make the plain recursion over-count.
        assert plain >= reconciled

    def test_reconciled_is_exact_for_exact_backends(self):
        csr, _ = random_csr(60, 500, 2)
        exact = kclique_count(csr, 4, "DGR").count
        assert kclique_count_sets(csr, 4, SortedSet, "DGR",
                                  reconcile=True) == exact

    def test_reconciled_matches_plain_for_rich_kmv(self):
        # KMV intersect is exact on member arrays, so both recursions see
        # exact candidates; with K large enough the counts agree too.
        csr, _ = random_csr(50, 350, 4)
        plain = kclique_count_sets(csr, 4, KMVSketchSet, "DGR")
        reconciled = kclique_count_sets(csr, 4, KMVSketchSet, "DGR",
                                        reconcile=True)
        assert plain == reconciled

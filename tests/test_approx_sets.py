"""Statistical accuracy tests for the approximate set backends.

Sketch estimators are random variables; these tests pin them down the way
ProbGraph's evaluation does — with seeded-RNG trial sweeps asserting that
the estimate lands within the theoretical error bound on at least 95% of
trials — plus hard guarantees (zero false negatives, clamping ranges) that
must hold on *every* trial.  All randomness is seeded and the hash
functions are deterministic, so these tests are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import (
    BloomFilterSet,
    KMVSketchSet,
    bloom_false_positive_rate,
    bloom_intersection_stddev,
    bloom_set_class,
    kmv_relative_stderr,
    kmv_set_class,
)
from repro.graph.generators import holme_kim
from repro.mining import (
    approx_four_clique_count,
    approx_triangle_count,
    kclique_count,
    kclique_count_sets,
    triangle_count_node_iterator,
    triangle_count_rank_merge,
)

TRIALS = 100


# ----------------------------------------------------------------------
# Hard (every-trial) guarantees
# ----------------------------------------------------------------------
class TestBloomGuarantees:
    def test_contains_has_zero_false_negatives(self):
        rng = np.random.default_rng(11)
        for _ in range(TRIALS):
            n = int(rng.integers(1, 500))
            members = rng.choice(1_000_000, n, replace=False)
            s = BloomFilterSet.from_iterable(members.tolist())
            mask = s._probe(np.sort(members.astype(np.int64)))
            assert bool(mask.all()), "Bloom filter dropped a member"

    def test_false_positive_rate_is_near_theory(self):
        cls = bloom_set_class(8, 3, min_bits=64)
        rng = np.random.default_rng(12)
        members = rng.choice(100_000, 1000, replace=False)
        s = cls.from_iterable(members.tolist())
        probes = np.setdiff1d(np.arange(100_000, 200_000, dtype=np.int64), members)
        observed = s._probe(probes).mean()
        predicted = bloom_false_positive_rate(1000, s.sketch_bits(), 3)
        assert observed <= 3 * predicted + 0.01

    def test_intersection_count_is_always_clamped(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            a = rng.choice(10_000, int(rng.integers(1, 300)), replace=False)
            b = rng.choice(10_000, int(rng.integers(1, 300)), replace=False)
            sa = BloomFilterSet.from_iterable(a.tolist())
            sb = BloomFilterSet.from_iterable(b.tolist())
            assert 0 <= sa.intersect_count(sb) <= min(len(a), len(b))
            assert max(len(set(a)), len(set(b))) <= sa.union_count(sb)
            assert 0 <= sa.diff_count(sb) <= len(a)

    def test_mixed_filter_sizes_use_probe_path(self):
        # A hub neighborhood (large m) against a tiny one (small m): the
        # small side probes the hub's filter, so the estimate can only
        # overshoot by the hub filter's false-positive rate.
        small = BloomFilterSet.from_iterable(range(10))
        large = BloomFilterSet.from_iterable(range(5, 4000))
        assert small.sketch_bits() < large.sketch_bits()
        est = small.intersect_count(large)
        assert 5 <= est <= 10  # true overlap is 5; probes never miss members
        assert est - 5 <= 2  # FP rate at b=32, k=4 is ~2e-4
        assert large.intersect_count(small) == est  # symmetric dispatch

    def test_mixed_budgets_probe_the_cleaner_filter(self):
        # A lean-budget set with MORE members against a rich-budget set
        # with fewer: naive smaller-side probing would hit the lean filter
        # (high FP rate) and overshoot badly; the dispatch must minimize
        # FPR(target) × n(probed) and probe into the rich filter instead.
        lean = bloom_set_class(4, 4, min_bits=64)
        rich = bloom_set_class(64, 4, min_bits=64)
        a = lean.from_iterable(range(2000))
        b = rich.from_iterable(range(1900, 2400))
        est = a.intersect_count(b)
        assert abs(est - 100) <= 3  # true overlap is 100
        assert b.intersect_count(a) == est


class TestKMVGuarantees:
    def test_small_sets_are_exact(self):
        # When |A ∪ B| < K both signatures are complete hash sets and every
        # estimate collapses to the exact count.
        cls = kmv_set_class(256)
        rng = np.random.default_rng(14)
        for _ in range(20):
            a = rng.choice(10_000, int(rng.integers(1, 100)), replace=False)
            b = rng.choice(10_000, int(rng.integers(1, 100)), replace=False)
            sa = cls.from_iterable(a.tolist())
            sb = cls.from_iterable(b.tolist())
            assert sa.intersect_count(sb) == len(np.intersect1d(a, b))
            assert sa.union_count(sb) == len(np.union1d(a, b))

    def test_contains_is_exact(self):
        s = KMVSketchSet.from_iterable([2, 4, 6])
        assert s.contains(4) and not s.contains(5)


class TestGenericApproxContract:
    """Invariants every registered approximate backend must satisfy —
    parametrized over the registry so future sketch classes are held to
    the same contract automatically."""

    def test_count_clamps_and_member_store(self, approx_set_cls):
        rng = np.random.default_rng(15)
        a = rng.choice(50_000, 400, replace=False)
        b = np.concatenate([a[:100], rng.choice(50_000, 300) + 50_000])
        sa = approx_set_cls.from_iterable(a.tolist())
        sb = approx_set_cls.from_iterable(b.tolist())
        n_a, n_b = sa.cardinality(), sb.cardinality()
        assert n_a == len(set(a.tolist())) and n_b == len(set(b.tolist()))
        assert 0 <= sa.intersect_count(sb) <= min(n_a, n_b)
        assert max(n_a, n_b) <= sa.union_count(sb) <= n_a + n_b
        assert 0 <= sa.diff_count(sb) <= n_a
        # No false negatives on own members, ever.
        for x in a[:50].tolist():
            assert sa.contains(x)
        assert sa.sketch_bits() > 0


# ----------------------------------------------------------------------
# Statistical (>= 95% of trials) bounds
# ----------------------------------------------------------------------
class TestBloomAccuracy:
    def test_intersect_count_within_bound_95pct(self):
        cls = bloom_set_class(16, 4, min_bits=64)
        rng = np.random.default_rng(21)
        n, overlap = 256, 64
        hits = 0
        for _ in range(TRIALS):
            a = rng.choice(100_000, n, replace=False)
            tail = rng.choice(np.arange(100_000, 200_000), n - overlap, replace=False)
            b = np.concatenate([rng.choice(a, overlap, replace=False), tail])
            sa, sb = cls.from_iterable(a.tolist()), cls.from_iterable(b.tolist())
            sigma = bloom_intersection_stddev(n, n, sa.sketch_bits())
            if abs(sa.intersect_count(sb) - overlap) <= 3 * sigma + 1:
                hits += 1
        assert hits >= 95, f"only {hits}/{TRIALS} within 3 sigma"


class TestKMVAccuracy:
    def test_cardinality_estimate_within_bound_95pct(self):
        k = 256
        cls = kmv_set_class(k)
        rng = np.random.default_rng(22)
        n = 5000
        bound = 2.5 * kmv_relative_stderr(k)  # ≈ 2.5 / sqrt(k - 2)
        hits = 0
        for _ in range(TRIALS):
            values = rng.choice(10_000_000, n, replace=False)
            s = cls.from_iterable(values.tolist())
            rel_err = abs(s.cardinality_estimate() - n) / n
            if rel_err <= bound:
                hits += 1
        assert hits >= 95, f"only {hits}/{TRIALS} within bound {bound:.3f}"

    def test_intersect_count_within_bound_95pct(self):
        k = 256
        cls = kmv_set_class(k)
        rng = np.random.default_rng(23)
        n, overlap = 2048, 512
        hits, rel_errs = 0, []
        for _ in range(TRIALS):
            a = rng.choice(1_000_000, n, replace=False)
            tail = rng.choice(np.arange(1_000_000, 2_000_000), n - overlap,
                              replace=False)
            b = np.concatenate([rng.choice(a, overlap, replace=False), tail])
            sa, sb = cls.from_iterable(a.tolist()), cls.from_iterable(b.tolist())
            rel_err = abs(sa.intersect_count(sb) - overlap) / overlap
            rel_errs.append(rel_err)
            # Jaccard proportion error (~sqrt(rho(1-rho)/k)/rho) plus the
            # union cardinality error, 2.5 sigma each, conservatively added.
            rho = overlap / (2 * n - overlap)
            bound = 2.5 * (
                np.sqrt(rho * (1 - rho) / k) / rho + kmv_relative_stderr(k)
            )
            if rel_err <= bound:
                hits += 1
        assert hits >= 95, f"only {hits}/{TRIALS} within bound"
        assert float(np.mean(rel_errs)) <= 0.25


# ----------------------------------------------------------------------
# Kernels run unmodified on the approximate backends (acceptance)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def synth_1k():
    return holme_kim(1000, 6, 0.5, seed=7)


class TestApproxKernels:
    def test_triangle_count_bloom_within_10pct(self, synth_1k):
        exact = triangle_count_rank_merge(synth_1k)
        estimate = triangle_count_node_iterator(synth_1k, set_cls=BloomFilterSet)
        assert exact > 0
        assert abs(estimate - exact) / exact <= 0.10

    def test_triangle_count_kmv_within_10pct(self, synth_1k):
        exact = triangle_count_rank_merge(synth_1k)
        estimate = triangle_count_node_iterator(synth_1k, set_cls=KMVSketchSet)
        assert abs(estimate - exact) / exact <= 0.10

    def test_approx_triangle_count_reports_error(self, synth_1k):
        res = approx_triangle_count(synth_1k, BloomFilterSet)
        assert res.kernel == "tc"
        assert res.exact == triangle_count_rank_merge(synth_1k)
        assert res.relative_error <= 0.10
        assert res.estimate_seconds > 0 and res.exact_seconds > 0
        assert len(res.row()) == 6

    def test_kclique_sets_matches_exact_backend(self, synth_1k):
        from repro.core import SortedSet

        expected = kclique_count(synth_1k, 4, "DGR").count
        assert kclique_count_sets(synth_1k, 4, SortedSet, "DGR") == expected

    def test_approx_four_clique_within_bound(self, synth_1k):
        res = approx_four_clique_count(synth_1k, BloomFilterSet)
        assert res.kernel == "4clique"
        assert res.exact == kclique_count(synth_1k, 4, "DGR").count
        assert res.relative_error <= 0.15

    def test_four_clique_kmv_is_exact_on_small_neighborhoods(self, synth_1k):
        # Oriented neighborhoods here are far below K=128, so KMV sketches
        # are complete and the estimate collapses to the exact count.
        res = approx_four_clique_count(synth_1k, KMVSketchSet)
        assert res.estimate == res.exact


# ----------------------------------------------------------------------
# Budget factories
# ----------------------------------------------------------------------
class TestFactories:
    def test_bloom_budget_shapes_the_filter(self):
        lean = bloom_set_class(4, 2, min_bits=64)
        rich = bloom_set_class(64, 6, min_bits=64)
        members = list(range(100))
        assert lean.from_iterable(members).sketch_bits() < (
            rich.from_iterable(members).sketch_bits()
        )
        assert lean.BITS_PER_ELEMENT == 4 and lean.NUM_HASHES == 2
        assert not lean.IS_EXACT

    def test_kmv_k_bounds_signature(self):
        cls = kmv_set_class(16)
        s = cls.from_iterable(range(1000))
        assert s.sketch_bits() == 16 * 64
        assert s.cardinality() == 1000  # member store stays exact

    def test_factories_reject_bad_budgets(self):
        with pytest.raises(ValueError):
            bloom_set_class(0)
        with pytest.raises(ValueError):
            bloom_set_class(8, 0)
        with pytest.raises(ValueError):
            kmv_set_class(2)

    def test_jaccard_estimate_tracks_truth(self):
        cls = kmv_set_class(256)
        rng = np.random.default_rng(31)
        a = rng.choice(100_000, 2000, replace=False)
        b = np.concatenate([
            rng.choice(a, 1000, replace=False),
            rng.choice(np.arange(100_000, 200_000), 1000, replace=False),
        ])
        sa, sb = cls.from_iterable(a.tolist()), cls.from_iterable(b.tolist())
        true_j = len(np.intersect1d(a, b)) / len(np.union1d(a, b))
        assert abs(sa.jaccard_estimate(sb) - true_j) <= 0.1

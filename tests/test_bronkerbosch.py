"""Maximal clique listing: all BK variants vs oracles and invariants."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitSet, HashSet, RoaringSet, SortedSet
from repro.graph import build_undirected
from repro.graph import generators as gen
from repro.mining import BK_VARIANTS, bk_das, bron_kerbosch, run_bk_variant
from tests.conftest import random_csr


def nx_cliques(G):
    return sorted(sorted(c) for c in nx.find_cliques(G))


class TestCorrectness:
    @pytest.mark.parametrize("variant", BK_VARIANTS)
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, variant, seed):
        csr, G = random_csr(45, 220, seed)
        res = run_bk_variant(csr, variant, collect=True)
        assert sorted(sorted(c) for c in res.cliques) == nx_cliques(G)
        assert res.num_cliques == len(res.cliques)

    def test_all_set_classes_agree(self, set_cls):
        csr, G = random_csr(40, 220, 9)
        res = bron_kerbosch(csr, "ADG", set_cls, collect=True)
        assert sorted(sorted(c) for c in res.cliques) == nx_cliques(G)

    def test_subgraph_opt_equivalent(self):
        csr, G = random_csr(40, 260, 5)
        plain = bron_kerbosch(csr, "ADG", BitSet, subgraph_opt=False)
        sub = bron_kerbosch(csr, "ADG", BitSet, subgraph_opt=True)
        assert plain.num_cliques == sub.num_cliques

    def test_unknown_variant(self):
        csr, _ = random_csr(5, 5, 1)
        with pytest.raises(ValueError, match="unknown BK variant"):
            run_bk_variant(csr, "BK-NOPE")


class TestInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(0, 180))
    def test_cliques_are_maximal_and_unique(self, seed, m):
        csr, G = random_csr(30, m, seed)
        res = bron_kerbosch(csr, "ADG", BitSet, collect=True)
        seen = set()
        for clique in res.cliques:
            key = frozenset(clique)
            assert key not in seen, "duplicate maximal clique"
            seen.add(key)
            # Clique property.
            for i, u in enumerate(clique):
                for v in clique[i + 1 :]:
                    assert G.has_edge(u, v)
            # Maximality: no vertex adjacent to the whole clique.
            for w in G.nodes():
                if w in key:
                    continue
                assert not all(G.has_edge(w, u) for u in clique)

    def test_isolated_vertices_are_cliques(self):
        g = build_undirected(3, [])
        res = bron_kerbosch(g, "DEG", BitSet, collect=True)
        assert sorted(res.cliques) == [[0], [1], [2]]

    def test_empty_graph(self):
        g = build_undirected(0, [])
        assert bron_kerbosch(g, "DEG", BitSet).num_cliques == 0

    def test_single_clique_graph(self):
        n = 9
        g = build_undirected(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        res = bron_kerbosch(g, "ADG", BitSet, collect=True)
        assert res.num_cliques == 1
        assert res.max_clique_size == n

    def test_disjoint_cliques_counted_exactly(self):
        g = gen.star_of_cliques(5, 4)
        res = bron_kerbosch(g, "DGR", BitSet)
        assert res.num_cliques == 4


class TestInstrumentation:
    def test_task_costs_cover_all_vertices(self):
        csr, _ = random_csr(30, 120, 2)
        res = bron_kerbosch(csr, "ADG", BitSet)
        assert len(res.task_costs) == 30
        assert res.mine_seconds >= 0
        assert res.reorder_seconds >= 0

    def test_throughput_metric(self):
        csr, _ = random_csr(30, 120, 3)
        res = bron_kerbosch(csr, "ADG", BitSet)
        assert res.throughput() > 0
        assert res.total_seconds == res.reorder_seconds + res.mine_seconds

    def test_adg_rounds_recorded(self):
        csr, _ = random_csr(100, 400, 4)
        res = bron_kerbosch(csr, "ADG", BitSet)
        assert 1 < res.ordering_rounds < 100

    def test_das_uses_degeneracy(self):
        csr, _ = random_csr(30, 120, 5)
        res = bk_das(csr)
        assert res.variant == "BK-DAS"
        assert res.ordering_rounds == 30  # sequential peeling: n rounds

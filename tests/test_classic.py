"""Classic algorithms for the Table 8 representation study."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    bellman_ford,
    betweenness_centrality,
    bfs_distances,
    boman_coloring,
    build_undirected,
    delta_stepping,
    pagerank,
)
from repro.optimization import verify_coloring
from tests.conftest import random_csr


class TestBFS:
    @pytest.mark.parametrize("seed", range(3))
    def test_distances_match_networkx(self, seed):
        csr, G = random_csr(40, 100, seed)
        dist = bfs_distances(csr, 0)
        nx_dist = nx.single_source_shortest_path_length(G, 0)
        for v in range(40):
            if v in nx_dist:
                assert dist[v] == nx_dist[v]
            else:
                assert dist[v] == -1


class TestSSSP:
    def _weighted(self, seed):
        csr, G = random_csr(30, 90, seed)
        rng = np.random.default_rng(seed)
        weights = {}
        for u, v in csr.edges():
            w = float(rng.uniform(0.5, 4.0))
            weights[(u, v)] = w
            G[u][v]["weight"] = w
        return csr, G, weights

    @pytest.mark.parametrize("seed", range(3))
    def test_bellman_ford_matches_dijkstra(self, seed):
        csr, G, weights = self._weighted(seed)
        dist = bellman_ford(csr, 0, weights)
        nx_dist = nx.single_source_dijkstra_path_length(G, 0)
        for v in range(30):
            if v in nx_dist:
                assert abs(dist[v] - nx_dist[v]) < 1e-9
            else:
                assert math.isinf(dist[v])

    @pytest.mark.parametrize("delta", [0.5, 1.0, 5.0])
    @pytest.mark.parametrize("seed", range(3))
    def test_delta_stepping_matches_dijkstra(self, seed, delta):
        csr, G, weights = self._weighted(seed)
        dist = delta_stepping(csr, 0, delta, weights)
        nx_dist = nx.single_source_dijkstra_path_length(G, 0)
        for v in range(30):
            if v in nx_dist:
                assert abs(dist[v] - nx_dist[v]) < 1e-9, (v, delta)
            else:
                assert math.isinf(dist[v])

    def test_delta_validation(self):
        csr, _ = random_csr(5, 6, 0)
        with pytest.raises(ValueError):
            delta_stepping(csr, 0, delta=0)

    def test_unweighted_defaults(self):
        csr, G = random_csr(20, 50, 7)
        bf = bellman_ford(csr, 0)
        bfs = bfs_distances(csr, 0)
        for v in range(20):
            if bfs[v] >= 0:
                assert bf[v] == bfs[v]


class TestPageRank:
    @pytest.mark.parametrize("mode", ["pull", "push"])
    def test_matches_networkx(self, mode):
        csr, G = random_csr(40, 160, 9)
        ours = pagerank(csr, mode=mode, iterations=100)
        theirs = nx.pagerank(G, alpha=0.85, max_iter=200, tol=1e-12)
        for v in range(40):
            assert abs(ours[v] - theirs[v]) < 1e-4

    def test_push_equals_pull(self):
        csr, _ = random_csr(40, 160, 10)
        a = pagerank(csr, mode="pull", iterations=60)
        b = pagerank(csr, mode="push", iterations=60)
        assert np.allclose(a, b, atol=1e-10)

    def test_stochastic(self):
        csr, _ = random_csr(30, 80, 11)
        assert abs(pagerank(csr).sum() - 1.0) < 1e-8

    def test_bad_mode(self):
        csr, _ = random_csr(5, 6, 0)
        with pytest.raises(ValueError):
            pagerank(csr, mode="sideways")

    def test_empty(self):
        assert len(pagerank(build_undirected(0, []))) == 0


class TestBetweenness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        csr, G = random_csr(25, 70, seed)
        ours = betweenness_centrality(csr)
        theirs = nx.betweenness_centrality(G, normalized=False)
        for v in range(25):
            assert abs(ours[v] - theirs[v]) < 1e-9

    def test_star_center_dominates(self):
        csr = build_undirected(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        bc = betweenness_centrality(csr)
        assert bc[0] == 6.0  # C(4,2) pairs route through the hub
        assert np.all(bc[1:] == 0)


class TestBomanColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_proper(self, seed):
        csr, _ = random_csr(50, 220, seed)
        colors = boman_coloring(csr)
        assert verify_coloring(csr, colors)

    def test_bounded_by_max_degree(self):
        csr, _ = random_csr(50, 220, 5)
        colors = boman_coloring(csr)
        assert colors.max() <= csr.max_degree()

"""The ``python -m repro`` command-line driver."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "gearbox-mini" in out
    assert "mirrors" in out


def test_stats(capsys):
    assert main(["stats", "usa-roads-mini"]) == 0
    assert "m/n" in capsys.readouterr().out


def test_bk(capsys):
    assert main(["bk", "sc-ht-mini", "--variant", "BK-GMS-ADG"]) == 0
    out = capsys.readouterr().out
    assert "maximal cliques" in out
    assert "throughput" in out


def test_bk_with_set_class(capsys):
    assert main(["bk", "sc-ht-mini", "--set-class", "roaring"]) == 0


def test_kclique(capsys):
    assert main(["kclique", "sc-ht-mini", "-k", "3"]) == 0
    assert "3-cliques" in capsys.readouterr().out


def test_similarity(capsys):
    assert main(["similarity", "sc-ht-mini"]) == 0
    out = capsys.readouterr().out
    assert "jaccard" in out and "eff" in out


@pytest.mark.parametrize("method", ["JP-SL", "Johansson"])
def test_color(capsys, method):
    assert main(["color", "usa-roads-mini", "--method", method]) == 0
    assert "proper: True" in capsys.readouterr().out


@pytest.mark.parametrize("set_class", ["bloom", "kmv"])
def test_approx_tc(capsys, set_class):
    assert main(["approx", "sc-ht-mini", "--set-class", set_class]) == 0
    out = capsys.readouterr().out
    assert "estimate" in out and "rel. error" in out and "triangles" in out


def test_approx_four_clique(capsys):
    assert main(["approx", "sc-ht-mini", "--kernel", "4clique"]) == 0
    assert "4-cliques" in capsys.readouterr().out


def test_approx_accepts_exact_backends_too(capsys):
    assert main(["approx", "sc-ht-mini", "--set-class", "sorted"]) == 0
    assert "rel. error 0.00%" in capsys.readouterr().out


def test_approx_budget_flags_are_applied(capsys):
    assert main(["approx", "sc-ht-mini", "--set-class", "bloom",
                 "--bloom-bits", "4"]) == 0
    assert "BloomFilterSet_b4" in capsys.readouterr().out
    assert main(["approx", "sc-ht-mini", "--set-class", "kmv",
                 "--kmv-k", "8"]) == 0
    assert "KMVSketchSet_k8" in capsys.readouterr().out


def test_resolve_set_class_budgets():
    from repro.core import SortedSet
    from repro.platform import parse_args, resolve_set_class

    args = parse_args(["--set-class", "bloom", "--bloom-bits", "8"])
    assert args.resolve_set_class().BITS_PER_ELEMENT == 8
    assert resolve_set_class("kmv", kmv_k=16).K == 16
    assert resolve_set_class("sorted") is SortedSet
    # Budget overrides are ignored for non-matching backends.
    assert resolve_set_class("sorted", bloom_bits=8) is SortedSet


def test_bk_runs_on_approx_backend(capsys):
    # The 5+ modularity hook: existing commands accept the new backends.
    assert main(["bk", "sc-ht-mini", "--set-class", "kmv"]) == 0
    assert "maximal cliques" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        main(["stats", "not-a-dataset"])

"""The ``python -m repro`` command-line driver."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "gearbox-mini" in out
    assert "mirrors" in out


def test_stats(capsys):
    assert main(["stats", "usa-roads-mini"]) == 0
    assert "m/n" in capsys.readouterr().out


def test_bk(capsys):
    assert main(["bk", "sc-ht-mini", "--variant", "BK-GMS-ADG"]) == 0
    out = capsys.readouterr().out
    assert "maximal cliques" in out
    assert "throughput" in out


def test_bk_with_set_class(capsys):
    assert main(["bk", "sc-ht-mini", "--set-class", "roaring"]) == 0


def test_kclique(capsys):
    assert main(["kclique", "sc-ht-mini", "-k", "3"]) == 0
    assert "3-cliques" in capsys.readouterr().out


def test_similarity(capsys):
    assert main(["similarity", "sc-ht-mini"]) == 0
    out = capsys.readouterr().out
    assert "jaccard" in out and "eff" in out


@pytest.mark.parametrize("method", ["JP-SL", "Johansson"])
def test_color(capsys, method):
    assert main(["color", "usa-roads-mini", "--method", method]) == 0
    assert "proper: True" in capsys.readouterr().out


@pytest.mark.parametrize("set_class", ["bloom", "kmv"])
def test_approx_tc(capsys, set_class):
    assert main(["approx", "sc-ht-mini", "--set-class", set_class]) == 0
    out = capsys.readouterr().out
    assert "estimate" in out and "rel. error" in out and "triangles" in out


def test_approx_four_clique(capsys):
    assert main(["approx", "sc-ht-mini", "--kernel", "4clique"]) == 0
    assert "4-cliques" in capsys.readouterr().out


def test_approx_accepts_exact_backends_too(capsys):
    assert main(["approx", "sc-ht-mini", "--set-class", "sorted"]) == 0
    assert "rel. error 0.00%" in capsys.readouterr().out


def test_approx_budget_flags_are_applied(capsys):
    assert main(["approx", "sc-ht-mini", "--set-class", "bloom",
                 "--bloom-bits", "4"]) == 0
    assert "BloomFilterSet_b4" in capsys.readouterr().out
    assert main(["approx", "sc-ht-mini", "--set-class", "kmv",
                 "--kmv-k", "8"]) == 0
    assert "KMVSketchSet_k8" in capsys.readouterr().out


def test_resolve_set_class_budgets():
    from repro.core import SortedSet
    from repro.platform import parse_args, resolve_set_class

    args = parse_args(["--set-class", "bloom", "--bloom-bits", "8"])
    assert args.resolve_set_class().BITS_PER_ELEMENT == 8
    assert resolve_set_class("kmv", kmv_k=16).K == 16
    assert resolve_set_class("sorted") is SortedSet
    # Budget overrides are ignored for non-matching backends.
    assert resolve_set_class("sorted", bloom_bits=8) is SortedSet


def test_bk_runs_on_approx_backend(capsys):
    # The 5+ modularity hook: existing commands accept the new backends.
    assert main(["bk", "sc-ht-mini", "--set-class", "kmv"]) == 0
    assert "maximal cliques" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        main(["stats", "not-a-dataset"])


def test_approx_bk_kernel(capsys):
    assert main(["approx", "sc-ht-mini", "--kernel", "bk",
                 "--set-class", "kmv"]) == 0
    out = capsys.readouterr().out
    assert "identical: True" in out and "maximal cliques" in out


def test_approx_reconcile_flag(capsys):
    assert main(["approx", "sc-ht-mini", "--kernel", "4clique",
                 "--set-class", "bloom", "--bloom-bits", "4",
                 "--reconcile"]) == 0
    out = capsys.readouterr().out
    assert "4clique+reconcile" in out


def test_approx_shared_budget_flag(capsys):
    # 300 vertices in sc-ht-mini; 300 * 256 total bits → m = 256 per set.
    assert main(["approx", "sc-ht-mini", "--set-class", "bloom",
                 "--bloom-shared-bits", str(300 * 256)]) == 0
    assert "BloomFilterSet_m256" in capsys.readouterr().out


def test_similarity_includes_sketch_measure(capsys):
    assert main(["similarity", "sc-ht-mini"]) == 0
    out = capsys.readouterr().out
    assert "jaccard-kmv" in out


class TestSharedParserFlags:
    """parse_args / Args.resolve_set_class over the sketch-budget flags."""

    def test_parse_args_collects_all_budget_flags(self):
        from repro.platform import parse_args

        args = parse_args(["--set-class", "bloom", "--bloom-bits", "8",
                           "--kmv-k", "16", "--bloom-shared-bits", "4096"])
        assert args.set_class == "bloom"
        assert args.bloom_bits == 8
        assert args.kmv_k == 16
        assert args.bloom_shared_bits == 4096

    def test_shared_budget_needs_num_sets(self):
        from repro.platform import parse_args

        args = parse_args(["--set-class", "bloom",
                           "--bloom-shared-bits", "8192"])
        # Without a graph size the shared budget cannot be split…
        assert args.resolve_set_class().SHARED_BITS == 0
        # …with one, the factory fixes m = 8192/16 = 512 for all instances.
        cls = args.resolve_set_class(num_sets=16)
        assert cls.SHARED_BITS == 512

    def test_resolve_for_graph_splits_by_vertex_count(self):
        from repro.graph import load_dataset
        from repro.platform import parse_args

        graph = load_dataset("sc-ht-mini")  # 300 vertices
        args = parse_args(["--set-class", "bloom",
                           "--bloom-shared-bits", str(300 * 128)])
        cls = args.resolve_set_class_for_graph(graph)
        assert cls.SHARED_BITS == 128
        a = cls.from_sorted_array(graph.out_neigh(0))
        b = cls.from_sorted_array(graph.out_neigh(299))
        assert a.sketch_bits() == b.sketch_bits() == 128

    def test_shared_budget_takes_precedence_over_per_element(self):
        from repro.platform import resolve_set_class

        cls = resolve_set_class("bloom", bloom_bits=8,
                                bloom_shared_bits=1 << 16, num_sets=64)
        assert cls.SHARED_BITS == 1024
        assert resolve_set_class("bloom", bloom_bits=8).SHARED_BITS == 0

    def test_budget_flags_ignored_for_non_matching_backends(self):
        from repro.core import SortedSet
        from repro.platform import resolve_set_class

        assert resolve_set_class("sorted", bloom_shared_bits=4096,
                                 num_sets=8) is SortedSet
        assert resolve_set_class("kmv", bloom_shared_bits=4096,
                                 num_sets=8).__name__ == "KMVSketchSet"

    def test_unknown_backend_error_paths(self):
        from repro.platform import build_parser, resolve_set_class

        with pytest.raises(KeyError, match="unknown set class"):
            resolve_set_class("frobnitz")
        with pytest.raises(SystemExit):  # argparse rejects via choices
            build_parser().parse_args(["--set-class", "frobnitz"])

    def test_parser_choices_include_lazy_backends(self):
        from repro.platform import parse_args

        args = parse_args(["--set-class", "kmv", "--kmv-k", "8"])
        assert args.resolve_set_class().K == 8


class TestBudgetSweepCommand:
    def test_budget_sweep_writes_artifact(self, tmp_path, monkeypatch, capsys):
        import repro.platform.bench as bench

        monkeypatch.setattr(bench, "ARTIFACT_DIR", str(tmp_path))
        assert main(["budget-sweep", "--dataset", "sc-ht-mini",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sketch budget sweep" in out
        artifact = tmp_path / "budget_sweep_sc-ht-mini.json"
        assert artifact.exists()
        import json

        payload = json.loads(artifact.read_text())
        assert payload["rows"] and all(
            r["bk_identical"] for r in payload["rows"]
        )

    def test_budget_sweep_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "budget-sweep" in capsys.readouterr().out


class TestLazyBackendRegistration:
    """Regression for the registry's lazy "bloom"/"kmv" hook (no more
    bottom-of-module circular import)."""

    def test_plain_core_import_resolves_lazy_names(self):
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
        code = (
            "import sys\n"
            "from repro.core import get_set_class, set_class_names\n"
            # Nothing has touched the registry yet: the backends package
            # must not have been imported as a side effect.
            "assert 'repro.approx' not in sys.modules, 'approx imported eagerly'\n"
            "assert get_set_class('bloom').__name__ == 'BloomFilterSet'\n"
            "assert get_set_class('kmv').__name__ == 'KMVSketchSet'\n"
            "assert 'repro.approx' in sys.modules\n"
            "assert 'bloom' in set_class_names() and 'kmv' in set_class_names()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_registry_error_message_knows_lazy_names(self):
        from repro.core import get_set_class

        with pytest.raises(KeyError, match="bloom"):
            get_set_class("not-a-backend")

    def test_direct_set_classes_reads_see_lazy_backends(self):
        """Reading the exported SET_CLASSES dict (membership, iteration,
        lookup) must behave exactly as under the old eager registration."""
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
        code = (
            "import sys\n"
            "from repro.core import SET_CLASSES\n"
            "assert 'repro.approx' not in sys.modules\n"
            "assert 'bloom' in SET_CLASSES and 'kmv' in SET_CLASSES\n"
            "assert 'repro.approx' in sys.modules\n"
            "assert SET_CLASSES['kmv'].__name__ == 'KMVSketchSet'\n"
            "assert len(SET_CLASSES) >= 7\n"
            "assert {'bloom', 'kmv'} <= set(SET_CLASSES)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

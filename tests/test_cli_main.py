"""The ``python -m repro`` command-line driver."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "gearbox-mini" in out
    assert "mirrors" in out


def test_stats(capsys):
    assert main(["stats", "usa-roads-mini"]) == 0
    assert "m/n" in capsys.readouterr().out


def test_bk(capsys):
    assert main(["bk", "sc-ht-mini", "--variant", "BK-GMS-ADG"]) == 0
    out = capsys.readouterr().out
    assert "maximal cliques" in out
    assert "throughput" in out


def test_bk_with_set_class(capsys):
    assert main(["bk", "sc-ht-mini", "--set-class", "roaring"]) == 0


def test_kclique(capsys):
    assert main(["kclique", "sc-ht-mini", "-k", "3"]) == 0
    assert "3-cliques" in capsys.readouterr().out


def test_similarity(capsys):
    assert main(["similarity", "sc-ht-mini"]) == 0
    out = capsys.readouterr().out
    assert "jaccard" in out and "eff" in out


@pytest.mark.parametrize("method", ["JP-SL", "Johansson"])
def test_color(capsys, method):
    assert main(["color", "usa-roads-mini", "--method", method]) == 0
    assert "proper: True" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        main(["stats", "not-a-dataset"])

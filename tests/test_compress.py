"""Compression subsystem: round-trips, storage wins, graph equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    CompactOffsets,
    K2Tree,
    LogGraph,
    SelectBitvector,
    bfs_relabel,
    bits_needed,
    decode_array,
    decode_varint,
    degree_minimizing_relabel,
    encode_array,
    encode_varint,
    gap_decode,
    gap_encode,
    pack_bits,
    reference_decode,
    reference_encode,
    rle_decode,
    rle_encode,
    shingle_relabel,
    unpack_bits,
)
from repro.graph import generators as gen
from repro.graph import permute
from tests.conftest import random_csr

sorted_unique = st.lists(
    st.integers(min_value=0, max_value=10_000), max_size=50
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 1 << 20, 1 << 40])
    def test_single_roundtrip(self, value):
        data = encode_varint(value)
        got, off = decode_varint(data)
        assert got == value and off == len(data)

    def test_small_values_one_byte(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")

    @settings(max_examples=40, deadline=None)
    @given(values=sorted_unique)
    def test_array_roundtrip(self, values):
        assert np.array_equal(decode_array(encode_array(values), len(values)),
                              values)

    def test_trailing_bytes_rejected(self):
        data = encode_array([1, 2, 3]) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_array(data, 3)


class TestGap:
    @settings(max_examples=40, deadline=None)
    @given(values=sorted_unique)
    def test_roundtrip(self, values):
        assert np.array_equal(gap_decode(gap_encode(values)), values)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            gap_encode(np.array([3, 1]))

    def test_gaps_small_for_dense_ids(self):
        arr = np.arange(100, 200, dtype=np.int64)
        gaps = gap_encode(arr)
        assert gaps[1:].max() == 1


class TestBitpack:
    @settings(max_examples=40, deadline=None)
    @given(values=sorted_unique)
    def test_roundtrip(self, values):
        width = bits_needed(int(values.max()) if len(values) else 1)
        packed = pack_bits(values, width)
        assert np.array_equal(unpack_bits(packed, width, len(values)), values)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([256]), 8)

    def test_packing_saves_space(self):
        values = np.arange(1000, dtype=np.int64)
        packed = pack_bits(values, bits_needed(999))
        assert len(packed) < values.nbytes / 4


class TestOffsets:
    def test_matches_plain_offsets(self):
        csr, _ = random_csr(60, 240, 1)
        co = CompactOffsets(csr.offsets)
        for v in range(60):
            assert co.offset(v) == csr.offsets[v]
            assert co.degree(v) == csr.out_degree(v)

    def test_out_of_range(self):
        co = CompactOffsets(np.array([0, 2, 4]))
        with pytest.raises(IndexError):
            co.offset(5)

    def test_storage_below_plain(self):
        csr, _ = random_csr(500, 1000, 2)
        co = CompactOffsets(csr.offsets)
        assert co.storage_bits() < 64 * (csr.num_nodes + 1)

    def test_select_bitvector_rank(self):
        bits = np.array([1, 0, 0, 1, 1, 0, 1], dtype=np.uint8)
        bv = SelectBitvector(bits, sample_rate=2)
        assert [bv.rank1(i) for i in range(8)] == [0, 1, 1, 1, 2, 3, 3, 4]
        assert [bv.select1(k) for k in range(4)] == [0, 3, 4, 6]


class TestLogGraph:
    @pytest.mark.parametrize("encoding", ["bitpack", "varint-gap"])
    def test_roundtrip(self, encoding):
        g = gen.holme_kim(150, 4, 0.3, seed=3)
        lg = LogGraph(g, encoding)
        assert lg.to_csr() == g
        assert lg.num_nodes == g.num_nodes
        assert lg.num_edges == g.num_edges

    @pytest.mark.parametrize("encoding", ["bitpack", "varint-gap"])
    def test_accesses(self, encoding):
        g = gen.erdos_renyi_nm(80, 300, seed=4)
        lg = LogGraph(g, encoding)
        for v in (0, 10, 79):
            assert np.array_equal(lg.out_neigh(v), g.out_neigh(v))
            assert lg.out_degree(v) == g.out_degree(v)
        u, v = next(iter(g.edges()))
        assert lg.has_edge(u, v)
        assert not lg.has_edge(0, 0)

    def test_compression_wins(self):
        g = gen.erdos_renyi_nm(400, 3000, seed=5)
        assert LogGraph(g, "bitpack").storage_bytes() < g.storage_bytes()

    def test_mining_on_loggraph(self):
        """Algorithms run unchanged on the compressed representation."""
        from repro.core import BitSet
        from repro.mining import bron_kerbosch

        g = gen.erdos_renyi_nm(60, 350, seed=6)
        lg = LogGraph(g)
        direct = bron_kerbosch(g, "DEG", BitSet)
        via_roundtrip = bron_kerbosch(lg.to_csr(), "DEG", BitSet)
        assert direct.num_cliques == via_roundtrip.num_cliques

    def test_bad_encoding(self):
        g = gen.erdos_renyi_nm(10, 20, seed=7)
        with pytest.raises(ValueError):
            LogGraph(g, "bogus")


class TestK2Tree:
    @pytest.mark.parametrize("k", [2, 4])
    def test_has_edge_equivalence(self, k):
        csr, G = random_csr(33, 140, 8)
        tree = K2Tree(csr, k=k)
        for u in range(33):
            assert np.array_equal(tree.out_neigh(u), csr.out_neigh(u))

    def test_out_of_range_queries(self):
        csr, _ = random_csr(10, 20, 9)
        tree = K2Tree(csr)
        assert not tree.has_edge(-1, 0)
        assert not tree.has_edge(0, 100)

    def test_sparse_graph_compresses(self):
        g = gen.road_grid(16, 16)
        tree = K2Tree(g)
        assert tree.storage_bits() < 64 * 2 * g.num_edges

    def test_k_validation(self):
        csr, _ = random_csr(5, 6, 10)
        with pytest.raises(ValueError):
            K2Tree(csr, k=1)


class TestRLEReference:
    @settings(max_examples=30, deadline=None)
    @given(values=sorted_unique)
    def test_rle_roundtrip(self, values):
        assert np.array_equal(rle_decode(rle_encode(values)), values)

    def test_rle_compresses_runs(self):
        assert len(rle_encode(np.arange(1000))) == 1

    def test_reference_roundtrip_similar(self):
        a = np.array([1, 2, 3, 5, 9])
        b = np.array([1, 2, 3, 5, 10])
        enc = reference_encode(a, b, reference_vertex=7)
        assert enc.reference_vertex == 7
        assert np.array_equal(reference_decode(enc, b), a)

    def test_reference_fallback_dissimilar(self):
        a = np.array([1, 2, 3])
        b = np.array([100, 200, 300])
        enc = reference_encode(a, b, reference_vertex=7)
        assert enc.reference_vertex is None
        assert np.array_equal(reference_decode(enc, None), a)


class TestRelabel:
    @pytest.mark.parametrize(
        "fn", [degree_minimizing_relabel, bfs_relabel, shingle_relabel]
    )
    def test_is_permutation_preserving_structure(self, fn):
        csr, _ = random_csr(50, 200, 11)
        perm = fn(csr)
        assert sorted(perm.tolist()) == list(range(50))
        g2 = permute(csr, perm)
        assert g2.num_edges == csr.num_edges
        assert sorted(g2.degrees()) == sorted(csr.degrees())

    def test_degree_minimizing_gives_small_ids_to_hubs(self):
        csr, _ = random_csr(50, 200, 12)
        perm = degree_minimizing_relabel(csr)
        hub = int(np.argmax(csr.degrees()))
        assert perm[hub] == 0

    def test_bfs_relabel_locality(self):
        g = gen.road_grid(8, 8)
        perm = bfs_relabel(g)
        g2 = permute(g, perm)
        gaps = []
        for v in range(g2.num_nodes):
            neigh = g2.out_neigh(v)
            if len(neigh):
                gaps.append(np.abs(neigh - v).mean())
        assert np.mean(gaps) < g.num_nodes / 3

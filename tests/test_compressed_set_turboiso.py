"""CompressedSortedSet representation and the TurboISO solver."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from networkx.algorithms import isomorphism as nxiso

from repro.core import CompressedSortedSet, SortedSet, get_set_class
from repro.graph import build_undirected
from repro.isomorphism import nec_classes, turboiso_count, vf2_count
from tests.conftest import random_csr


class TestCompressedSortedSet:
    def test_registered(self):
        assert get_set_class("compressed") is CompressedSortedSet

    @settings(max_examples=50, deadline=None)
    @given(a=st.lists(st.integers(0, 100_000), max_size=40),
           b=st.lists(st.integers(0, 100_000), max_size=40))
    def test_ops_match_reference(self, a, b):
        ca = CompressedSortedSet.from_iterable(a)
        cb = CompressedSortedSet.from_iterable(b)
        assert set(ca.intersect(cb)) == set(a) & set(b)
        assert set(ca.union(cb)) == set(a) | set(b)
        assert set(ca.diff(cb)) == set(a) - set(b)
        assert ca.intersect_count(cb) == len(set(a) & set(b))

    def test_mutations_recompress(self):
        s = CompressedSortedSet.from_iterable([10, 20, 30])
        s.add(25)
        s.remove(10)
        assert list(s) == [20, 25, 30]
        # Round-trip through the blob (drop the decode cache first).
        s.drop_cache()
        assert list(s) == [20, 25, 30]

    def test_storage_beats_plain_for_clustered_ids(self):
        values = np.arange(1000, 1600)
        comp = CompressedSortedSet.from_sorted_array(values)
        assert comp.storage_bytes() < values.nbytes / 4

    def test_mining_with_compressed_sets(self):
        from repro.mining import bron_kerbosch

        csr, G = random_csr(35, 170, 3)
        res = bron_kerbosch(csr, "ADG", CompressedSortedSet, collect=True)
        expect = sorted(sorted(c) for c in nx.find_cliques(G))
        assert sorted(sorted(c) for c in res.cliques) == expect

    def test_clone_independent(self):
        s = CompressedSortedSet.from_iterable([1, 2])
        c = s.clone()
        c.add(3)
        assert list(s) == [1, 2]

    def test_mixed_class_ops(self):
        a = CompressedSortedSet.from_iterable([1, 2, 3])
        b = SortedSet.from_iterable([2, 3, 4])
        assert list(a.intersect(b)) == [2, 3]


class TestTurboISO:
    QUERIES = {
        "path4": nx.path_graph(4),
        "star3": nx.star_graph(3),
        "cycle4": nx.cycle_graph(4),
        "triangle": nx.complete_graph(3),
        "clique4": nx.complete_graph(4),
    }

    @pytest.mark.parametrize("qname", sorted(QUERIES))
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx_monomorphisms(self, qname, seed):
        T = nx.gnp_random_graph(16, 0.3, seed=seed)
        Q = self.QUERIES[qname]
        tc = build_undirected(16, list(T.edges()))
        qc = build_undirected(Q.number_of_nodes(), list(Q.edges()))
        matcher = nxiso.GraphMatcher(T, Q)
        expect = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        assert turboiso_count(tc, qc) == expect

    def test_labeled(self):
        T = nx.gnp_random_graph(14, 0.35, seed=4)
        tl = np.array([v % 2 for v in range(14)])
        Q = nx.path_graph(3)
        ql = np.array([0, 1, 0])
        tc = build_undirected(14, list(T.edges()))
        qc = build_undirected(3, list(Q.edges()))
        expect = vf2_count(tc, qc, induced=False, target_labels=tl,
                           query_labels=ql)
        got = turboiso_count(tc, qc, target_labels=tl, query_labels=ql)
        assert got == expect

    def test_nec_groups_star_leaves(self):
        star = build_undirected(4, [(0, 1), (0, 2), (0, 3)])
        classes = sorted(nec_classes(star), key=len)
        assert classes == [[0], [1, 2, 3]]

    def test_nec_distinguishes_labeled_leaves(self):
        star = build_undirected(3, [(0, 1), (0, 2)])
        classes = nec_classes(star, query_labels=np.array([0, 1, 2]))
        assert all(len(c) == 1 for c in classes)

    def test_empty_query(self):
        tc = build_undirected(3, [(0, 1)])
        assert turboiso_count(tc, build_undirected(0, [])) == 1

    def test_impossible_query(self):
        tc = build_undirected(3, [(0, 1)])
        qc = build_undirected(3, [(0, 1), (1, 2), (0, 2)])
        assert turboiso_count(tc, qc) == 0

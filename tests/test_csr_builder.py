"""CSR representation and graph construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BitSet
from repro.graph import CSRGraph, build_directed, build_undirected


class TestBuildUndirected:
    def test_basic(self):
        g = build_undirected(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert g.num_directed_edges == 6
        assert g.out_neigh(1).tolist() == [0, 2]

    def test_drops_self_loops(self):
        g = build_undirected(3, [(0, 0), (0, 1)])
        assert g.num_edges == 1

    def test_drops_duplicates_and_reversed_duplicates(self):
        g = build_undirected(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_empty(self):
        g = build_undirected(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_isolated_vertices(self):
        g = build_undirected(5, [(0, 1)])
        assert g.out_degree(4) == 0
        assert g.out_neigh(4).tolist() == []

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="endpoints"):
            build_undirected(3, [(0, 5)])
        with pytest.raises(ValueError, match="endpoints"):
            build_undirected(3, [(-1, 0)])

    def test_accepts_numpy_array(self):
        arr = np.array([[0, 1], [1, 2]], dtype=np.int64)
        assert build_undirected(3, arr).num_edges == 2

    def test_rejects_bad_array_shape(self):
        with pytest.raises(ValueError, match="shape"):
            build_undirected(3, np.zeros((2, 3), dtype=np.int64))


class TestBuildDirected:
    def test_arcs_one_way(self):
        g = build_directed(3, [(0, 1), (1, 2)])
        assert g.directed
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)


class TestAccessors:
    def test_degrees_and_max(self, small_graph):
        degrees = small_graph.degrees()
        assert degrees.sum() == small_graph.num_directed_edges
        assert small_graph.max_degree() == degrees.max()

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(0, 1)
        assert small_graph.has_edge(1, 0)
        assert not small_graph.has_edge(0, 11)

    def test_edges_iterates_each_once(self, small_graph):
        edges = list(small_graph.edges())
        assert len(edges) == small_graph.num_edges
        assert all(u < v for u, v in edges)

    def test_edge_array_matches_edges(self, small_graph):
        arr = small_graph.edge_array()
        assert sorted(map(tuple, arr.tolist())) == sorted(small_graph.edges())

    def test_neighborhood_set_bridge(self, small_graph):
        s = small_graph.neighborhood_set(3, BitSet)
        assert set(s) == set(small_graph.out_neigh(3).tolist())

    def test_storage_bytes_positive(self, small_graph):
        assert small_graph.storage_bytes() > 0

    def test_equality(self):
        a = build_undirected(3, [(0, 1)])
        b = build_undirected(3, [(0, 1)])
        c = build_undirected(3, [(0, 2)])
        assert a == b
        assert a != c


class TestValidation:
    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_offsets_must_cover_adjacency(self):
        with pytest.raises(ValueError, match="end at"):
            CSRGraph(np.array([0, 1]), np.array([0, 1]))

"""Deprecation shims over the session path (the API-migration contract).

``run_suite`` and ``Args.resolve_set_class_for_graph`` keep working but
warn: the first now routes through a throwaway
:class:`~repro.platform.session.MiningSession`, the second through the
module-level :func:`~repro.platform.cli.resolve_set_class_for_graph`.
The regression pinned here is the migration promise itself — the shim
paths produce artifacts and resolved classes *identical* (suite-diff /
``is``) to the session path.
"""

from __future__ import annotations

import warnings

import pytest

from repro.graph import load_dataset
from repro.platform.cli import Args, resolve_set_class_for_graph
from repro.platform.runner import diff_payloads
from repro.platform.session import MiningSession
from repro.platform.suite import ExperimentPlan, run_suite

PLAN = ExperimentPlan(
    datasets=("sc-ht-mini",),
    kernels=("tc", "bk"),
    set_classes=("bitset", "bloom"),
    orderings=("DGR",),
    repeats=1,
)


class TestRunSuiteShim:
    def test_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="run_suite is deprecated"):
            run_suite(PLAN)

    def test_shim_artifact_suite_diff_identical_to_session_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim_payload = run_suite(PLAN)[0]
        with MiningSession.from_plan(PLAN) as session:
            session_payload = session.run_plan(PLAN)[0]
        assert diff_payloads(shim_payload, session_payload) == []

    def test_shim_still_validates_execution(self):
        from dataclasses import replace

        with pytest.raises(ValueError, match="workers"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                run_suite(replace(PLAN, workers=0))


class TestResolveShim:
    def test_warns_deprecation_and_delegates(self):
        graph = load_dataset("sc-ht-mini")
        args = Args(set_class="bloom", bloom_shared_bits=64 * 300)
        with pytest.warns(DeprecationWarning,
                          match="resolve_set_class_for_graph"):
            shim_cls = args.resolve_set_class_for_graph(graph)
        direct_cls = resolve_set_class_for_graph(
            graph, "bloom", bloom_shared_bits=64 * 300
        )
        # Same factory, same parameters — the classes agree exactly.
        assert shim_cls.__name__ == direct_cls.__name__
        assert shim_cls.SHARED_BITS == direct_cls.SHARED_BITS

    def test_plain_resolution_identical(self):
        graph = load_dataset("sc-ht-mini")
        for name in ("sorted", "bitset", "roaring", "hash"):
            with pytest.warns(DeprecationWarning):
                shim_cls = Args(set_class=name).resolve_set_class_for_graph(
                    graph)
            assert shim_cls is resolve_set_class_for_graph(graph, name)

    def test_fpr_auto_sizing_identical(self):
        graph = load_dataset("sc-ht-mini")
        args = Args(set_class="bloom", bloom_fpr=0.02)
        with pytest.warns(DeprecationWarning):
            shim_cls = args.resolve_set_class_for_graph(graph)
        direct_cls = resolve_set_class_for_graph(graph, "bloom",
                                                 bloom_fpr=0.02)
        assert shim_cls.SHARED_BITS == direct_cls.SHARED_BITS
